//! Cross-crate integration: the full pipeline from data generation through
//! labelling, training, and inference, spanning every workspace crate.

use mtmlf::{LossWeights, MtmlfConfig, MtmlfQo};
use mtmlf_datagen::{
    generate_queries, imdb::ImdbScale, imdb_lite, label_workload, LabelConfig, LabeledQuery,
    WorkloadConfig,
};
use mtmlf_exec::Executor;
use mtmlf_optd::{PgOptimizer, TrueCardEstimator};
use mtmlf_query::JoinOrder;
use mtmlf_storage::Database;

fn pipeline(seed: u64, count: usize) -> (Database, Vec<LabeledQuery>) {
    let mut db = imdb_lite(seed, ImdbScale { scale: 0.02 }).unwrap();
    db.analyze_all(8, 4);
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count,
            max_tables: 4,
            ..WorkloadConfig::default()
        },
        seed ^ 0xE2E,
    );
    let labeled = label_workload(&db, &queries, &LabelConfig::default()).unwrap();
    (db, labeled)
}

fn tiny_config(seed: u64) -> MtmlfConfig {
    MtmlfConfig {
        enc_queries: 25,
        enc_epochs: 4,
        epochs: 3,
        seed,
        ..MtmlfConfig::tiny()
    }
}

#[test]
fn full_pipeline_trains_and_predicts() {
    let (db, labeled) = pipeline(31, 10);
    let mut model = MtmlfQo::new(&db, tiny_config(31)).unwrap();
    let history = model.train(&labeled).unwrap();
    assert!(!history.is_empty());
    assert!(history.iter().all(|l| l.is_finite()));
    let exec = Executor::new(&db);
    for l in &labeled {
        // Predictions cover every node and are sane.
        let preds = model.predict_nodes(&l.query, &l.plan).unwrap();
        assert_eq!(preds.len(), l.plan.node_count());
        // Join orders are legal and executable with a real cardinality.
        let order = model.predict_join_order(&l.query, &l.plan).unwrap();
        order.validate(&l.query).unwrap();
        let outcome = exec.execute_order(&l.query, &order).unwrap();
        assert_eq!(outcome.output_cardinality, l.true_cardinality);
    }
}

#[test]
fn labels_agree_with_true_cardinality_oracle() {
    let (db, labeled) = pipeline(32, 8);
    for l in &labeled {
        let oracle = TrueCardEstimator::compute(&db, &l.query).unwrap();
        let graph = l.query.join_graph().unwrap();
        // The root-node label equals the full-subset oracle value.
        let full: u64 = if graph.len() == 64 {
            u64::MAX
        } else {
            (1u64 << graph.len()) - 1
        };
        let oracle_card =
            mtmlf_optd::Estimator::cardinality(&oracle, &l.query, &graph, full).unwrap();
        assert_eq!(oracle_card as u64, l.true_cardinality);
    }
}

#[test]
fn classical_and_learned_planners_agree_on_legality() {
    let (db, labeled) = pipeline(33, 8);
    let pg = PgOptimizer::new(&db);
    let mut model = MtmlfQo::new(&db, tiny_config(33)).unwrap();
    model.train(&labeled).unwrap();
    for l in &labeled {
        let pg_order = JoinOrder::LeftDeep(pg.plan(&l.query).unwrap().plan.tables());
        pg_order.validate(&l.query).unwrap();
        let learned = model.predict_join_order(&l.query, &l.plan).unwrap();
        learned.validate(&l.query).unwrap();
        let optimal = l.optimal_order.as_ref().unwrap();
        optimal.validate(&l.query).unwrap();
    }
}

#[test]
fn single_task_ablations_train() {
    let (db, labeled) = pipeline(34, 8);
    for weights in [
        LossWeights::card_only(),
        LossWeights::cost_only(),
        LossWeights::jo_only(),
    ] {
        let cfg = MtmlfConfig {
            weights,
            ..tiny_config(34)
        };
        let mut model = MtmlfQo::new(&db, cfg).unwrap();
        let history = model.train(&labeled).unwrap();
        assert!(history.iter().all(|l| l.is_finite()));
    }
}

#[test]
fn treelstm_baseline_integrates() {
    let (db, labeled) = pipeline(35, 10);
    let mut baseline = mtmlf_treelstm::TreeLstm::new(
        db.table_count(),
        mtmlf_treelstm::TreeLstmConfig {
            hidden: 24,
            epochs: 3,
            ..mtmlf_treelstm::TreeLstmConfig::default()
        },
    );
    baseline.train(&db, &labeled);
    for l in &labeled {
        let preds = baseline.predict(&db, &l.query, &l.plan);
        assert_eq!(preds.len(), l.plan.node_count());
    }
}

#[test]
fn executor_cost_consistent_with_optimal_label() {
    // The labelled optimal order never loses (under identical default
    // operators) to five other legal orders sampled from the beam space.
    let (db, labeled) = pipeline(36, 6);
    let exec = Executor::new(&db);
    for l in &labeled {
        let optimal = l.optimal_order.as_ref().unwrap();
        let opt_minutes = exec.execute_order(&l.query, optimal).unwrap().sim_minutes;
        // Greedy order is always legal; compare.
        let greedy =
            JoinOrder::LeftDeep(mtmlf_exec::executor::greedy_legal_order(&l.query).unwrap());
        let greedy_minutes = exec.execute_order(&l.query, &greedy).unwrap().sim_minutes;
        assert!(
            opt_minutes <= greedy_minutes * 1.10 + 1e-9,
            "optimal {opt_minutes} vs greedy {greedy_minutes} on {}",
            l.query
        );
    }
}

//! Concurrency correctness for the serving layer: under many concurrent
//! clients, `PlannerService` must return answers bit-identical to calling
//! `MtmlfQo` directly from a single thread — for both the cold (model)
//! and warm (cache) path.

use mtmlf::prelude::*;
use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};
use std::collections::HashMap;
use std::sync::Arc;

const CLIENTS: usize = 8;

fn setup(seed: u64, count: usize) -> (Arc<MtmlfQo>, Vec<Query>) {
    let mut db = imdb_lite(seed, ImdbScale { scale: 0.02 }).unwrap();
    db.analyze_all(8, 4);
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count,
            max_tables: 4,
            ..WorkloadConfig::default()
        },
        seed ^ 0x5E21,
    );
    let config = MtmlfConfig {
        enc_queries: 10,
        enc_epochs: 1,
        seed,
        ..MtmlfConfig::tiny()
    };
    let model = MtmlfQo::new(&db, config).expect("model builds");
    (Arc::new(model), queries)
}

/// Plans every query through `service` from `CLIENTS` threads at once and
/// returns each client's responses in request order.
fn concurrent_round(service: &PlannerService, queries: &[Query]) -> Vec<Vec<PlanResponse>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    queries
                        .iter()
                        .map(|q| service.plan(q.clone()).expect("service plans"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    })
}

#[test]
fn concurrent_service_matches_direct_model_bitwise() {
    let (model, queries) = setup(47, 6);

    // Ground truth: the direct, single-threaded public API.
    let direct: Vec<_> = queries
        .iter()
        .map(|q| model.plan_with_estimates(q).expect("direct plan"))
        .collect();

    let service = PlannerService::builder(Arc::clone(&model))
        .config(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        })
        .start()
        .expect("service starts");

    // Cold pass: every answer matches the direct path bit-for-bit, no
    // matter which worker computed it or how requests were batched.
    let cold = concurrent_round(&service, &queries);
    for client in &cold {
        for (resp, (order, card, cost)) in client.iter().zip(&direct) {
            assert_eq!(&resp.join_order, order);
            assert_eq!(resp.est_card.to_bits(), card.to_bits());
            assert_eq!(resp.est_cost.to_bits(), cost.to_bits());
        }
    }

    // Warm pass: same answers again, now mostly (caller-side hits: all)
    // served from the cache.
    let warm = concurrent_round(&service, &queries);
    let mut sources: HashMap<&str, usize> = HashMap::new();
    for client in &warm {
        for (resp, (order, card, cost)) in client.iter().zip(&direct) {
            assert_eq!(&resp.join_order, order);
            assert_eq!(resp.est_card.to_bits(), card.to_bits());
            assert_eq!(resp.est_cost.to_bits(), cost.to_bits());
            *sources
                .entry(match resp.source {
                    PlanSource::Cache => "cache",
                    PlanSource::Model => "model",
                    PlanSource::Fallback => "fallback",
                })
                .or_default() += 1;
        }
    }
    assert_eq!(
        sources.get("cache").copied().unwrap_or(0),
        CLIENTS * queries.len(),
        "after a full cold pass every warm request is a cache hit"
    );

    let metrics = service.metrics();
    assert_eq!(metrics.requests, (2 * CLIENTS * queries.len()) as u64);
    assert!(metrics.cache_hits >= (CLIENTS * queries.len()) as u64);
    assert!(metrics.model_plans >= queries.len() as u64);
    assert_eq!(metrics.errors, 0);
}

#[test]
fn unbatched_service_is_also_bitwise_identical() {
    let (model, queries) = setup(48, 4);
    let direct: Vec<_> = queries
        .iter()
        .map(|q| model.plan_with_estimates(q).expect("direct plan"))
        .collect();
    let service = PlannerService::builder(Arc::clone(&model))
        .config(ServiceConfig {
            workers: 2,
            batching: false,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .start()
        .expect("service starts");
    for client in concurrent_round(&service, &queries) {
        for (resp, (order, card, cost)) in client.iter().zip(&direct) {
            assert_eq!(resp.source, PlanSource::Model);
            assert_eq!(&resp.join_order, order);
            assert_eq!(resp.est_card.to_bits(), card.to_bits());
            assert_eq!(resp.est_cost.to_bits(), cost.to_bits());
        }
    }
}

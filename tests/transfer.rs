//! Cross-DB meta-learning integration (paper Section 3.3 / Table 3 logic).

use mtmlf::{MetaLearner, MtmlfConfig};
use mtmlf_datagen::{
    generate_database, generate_queries, label_workload, LabelConfig, LabeledQuery, PipelineConfig,
    WorkloadConfig,
};
use mtmlf_storage::Database;

fn make_db(seed: u64) -> (Database, Vec<LabeledQuery>) {
    let pipeline = PipelineConfig {
        min_rows: 150,
        max_rows: 600,
        max_attrs: 4,
        ..PipelineConfig::tiny()
    };
    let mut db = generate_database(&format!("xfer{seed}"), seed, &pipeline).unwrap();
    db.analyze_all(8, 4);
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: 8,
            max_tables: 4,
            ..WorkloadConfig::default()
        },
        seed ^ 0x1234,
    );
    let labeled = label_workload(&db, &queries, &LabelConfig::default()).unwrap();
    (db, labeled)
}

fn config() -> MtmlfConfig {
    MtmlfConfig {
        enc_queries: 15,
        enc_epochs: 2,
        epochs: 2,
        seed: 5,
        ..MtmlfConfig::tiny()
    }
}

#[test]
fn mla_pretrain_transfer_and_finetune() {
    let (db_a, wl_a) = make_db(101);
    let (db_b, wl_b) = make_db(102);
    let (db_new, wl_new) = make_db(103);

    let mut meta = MetaLearner::new(config());
    let history = meta
        .pretrain(&[(&db_a, wl_a.as_slice()), (&db_b, wl_b.as_slice())])
        .unwrap();
    assert!(history.iter().all(|l| l.is_finite()));

    // Zero-shot transfer: the shared modules drive a new DB's featurizer.
    let mut model = meta.transfer(&db_new).unwrap();
    for l in &wl_new {
        let order = model.predict_join_order(&l.query, &l.plan).unwrap();
        order.validate(&l.query).unwrap();
    }

    // Fine-tuning on a handful of queries runs and stays finite.
    let history = model.fine_tune(&wl_new[..4], 2, 3e-4).unwrap();
    assert!(history.iter().all(|l| l.is_finite()));
}

#[test]
fn transfer_works_across_different_table_counts() {
    // The pointer-based decoder must handle databases whose table counts
    // differ between pre-training and deployment.
    let (db_a, wl_a) = make_db(104);
    let (db_new, wl_new) = make_db(105);
    assert!(
        db_a.table_count() >= 6 && db_new.table_count() >= 6,
        "pipeline DBs have 6-7 tables"
    );
    let mut meta = MetaLearner::new(config());
    meta.pretrain(&[(&db_a, wl_a.as_slice())]).unwrap();
    let model = meta.transfer(&db_new).unwrap();
    for l in &wl_new {
        let preds = model.predict_nodes(&l.query, &l.plan).unwrap();
        assert_eq!(preds.len(), l.plan.node_count());
    }
}

#[test]
fn featurizers_are_db_specific_but_modules_shared() {
    let (db_a, wl_a) = make_db(106);
    let (db_b, _) = make_db(107);
    let mut meta = MetaLearner::new(config());
    meta.pretrain(&[(&db_a, wl_a.as_slice())]).unwrap();
    let m1 = meta.transfer(&db_b).unwrap();
    let m2 = meta.transfer(&db_b).unwrap();
    // Both transfers share (S)/(T) parameters with the meta-learner: the
    // predictions of two independently transferred models agree exactly
    // (their featurizers are re-fitted with the same seed).
    let l = &wl_a[0];
    // Use db_a's workload shape on db_b? Not valid; instead compare on a
    // fresh workload for db_b.
    let _ = l;
    let queries = generate_queries(
        &db_b,
        &WorkloadConfig {
            count: 3,
            max_tables: 4,
            ..WorkloadConfig::default()
        },
        9,
    );
    let labeled = label_workload(&db_b, &queries, &LabelConfig::default()).unwrap();
    for l in &labeled {
        let a = m1.predict_nodes(&l.query, &l.plan).unwrap();
        let b = m2.predict_nodes(&l.query, &l.plan).unwrap();
        assert_eq!(a, b);
    }
}

//! Property-based cross-crate invariants: for arbitrary generated
//! databases and workloads, the planners, executor, and codec agree.

use mtmlf_datagen::{generate_database, generate_queries, PipelineConfig, WorkloadConfig};
use mtmlf_exec::Executor;
use mtmlf_optd::{exact_optimal_bushy, exact_optimal_order, PgOptimizer};
use mtmlf_query::treecodec::{codec_dim, decode, encode};
use mtmlf_query::JoinOrder;
use proptest::prelude::*;

/// Rebuilds `q` with its join list deterministically permuted (rotation +
/// optional reversal keyed on `variant`), every other predicate's sides
/// swapped, and each table's filter list rotated. All of these are
/// *semantics-preserving* rewrites: the query denotes the same result, so
/// the canonical fingerprint and any cost-based planner's chosen plan must
/// not change.
fn permuted_query(q: &mtmlf_query::Query, variant: u64) -> mtmlf_query::Query {
    use mtmlf_query::JoinPredicate;
    let mut joins: Vec<JoinPredicate> = q
        .joins()
        .iter()
        .enumerate()
        .map(|(i, j)| {
            if (i as u64 + variant) % 2 == 1 {
                // `a JOIN b ON a.x = b.y` ≡ `... ON b.y = a.x`.
                JoinPredicate::new(j.right, j.left)
            } else {
                *j
            }
        })
        .collect();
    if !joins.is_empty() {
        let r = (variant as usize) % joins.len();
        joins.rotate_left(r);
    }
    if variant % 3 == 0 {
        joins.reverse();
    }
    let filters = q
        .filters()
        .map(|(t, preds)| {
            let mut preds = preds.to_vec();
            if !preds.is_empty() {
                let rot = (variant as usize + 1) % preds.len();
                preds.rotate_left(rot);
            }
            if variant % 2 == 1 {
                preds.reverse();
            }
            (t, preds)
        })
        .collect();
    mtmlf_query::Query::new(q.tables().to_vec(), joins, filters)
        .expect("a permuted well-formed query stays well-formed")
}

fn db_and_queries(seed: u64) -> (mtmlf_storage::Database, Vec<mtmlf_query::Query>) {
    let pipeline = PipelineConfig {
        min_rows: 100,
        max_rows: 400,
        max_attrs: 4,
        ..PipelineConfig::tiny()
    };
    let mut db = generate_database(&format!("prop{seed}"), seed, &pipeline).unwrap();
    db.analyze_all(8, 4);
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: 3,
            max_tables: 4,
            ..WorkloadConfig::default()
        },
        seed ^ 0xABCD,
    );
    (db, queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The true output cardinality is the same under every legal join
    /// order the planners produce.
    #[test]
    fn cardinality_order_independent(seed in 0u64..500) {
        let (db, queries) = db_and_queries(seed);
        let exec = Executor::new(&db);
        for q in &queries {
            let pg = PgOptimizer::new(&db).plan(q).unwrap();
            let opt = exact_optimal_order(&db, q).unwrap();
            let a = exec.execute_order(q, &JoinOrder::LeftDeep(pg.plan.tables())).unwrap();
            let b = exec.execute_order(q, &opt.order).unwrap();
            prop_assert_eq!(a.output_cardinality, b.output_cardinality);
        }
    }

    /// The exact-optimal left-deep order (under true cardinalities) is
    /// never slower than the PostgreSQL-estimated order when both execute
    /// with identical default operators.
    #[test]
    fn exact_optimal_dominates_pg_order(seed in 0u64..500) {
        let (db, queries) = db_and_queries(seed);
        let exec = Executor::new(&db);
        for q in &queries {
            let pg = PgOptimizer::new(&db).plan(q).unwrap();
            let opt = exact_optimal_order(&db, q).unwrap();
            let pg_min = exec
                .execute_order(q, &JoinOrder::LeftDeep(pg.plan.tables()))
                .unwrap()
                .sim_minutes;
            let opt_min = exec.execute_order(q, &opt.order).unwrap().sim_minutes;
            // Allow slack for operator-selection interplay (the DP chooses
            // operators; execution here uses defaults).
            prop_assert!(
                opt_min <= pg_min * 1.15 + 1e-9,
                "optimal {} vs pg {} on {}", opt_min, pg_min, q
            );
        }
    }

    /// The bushy optimum is never worse than the left-deep optimum (it
    /// searches a superset of the plan space) under the planner's metric.
    #[test]
    fn bushy_dominates_left_deep(seed in 0u64..500) {
        let (db, queries) = db_and_queries(seed);
        for q in &queries {
            let ld = exact_optimal_order(&db, q).unwrap();
            let bushy = exact_optimal_bushy(&db, q).unwrap();
            prop_assert!(bushy.estimated_cost <= ld.estimated_cost + 1e-6);
        }
    }

    /// Any optimizer-produced join order round-trips the Section 4.1 tree
    /// codec.
    #[test]
    fn optimizer_orders_roundtrip_codec(seed in 0u64..500) {
        let (db, queries) = db_and_queries(seed);
        for q in &queries {
            let bushy = exact_optimal_bushy(&db, q).unwrap();
            let tree = bushy.order.tree().unwrap();
            let dim = codec_dim(q.table_count()).max(1 << tree.height());
            let embeddings = encode(&tree, dim).unwrap();
            prop_assert_eq!(decode(&embeddings).unwrap(), tree);
        }
    }

    /// Per-node labels are internally consistent: the root cost dominates
    /// and scan cardinalities never exceed table sizes.
    #[test]
    fn label_consistency(seed in 0u64..500) {
        let (db, queries) = db_and_queries(seed);
        let labeled = mtmlf_datagen::label_workload(
            &db,
            &queries,
            &mtmlf_datagen::LabelConfig { parallelism: 1, ..Default::default() },
        )
        .unwrap();
        for l in &labeled {
            let root_cost = *l.node_costs.last().unwrap();
            prop_assert!(l.node_costs.iter().all(|&c| c <= root_cost + 1e-9));
            for (node, &card) in l.plan.post_order().iter().zip(&l.node_cards) {
                if let mtmlf_query::PlanNode::Scan { table, .. } = node {
                    let rows = db.table(*table).unwrap().rows() as u64;
                    prop_assert!(card <= rows);
                }
            }
        }
    }

    /// Metamorphic invariant: reordering join clauses (including flipping
    /// the sides of individual equi-predicates) is a purely syntactic
    /// rewrite, so the canonical fingerprint must not move — the plan cache
    /// keys on it, and a spurious miss here would silently re-plan
    /// identical queries.
    #[test]
    fn fingerprint_invariant_under_join_clause_reordering(
        seed in 0u64..500,
        variant in 1u64..64,
    ) {
        let (_db, queries) = db_and_queries(seed);
        for q in &queries {
            let permuted = permuted_query(q, variant);
            prop_assert_eq!(
                mtmlf_query::fingerprint(q),
                mtmlf_query::fingerprint(&permuted),
                "fingerprint moved under syntactic rewrite of {}", q
            );
        }
    }

    /// Metamorphic invariant: the classical planner's chosen plan cost is
    /// a function of query *semantics*, not of the order in which join
    /// clauses or filter predicates happen to be written.
    #[test]
    fn planner_cost_invariant_under_predicate_permutation(
        seed in 0u64..500,
        variant in 1u64..64,
    ) {
        let (db, queries) = db_and_queries(seed);
        let optimizer = PgOptimizer::new(&db);
        for q in &queries {
            let permuted = permuted_query(q, variant);
            let original = optimizer.plan(q).unwrap();
            let rewritten = optimizer.plan(&permuted).unwrap();
            // Cost arithmetic may sum multi-predicate selectivities in
            // clause order, so allow float-reassociation slack only.
            let tol = original.estimated_cost.abs() * 1e-9 + 1e-9;
            prop_assert!(
                (original.estimated_cost - rewritten.estimated_cost).abs() <= tol,
                "cost moved: {} vs {} on {}",
                original.estimated_cost, rewritten.estimated_cost, q
            );
            // And the exact-DP planner agrees on the permuted query too.
            let a = exact_optimal_order(&db, q).unwrap();
            let b = exact_optimal_order(&db, &permuted).unwrap();
            let tol = a.estimated_cost.abs() * 1e-9 + 1e-9;
            prop_assert!(
                (a.estimated_cost - b.estimated_cost).abs() <= tol,
                "exact-DP cost moved: {} vs {}", a.estimated_cost, b.estimated_cost
            );
        }
    }
}

//! SQL front-end integration: parse JOB-style SQL against the IMDB-shaped
//! catalog, plan it classically and with the learned model, execute it.

use mtmlf_datagen::{imdb::ImdbScale, imdb_lite};
use mtmlf_exec::Executor;
use mtmlf_optd::{exact_optimal_order, PgOptimizer};
use mtmlf_query::sql::parse_sql;

#[test]
fn job_style_sql_parses_and_executes() {
    let mut db = imdb_lite(1, ImdbScale { scale: 0.02 }).unwrap();
    db.analyze_all(8, 4);
    let q = parse_sql(
        &db,
        "SELECT COUNT(*) FROM title t, cast_info ci, name n \
         WHERE ci.movie_id = t.id AND ci.person_id = n.id \
         AND t.production_year >= 2000 AND n.gender = 1",
    )
    .unwrap();
    assert_eq!(q.table_count(), 3);
    let exec = Executor::new(&db);
    let truth = exec.true_cardinality(&q).unwrap();
    // Both planners produce legal plans computing the same cardinality.
    let pg = PgOptimizer::new(&db).plan(&q).unwrap();
    let opt = exact_optimal_order(&db, &q).unwrap();
    assert_eq!(
        exec.execute_plan(&q, &pg.plan).unwrap().output_cardinality,
        truth
    );
    assert_eq!(
        exec.execute_order(&q, &opt.order)
            .unwrap()
            .output_cardinality,
        truth
    );
}

#[test]
fn like_predicates_from_sql() {
    let mut db = imdb_lite(2, ImdbScale { scale: 0.02 }).unwrap();
    db.analyze_all(8, 4);
    let q = parse_sql(
        &db,
        "SELECT COUNT(*) FROM title, movie_info \
         WHERE movie_info.movie_id = title.id AND title.title LIKE '%dark%'",
    )
    .unwrap();
    let exec = Executor::new(&db);
    // Sanity: LIKE filters something but not everything.
    let unfiltered = parse_sql(
        &db,
        "SELECT COUNT(*) FROM title, movie_info WHERE movie_info.movie_id = title.id",
    )
    .unwrap();
    let a = exec.true_cardinality(&q).unwrap();
    let b = exec.true_cardinality(&unfiltered).unwrap();
    assert!(a < b);
}

//! Cardinality-estimation deep dive: why classical estimators fail on
//! skewed, correlated data — and what the learned model does about it.
//!
//! Compares, for a set of increasingly adversarial predicates, the
//! PostgreSQL-style histogram estimate, the per-table encoder `Enc_i`'s
//! estimate, and the truth.
//!
//! ```text
//! cargo run --release --example cardinality_explorer
//! ```

use mtmlf::{FeaturizationModule, MtmlfConfig};
use mtmlf_datagen::{imdb::ImdbScale, imdb_lite};
use mtmlf_exec::evaluate_filters;
use mtmlf_nn::loss::log_pred_to_estimate;
use mtmlf_optd::{q_error, PgEstimator};
use mtmlf_query::{CmpOp, FilterPredicate, LikePattern, Query};
use mtmlf_storage::{ColumnId, TableId, Value};
use std::collections::BTreeMap;

fn main() {
    let mut db = imdb_lite(3, ImdbScale { scale: 0.1 }).expect("imdb_lite schema is static");
    db.analyze_all(24, 12);
    let title = TableId(0);

    println!("fitting the per-table encoders (single-table CardEst pre-training) ...");
    let config = MtmlfConfig {
        enc_queries: 300,
        enc_epochs: 40,
        seed: 3,
        ..MtmlfConfig::default()
    };
    let featurizer = FeaturizationModule::fit(&db, &config).expect("featurizer");

    // Test predicates on `title(id, production_year, kind, title)`:
    let year = ColumnId(1);
    let kind = ColumnId(2);
    let name = ColumnId(3);
    let cases: Vec<(&str, Vec<FilterPredicate>)> = vec![
        (
            "single range (easy for histograms)",
            vec![FilterPredicate::Cmp {
                column: year,
                op: CmpOp::Ge,
                value: Value::Int(2000),
            }],
        ),
        (
            "correlated pair year>=2000 AND kind=5 (independence breaks)",
            vec![
                FilterPredicate::Cmp {
                    column: year,
                    op: CmpOp::Ge,
                    value: Value::Int(2000),
                },
                FilterPredicate::Cmp {
                    column: kind,
                    op: CmpOp::Eq,
                    value: Value::Int(5),
                },
            ],
        ),
        (
            "anti-correlated pair year<=1930 AND kind=6 (near-empty)",
            vec![
                FilterPredicate::Cmp {
                    column: year,
                    op: CmpOp::Le,
                    value: Value::Int(1930),
                },
                FilterPredicate::Cmp {
                    column: kind,
                    op: CmpOp::Eq,
                    value: Value::Int(6),
                },
            ],
        ),
        (
            "LIKE '%dark%' (magic constant in classical estimators)",
            vec![FilterPredicate::Like {
                column: name,
                pattern: LikePattern::Contains("dark".into()),
            }],
        ),
        (
            "LIKE '%dark%' AND year>=2000 (string + correlation)",
            vec![
                FilterPredicate::Like {
                    column: name,
                    pattern: LikePattern::Contains("dark".into()),
                },
                FilterPredicate::Cmp {
                    column: year,
                    op: CmpOp::Ge,
                    value: Value::Int(2000),
                },
            ],
        ),
    ];

    let pg = PgEstimator::new(&db);
    let table = db.table(title).expect("title exists");
    println!(
        "\n{:<58} {:>8} {:>10} {:>8} {:>10} {:>8}",
        "predicate", "truth", "pg est", "pg qerr", "enc est", "enc qerr"
    );
    for (label, filters) in cases {
        let truth = evaluate_filters(table, &filters).expect("evaluation").len() as f64;
        let mut fmap = BTreeMap::new();
        fmap.insert(title, filters.clone());
        let query = Query::new(vec![title], vec![], fmap).expect("query");
        let pg_est = pg.base_cardinality(&query, title).expect("pg estimate");
        let enc = featurizer.encoder(title).expect("encoder");
        let tokens = featurizer.predicate_tokens(title, &filters);
        let enc_est = log_pred_to_estimate(enc.predict_log_card(&tokens).item());
        println!(
            "{label:<58} {truth:>8.0} {pg_est:>10.1} {:>8.1} {enc_est:>10.1} {:>8.1}",
            q_error(pg_est, truth),
            q_error(enc_est, truth),
        );
    }
    println!("\nThe learned encoder adapts to skew, correlation, and string");
    println!("content; the classical estimator is bound to its independence");
    println!("and magic-constant assumptions — the gap behind Table 1.");
}

//! Quickstart: train MTMLF-QO on a small IMDB-shaped database and use it
//! for cardinality estimation, cost estimation, and join-order selection.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mtmlf::{MtmlfConfig, MtmlfQo};
use mtmlf_datagen::{
    generate_queries, imdb::ImdbScale, imdb_lite, label_workload, LabelConfig, WorkloadConfig,
};
use mtmlf_exec::Executor;
use mtmlf_optd::q_error;

fn main() {
    // 1. A database. `imdb_lite` generates a skewed, correlated snowflake
    //    shaped like IMDB; in production this would be your own data.
    let mut db = imdb_lite(7, ImdbScale { scale: 0.04 }).expect("imdb_lite schema is static");
    db.analyze_all(16, 8); // the "ANALYZE" pass of the paper's workflow
    println!("database `{}` with {} tables", db.name(), db.table_count());

    // 2. A labelled workload: the executor computes true per-node
    //    cardinalities and costs; the exact DP labels optimal join orders.
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: 120,
            max_tables: 5,
            ..WorkloadConfig::default()
        },
        42,
    );
    let labeled = label_workload(&db, &queries, &LabelConfig::default()).expect("labelling");
    let (train, test) = labeled.split_at(100);
    println!(
        "labelled {} train / {} test queries",
        train.len(),
        test.len()
    );

    // 3. Train MTMLF-QO: per-table encoders pre-train on single-table
    //    cardinalities, then the shared transformer and all three task
    //    heads train jointly.
    let config = MtmlfConfig {
        epochs: 6,
        seed: 7,
        ..MtmlfConfig::default()
    };
    let mut model = MtmlfQo::new(&db, config).expect("model builds");
    let history = model.train(train).expect("training");
    println!(
        "joint training: epoch losses {:?}",
        history
            .iter()
            .map(|l| (l * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // 4. Use it. Per-node cardinality/cost predictions:
    let sample = &test[0];
    let predictions = model
        .predict_nodes(&sample.query, &sample.plan)
        .expect("prediction");
    println!("\nquery: {}", sample.query);
    for (i, (card, cost)) in predictions.iter().enumerate() {
        println!(
            "  node {i}: predicted card {:>8.0} (true {:>8}), q-error {:.2}; predicted cost {:>12.0}",
            card,
            sample.node_cards[i],
            q_error(*card, sample.node_cards[i] as f64),
            cost,
        );
    }

    // 4b. The classical optimizer's view of the same plan (EXPLAIN with
    //     estimated vs true cardinalities) shows where its statistics err:
    let pg_estimator = mtmlf_optd::PgEstimator::new(&db);
    let explain_text = mtmlf_optd::explain(
        &pg_estimator,
        &db,
        &sample.query,
        &sample.plan,
        Some(&sample.node_cards),
    )
    .expect("explain renders");
    println!("\nclassical EXPLAIN of the initial plan:\n{explain_text}");

    // 5. Join-order selection with the legality-guaranteed beam search:
    let exec = Executor::new(&db);
    let learned = model
        .predict_join_order(&sample.query, &sample.plan)
        .expect("join order");
    let learned_minutes = exec
        .execute_order(&sample.query, &learned)
        .expect("execution")
        .sim_minutes;
    let optimal = sample.optimal_order.as_ref().expect("labelled");
    let optimal_minutes = exec
        .execute_order(&sample.query, optimal)
        .expect("execution")
        .sim_minutes;
    println!("\nlearned join order: {learned}  ({learned_minutes:.4} sim-min)");
    println!("optimal join order: {optimal}  ({optimal_minutes:.4} sim-min)");
}

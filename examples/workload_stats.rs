//! Workload diagnostics: distribution of true cardinalities, emptiness,
//! and classical-estimator error across a generated JOB-like workload.
//! Useful when tuning workload difficulty.
//!
//! ```text
//! cargo run --release --example workload_stats
//! ```

use mtmlf_datagen::{
    generate_queries, imdb::ImdbScale, imdb_lite, label_workload, LabelConfig, WorkloadConfig,
};
use mtmlf_optd::{q_error, PgEstimator, PlanCoster};

fn main() {
    let mut db = imdb_lite(1, ImdbScale { scale: 0.06 }).expect("imdb_lite schema is static");
    db.analyze_all(24, 12);
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: 60,
            min_tables: 3,
            max_tables: 6,
            ..WorkloadConfig::default()
        },
        1 ^ 0x7E57,
    );
    let labeled = label_workload(&db, &queries, &LabelConfig::default()).expect("labelling");

    let estimator = PgEstimator::new(&db);
    let coster = PlanCoster::new(&estimator, &db);
    let mut join_nodes = 0usize;
    let mut empty_nodes = 0usize;
    let mut exactish = 0usize; // q-error < 1.5
    let mut big_err = 0usize; // q-error > 10
    let mut filtered_tables = 0usize;
    let mut total_tables = 0usize;
    let mut root_cards: Vec<u64> = Vec::new();
    let mut errors: Vec<f64> = Vec::new();
    for l in &labeled {
        total_tables += l.query.table_count();
        filtered_tables += l.query.filters().count();
        root_cards.push(l.true_cardinality);
        let graph = l.query.join_graph().unwrap();
        let per_node = coster.per_node(&l.query, &graph, &l.plan).unwrap();
        for (i, node) in l.plan.post_order().iter().enumerate() {
            if node.leaf_count() < 2 {
                continue;
            }
            join_nodes += 1;
            let truth = l.node_cards[i] as f64;
            if truth == 0.0 {
                empty_nodes += 1;
            }
            let e = q_error(per_node[i].0, truth);
            errors.push(e);
            if e < 1.5 {
                exactish += 1;
            }
            if e > 10.0 {
                big_err += 1;
            }
        }
    }
    root_cards.sort_unstable();
    errors.sort_by(f64::total_cmp);
    println!("queries:            {}", labeled.len());
    println!(
        "filtered tables:    {filtered_tables}/{total_tables} ({:.0}%)",
        100.0 * filtered_tables as f64 / total_tables as f64
    );
    println!("join nodes:         {join_nodes}");
    println!(
        "empty join nodes:   {empty_nodes} ({:.0}%)",
        100.0 * empty_nodes as f64 / join_nodes.max(1) as f64
    );
    println!(
        "pg q-error <1.5:    {exactish} ({:.0}%)",
        100.0 * exactish as f64 / join_nodes.max(1) as f64
    );
    println!(
        "pg q-error >10:     {big_err} ({:.0}%)",
        100.0 * big_err as f64 / join_nodes.max(1) as f64
    );
    let pct = |p: f64| errors[((errors.len() - 1) as f64 * p) as usize];
    println!(
        "pg q-error p25/p50/p75/p90: {:.2} / {:.2} / {:.2} / {:.2}",
        pct(0.25),
        pct(0.50),
        pct(0.75),
        pct(0.90)
    );
    println!(
        "root card p10/p50/p90: {} / {} / {}",
        root_cards[root_cards.len() / 10],
        root_cards[root_cards.len() / 2],
        root_cards[root_cards.len() * 9 / 10]
    );
}

//! The cloud-service scenario from the paper's Section 2.3: pre-train the
//! transferable (S)/(T) modules on several customer databases via the
//! meta-learning algorithm (MLA), then onboard a brand-new database by
//! fitting only its featurization module — optionally fine-tuning on a
//! handful of example queries.
//!
//! ```text
//! cargo run --release --example transfer_new_db
//! ```

use mtmlf::{MetaLearner, MtmlfConfig};
use mtmlf_datagen::{
    generate_database, generate_queries, label_workload, LabelConfig, LabeledQuery, PipelineConfig,
    WorkloadConfig,
};
use mtmlf_exec::Executor;
use mtmlf_optd::PgOptimizer;
use mtmlf_query::JoinOrder;
use mtmlf_storage::Database;

fn labelled_db(seed: u64, queries: usize) -> (Database, Vec<LabeledQuery>) {
    let pipeline = PipelineConfig {
        min_rows: 300,
        max_rows: 2_500,
        max_attrs: 5,
        ..PipelineConfig::default()
    };
    let mut db = generate_database(&format!("customer{seed}"), seed, &pipeline).expect("pipeline");
    db.analyze_all(16, 8);
    let wl = generate_queries(
        &db,
        &WorkloadConfig {
            count: queries,
            max_tables: 5,
            ..WorkloadConfig::default()
        },
        seed ^ 0xC0FFEE,
    );
    let labeled = label_workload(&db, &wl, &LabelConfig::default()).expect("labelling");
    (db, labeled)
}

fn main() {
    // Provider side: three customer databases with executed workloads.
    println!("generating customer databases ...");
    let customers: Vec<(Database, Vec<LabeledQuery>)> =
        (1..=3).map(|s| labelled_db(s, 50)).collect();
    for (db, wl) in &customers {
        println!(
            "  {}: {} tables, {} labelled queries",
            db.name(),
            db.table_count(),
            wl.len()
        );
    }

    let config = MtmlfConfig {
        epochs: 6,
        seed: 21,
        ..MtmlfConfig::default()
    };
    let mut meta = MetaLearner::new(config);
    let refs: Vec<(&Database, &[LabeledQuery])> = customers
        .iter()
        .map(|(db, wl)| (db, wl.as_slice()))
        .collect();
    println!("\npre-training (S) and (T) across all customers (Algorithm 1) ...");
    let history = meta.pretrain(&refs).expect("MLA");
    println!(
        "  epoch losses: {:?}",
        history
            .iter()
            .map(|l| (l * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // User side: a brand-new database. Only the featurization module is
    // trained (single-table queries — cheap, like an ANALYZE pass).
    println!("\nonboarding a new database (featurizer only) ...");
    let (new_db, new_workload) = labelled_db(99, 60);
    let (finetune_set, eval_set) = new_workload.split_at(20);
    let mut transferred = meta.transfer(&new_db).expect("transfer");

    let evaluate = |model: &mtmlf::MtmlfQo, tag: &str| {
        let exec = Executor::new(&new_db);
        let pg = PgOptimizer::new(&new_db);
        let mut pg_total = 0.0;
        let mut model_total = 0.0;
        for l in eval_set {
            let pg_order = JoinOrder::LeftDeep(pg.plan(&l.query).expect("pg").plan.tables());
            let order = model
                .predict_join_order(&l.query, &l.plan)
                .expect("prediction");
            pg_total += exec
                .execute_order(&l.query, &pg_order)
                .expect("exec")
                .sim_minutes;
            model_total += exec
                .execute_order(&l.query, &order)
                .expect("exec")
                .sim_minutes;
        }
        println!(
            "  {tag}: {model_total:.3} sim-min vs PostgreSQL {pg_total:.3} ({:+.1}%)",
            100.0 * (pg_total - model_total) / pg_total
        );
    };

    println!(
        "\nevaluating join orders on {} held-out queries:",
        eval_set.len()
    );
    evaluate(&transferred, "zero-shot transfer ");
    transferred
        .fine_tune(finetune_set, 3, 3e-4)
        .expect("fine-tuning");
    evaluate(&transferred, "after fine-tuning  ");
}

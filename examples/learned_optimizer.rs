//! A learned query optimizer in action: compare PostgreSQL-style planning
//! against MTMLF-QO's join orders on a workload, query by query — the
//! scenario that motivates the paper's Table 2.
//!
//! ```text
//! cargo run --release --example learned_optimizer
//! ```

use mtmlf::{MtmlfConfig, MtmlfQo};
use mtmlf_datagen::{
    generate_queries, imdb::ImdbScale, imdb_lite, label_workload, LabelConfig, WorkloadConfig,
};
use mtmlf_exec::Executor;
use mtmlf_optd::PgOptimizer;
use mtmlf_query::JoinOrder;

fn main() {
    let mut db = imdb_lite(11, ImdbScale { scale: 0.05 }).expect("imdb_lite schema is static");
    db.analyze_all(16, 8);
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: 140,
            min_tables: 3,
            max_tables: 6,
            ..WorkloadConfig::default()
        },
        13,
    );
    let labeled = label_workload(&db, &queries, &LabelConfig::default()).expect("labelling");
    let (train, test) = labeled.split_at(110);

    let mut model = MtmlfQo::new(
        &db,
        MtmlfConfig {
            epochs: 6,
            seed: 11,
            ..MtmlfConfig::default()
        },
    )
    .expect("model");
    model.train(train).expect("training");

    let exec = Executor::new(&db);
    let pg = PgOptimizer::new(&db);
    let mut pg_total = 0.0;
    let mut learned_total = 0.0;
    let mut optimal_total = 0.0;
    let mut wins = 0usize;
    println!("query                                   | pg (min) | learned  | optimal");
    println!("----------------------------------------+----------+----------+--------");
    for l in test {
        let pg_order = JoinOrder::LeftDeep(pg.plan(&l.query).expect("pg").plan.tables());
        let learned = model
            .predict_join_order(&l.query, &l.plan)
            .expect("learned order");
        let optimal = l.optimal_order.as_ref().expect("labelled");
        let m = |o: &JoinOrder| {
            exec.execute_order(&l.query, o)
                .expect("execution")
                .sim_minutes
        };
        let (a, b, c) = (m(&pg_order), m(&learned), m(optimal));
        pg_total += a;
        learned_total += b;
        optimal_total += c;
        if b < a {
            wins += 1;
        }
        let q = l.query.to_string();
        let q = if q.len() > 39 { &q[..39] } else { &q };
        println!("{q:<40}| {a:>8.4} | {b:>8.4} | {c:.4}");
    }
    println!("\ntotals over {} queries:", test.len());
    println!("  PostgreSQL-style: {pg_total:>8.3} sim-min");
    println!(
        "  MTMLF-QO:         {learned_total:>8.3} sim-min ({:+.1}% vs PG, beats PG on {wins}/{})",
        100.0 * (pg_total - learned_total) / pg_total,
        test.len()
    );
    println!(
        "  exact optimal:    {optimal_total:>8.3} sim-min ({:+.1}% vs PG)",
        100.0 * (pg_total - optimal_total) / pg_total
    );
}

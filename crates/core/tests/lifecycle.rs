//! Integration tests for the model lifecycle (`mtmlf::lifecycle`):
//! registry properties, swap idempotence, bitwise rollback, drift
//! detection on a skewed window, the shadow-evaluation gate, and the
//! canary promote/rollback loop.
//!
//! Everything here is seeded and deterministic: models are rebuilt from
//! fixed seeds (`MtmlfQo::new` is deterministic per seed), drift windows
//! are counted in requests rather than seconds, and canary routing is a
//! round-robin over a batch counter.

use mtmlf::lifecycle::{CanaryVerdict, DriftSample, ModelSlot, SwapOutcome};
use mtmlf::prelude::*;
use mtmlf::serve::ServiceConfig;
use mtmlf::MtmlfError;
use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};
use mtmlf_storage::Database;
use proptest::prelude::*;
use std::sync::Arc;

fn setup() -> (Arc<MtmlfQo>, Arc<Database>, Vec<Query>) {
    let mut db = imdb_lite(53, ImdbScale { scale: 0.02 }).unwrap();
    db.analyze_all(8, 4);
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: 12,
            max_tables: 4,
            ..WorkloadConfig::default()
        },
        19,
    );
    let model = build_model(&db, 53);
    (Arc::new(model), Arc::new(db), queries)
}

fn build_model(db: &Database, seed: u64) -> MtmlfQo {
    MtmlfQo::new(
        db,
        MtmlfConfig {
            enc_queries: 10,
            enc_epochs: 1,
            seed,
            ..MtmlfConfig::tiny()
        },
    )
    .expect("build model")
}

fn temp_registry(tag: &str) -> (std::path::PathBuf, ModelRegistry) {
    let dir = std::env::temp_dir().join(format!("mtmlf_lifecycle_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = ModelRegistry::open(&dir).expect("open registry");
    (dir, registry)
}

// ---------------------------------------------------------------- registry

#[test]
fn registry_roundtrip_restores_bitwise_identical_plans() {
    let (model, db, queries) = setup();
    let (dir, registry) = temp_registry("roundtrip");
    let version = registry.publish(&model).expect("publish");
    assert_eq!(registry.latest(), Some(version));

    let mut restored = build_model(&db, 99); // different seed: different weights
    registry
        .load_into(version, &mut restored)
        .expect("load snapshot");
    for query in &queries {
        let (base_order, base_card, base_cost) =
            model.plan_with_estimates(query).expect("baseline plan");
        let (rest_order, rest_card, rest_cost) =
            restored.plan_with_estimates(query).expect("restored plan");
        assert_eq!(base_order, rest_order);
        assert_eq!(base_card.to_bits(), rest_card.to_bits());
        assert_eq!(base_cost.to_bits(), rest_cost.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `open` recovers exactly the sorted, deduplicated version set from
    /// the snapshot files on disk, whatever order they were created in —
    /// the zero-padded file names make lexicographic order numeric order.
    #[test]
    fn registry_scan_orders_versions_numerically(
        versions in proptest::collection::vec(1u64..1_000_000, 1..12),
        case in 0u64..u64::MAX,
    ) {
        let dir = std::env::temp_dir().join(format!("mtmlf_lifecycle_scan_{case}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        for v in &versions {
            // Scanning reads names only, so placeholder bytes suffice.
            std::fs::write(dir.join(format!("model-v{v:020}.weights")), b"x")
                .expect("touch snapshot");
        }
        // Distractors the scan must ignore.
        std::fs::write(dir.join("notes.txt"), b"x").expect("touch distractor");
        std::fs::write(dir.join("model-vNaN.weights"), b"x").expect("touch distractor");

        let registry = ModelRegistry::open(&dir).expect("open registry");
        let mut expected: Vec<u64> = versions.clone();
        expected.sort_unstable();
        expected.dedup();
        let got: Vec<u64> = registry.versions().iter().map(|v| v.0).collect();
        prop_assert_eq!(got, expected.clone());
        prop_assert_eq!(registry.latest().map(|v| v.0), expected.last().copied());
        for v in expected {
            prop_assert!(registry.contains(ModelVersion(v)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Publishing always yields strictly increasing versions, regardless
    /// of what versions already exist on disk.
    #[test]
    fn publish_is_monotonic_over_any_existing_set(
        existing in proptest::collection::vec(1u64..1_000, 0..6),
        case in 0u64..u64::MAX,
    ) {
        let dir = std::env::temp_dir().join(format!("mtmlf_lifecycle_mono_{case}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        for v in &existing {
            std::fs::write(dir.join(format!("model-v{v:020}.weights")), b"x")
                .expect("touch snapshot");
        }
        let registry = ModelRegistry::open(&dir).expect("open registry");
        let model = trivial_model();
        let floor = existing.iter().copied().max().unwrap_or(0);
        let first = registry.publish(&model).expect("publish");
        let second = registry.publish(&model).expect("publish again");
        prop_assert!(first.0 > floor);
        prop_assert!(second > first);
        prop_assert_eq!(registry.latest(), Some(second));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A minimal model over a tiny database, built once and shared across
/// proptest cases (publish and swap only read it).
fn trivial_model() -> Arc<MtmlfQo> {
    static MODEL: std::sync::OnceLock<Arc<MtmlfQo>> = std::sync::OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let mut db = imdb_lite(7, ImdbScale { scale: 0.005 }).unwrap();
        db.analyze_all(4, 2);
        Arc::new(
            MtmlfQo::new(
                &db,
                MtmlfConfig {
                    enc_queries: 2,
                    enc_epochs: 1,
                    seed: 7,
                    ..MtmlfConfig::tiny()
                },
            )
            .expect("build trivial model"),
        )
    }))
}

// -------------------------------------------------------------------- swap

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Swap is idempotent: applying each swap of a random version sequence
    /// twice leaves the slot in exactly the state of applying it once —
    /// same active version, and the same rollback target (the doubled
    /// apply must not clobber `previous` with the version itself).
    #[test]
    fn doubled_swaps_equal_single_swaps(
        versions in proptest::collection::vec(1u64..50, 1..10),
    ) {
        let model = trivial_model();
        let single = ModelSlot::new(Arc::clone(&model));
        let doubled = ModelSlot::new(Arc::clone(&model));
        for &v in &versions {
            single.swap(Arc::clone(&model), ModelVersion(v));
            doubled.swap(Arc::clone(&model), ModelVersion(v));
            let second = doubled.swap(Arc::clone(&model), ModelVersion(v));
            if let SwapOutcome::Swapped { .. } = second {
                // A same-version re-swap must be recognized, not re-applied.
                prop_assert!(false, "second swap to v{v} was not idempotent");
            }
            prop_assert_eq!(single.version(), doubled.version());
        }
        // The rollback target agrees too.
        let single_rb = single.rollback().map(|v| v.0).ok();
        let doubled_rb = doubled.rollback().map(|v| v.0).ok();
        prop_assert_eq!(single_rb, doubled_rb);
        prop_assert_eq!(single.version(), doubled.version());
    }
}

#[test]
fn rollback_after_swap_restores_bitwise_identical_plans() {
    let (model, db, queries) = setup();
    let candidate = Arc::new(build_model(&db, 54));
    let service = PlannerService::builder(Arc::clone(&model))
        .model_version(ModelVersion(1))
        .config(ServiceConfig {
            workers: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .start()
        .expect("start service");

    let pinned: Vec<_> = queries.iter().take(6).cloned().collect();
    let baseline: Vec<_> = pinned
        .iter()
        .map(|q| service.plan(q.clone()).expect("baseline plan"))
        .collect();

    match service.swap_model(Arc::clone(&candidate), ModelVersion(2)) {
        SwapOutcome::Swapped { previous } => assert_eq!(previous, ModelVersion(1)),
        other => panic!("expected a swap, got {other:?}"),
    }
    assert_eq!(service.model_version(), ModelVersion(2));
    // The candidate actually serves (sanity, not bitwise-compared).
    for q in &pinned {
        service.plan(q.clone()).expect("candidate plan");
    }

    let restored = service.rollback_model().expect("rollback");
    assert_eq!(restored, ModelVersion(1));
    for (q, base) in pinned.iter().zip(&baseline) {
        let resp = service.plan(q.clone()).expect("post-rollback plan");
        assert_eq!(resp.join_order, base.join_order, "order changed after rollback");
        assert_eq!(resp.est_card.to_bits(), base.est_card.to_bits());
        assert_eq!(resp.est_cost.to_bits(), base.est_cost.to_bits());
    }
    // One level deep: a second rollback has no target.
    assert!(matches!(
        service.rollback_model(),
        Err(MtmlfError::Service(_))
    ));

    let m = service.metrics();
    assert_eq!(m.swaps, 1);
    assert_eq!(m.rollbacks, 1);
}

// ------------------------------------------------------------------- drift

/// End to end: a traced service serves a workload; its traces, joined with
/// skewed "observed" cardinalities (each actual is 4x the estimate —
/// drifting table statistics), push the window's median q-error past the
/// threshold and the detector fires. The same window with faithful actuals
/// stays quiet.
#[test]
fn drift_detector_fires_on_seeded_stat_skew() {
    let (model, _db, queries) = setup();
    let service = PlannerService::builder(model)
        .config(ServiceConfig {
            workers: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .tracing(TraceConfig {
            ring_capacity: 64,
            ..TraceConfig::default()
        })
        .start()
        .expect("start service");
    for q in &queries {
        service.plan(q.clone()).expect("serve");
    }
    let traces = service.traces();
    assert!(traces.len() >= queries.len(), "ring kept the workload");

    let config = DriftConfig {
        min_samples: 8,
        qerror_threshold: 2.5,
        ..DriftConfig::default()
    };
    let mut healthy = DriftDetector::new(config.clone());
    let mut skewed = DriftDetector::new(config);
    let mut replayable = 0;
    for trace in &traces {
        let Some(est) = trace.est_card else { continue };
        replayable += 1;
        healthy.observe_trace(trace, est); // stats faithful: q-error 1
        skewed.observe_trace(trace, est * 4.0); // stats drifted 4x
    }
    assert!(replayable >= 8, "need a full window, got {replayable}");

    let quiet = healthy.score();
    assert!(!quiet.drifted, "faithful stats must not fire: {quiet:?}");
    let fired = skewed.score();
    assert!(fired.drifted, "4x skew must fire: {fired:?}");
    assert!(fired.median_qerror >= 4.0 - 1e-9);

    // The service publishes the score for scraping.
    service.set_drift_score(fired.median_qerror);
    let m = service.metrics();
    assert!((m.drift_score - fired.median_qerror).abs() < 1e-12);
}

// ------------------------------------------------------------------ shadow

/// The shadow gate on a captured window, with *trained* models — untrained
/// card heads all predict the one-tuple floor, which would make every
/// candidate look equivalent. The baseline and candidates are trained; a
/// candidate trained on the same data is promoted, one trained against a
/// different data distribution (stale statistics) is rejected.
#[test]
fn shadow_gate_promotes_equivalent_and_rejects_regressed_candidates() {
    use mtmlf_datagen::{label_workload, LabelConfig};

    let mut db = imdb_lite(53, ImdbScale { scale: 0.02 }).unwrap();
    db.analyze_all(8, 4);
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: 12,
            max_tables: 4,
            ..WorkloadConfig::default()
        },
        19,
    );
    let labeled = label_workload(&db, &queries, &LabelConfig::default()).unwrap();
    let train_cfg = |seed: u64| MtmlfConfig {
        enc_queries: 25,
        enc_epochs: 4,
        epochs: 3,
        seed,
        ..MtmlfConfig::tiny()
    };
    let mut baseline = MtmlfQo::new(&db, train_cfg(53)).expect("build baseline");
    baseline.train(&labeled).expect("train baseline");

    // Ground truth = the baseline's own predictions: the baseline scores a
    // perfect q-error of 1 on every sample, so the 10% regression budget
    // bites any candidate whose estimates drift from the baseline's.
    let window: Vec<DriftSample> = queries
        .iter()
        .filter_map(|q| {
            let (_, card, _) = baseline.plan_with_estimates(q).ok()?;
            Some(DriftSample {
                query: Arc::new(q.clone()),
                predicted_card: card,
                actual_card: card,
                served_order: None,
                reference_order: None,
            })
        })
        .collect();
    assert!(window.len() >= 8, "window too thin: {}", window.len());

    let config = ShadowConfig {
        min_samples: 8,
        ..ShadowConfig::default()
    };
    // Same seed, same data, same (deterministic) training: equivalent.
    let mut equivalent = MtmlfQo::new(&db, train_cfg(53)).expect("build equivalent");
    equivalent.train(&labeled).expect("train equivalent");
    let report = shadow_evaluate(&window, &baseline, &equivalent, &config).expect("evaluate");
    assert!(report.promoted(), "equivalent candidate rejected: {report:?}");

    // The regressed candidate was fitted to a different database instance:
    // same schema, different data distribution, so its estimates diverge
    // from this window's ground truth — the model-staleness failure mode
    // the shadow gate exists to catch.
    let mut stale_db = imdb_lite(99, ImdbScale { scale: 0.02 }).unwrap();
    stale_db.analyze_all(8, 4);
    let stale_queries = generate_queries(
        &stale_db,
        &WorkloadConfig {
            count: 12,
            max_tables: 4,
            ..WorkloadConfig::default()
        },
        19,
    );
    let stale_labeled = label_workload(&stale_db, &stale_queries, &LabelConfig::default()).unwrap();
    let mut regressed = MtmlfQo::new(&stale_db, train_cfg(53)).expect("build regressed");
    regressed.train(&stale_labeled).expect("train regressed");
    let report = shadow_evaluate(&window, &baseline, &regressed, &config).expect("evaluate");
    assert!(
        !report.promoted(),
        "regressed candidate promoted: {report:?}"
    );

    // Through the service wrapper, the evaluation is counted.
    let service = PlannerService::builder(Arc::new(baseline))
        .config(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .start()
        .expect("start service");
    let _ = service
        .shadow_evaluate(&window, &equivalent, &config)
        .expect("service-side evaluate");
    assert_eq!(service.metrics().shadow_evals, 1);
}

// ------------------------------------------------------------------ canary

#[test]
fn canary_promotes_after_a_clean_window() {
    let (model, db, queries) = setup();
    let candidate = Arc::new(build_model(&db, 53)); // healthy candidate
    let service = PlannerService::builder(Arc::clone(&model))
        .model_version(ModelVersion(1))
        .config(ServiceConfig {
            workers: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .start()
        .expect("start service");

    service.begin_canary(Arc::clone(&candidate), ModelVersion(2), 1_000);
    let policy = CanaryPolicy {
        min_window: 4,
        max_failure_rate: 0.05,
    };
    assert_eq!(service.resolve_canary(&policy), CanaryVerdict::Pending);
    for q in queries.iter().take(5) {
        service.plan(q.clone()).expect("canary-window plan");
    }
    match service.resolve_canary(&policy) {
        CanaryVerdict::Promoted(v) => assert_eq!(v, ModelVersion(2)),
        other => panic!("expected promotion, got {other:?}"),
    }
    assert_eq!(service.model_version(), ModelVersion(2));
    let m = service.metrics();
    assert_eq!(m.swaps, 1);
    assert_eq!(m.rollbacks, 0);
    assert!(m.canary_requests >= 4, "canary traffic counted: {m:?}");
    assert!(!m.canary_active, "promotion clears the canary");

    // The promotion kept a rollback target: the pre-canary model.
    assert_eq!(service.rollback_model().expect("rollback"), ModelVersion(1));
}

#[test]
fn canary_rolls_back_automatically_on_regression() {
    let (model, db, queries) = setup();
    // A candidate that cannot plan the workload at all: its table bound is
    // below the workload's join sizes, so every canary request fails.
    let broken = Arc::new(
        MtmlfQo::new(
            &db,
            MtmlfConfig {
                enc_queries: 10,
                enc_epochs: 1,
                seed: 53,
                max_query_tables: 2,
                ..MtmlfConfig::tiny()
            },
        )
        .expect("build broken candidate"),
    );
    let service = PlannerService::builder(Arc::clone(&model))
        .model_version(ModelVersion(1))
        .config(ServiceConfig {
            workers: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .start()
        .expect("start service");

    // Sanity: the workload needs more than two tables somewhere.
    assert!(
        queries.iter().any(|q| q.tables().len() > 2),
        "workload too small to regress the broken candidate"
    );

    service.begin_canary(Arc::clone(&broken), ModelVersion(2), 1_000);
    let policy = CanaryPolicy {
        min_window: 4,
        max_failure_rate: 0.05,
    };
    for q in &queries {
        let _ = service.plan(q.clone()); // failures expected and typed
    }
    match service.resolve_canary(&policy) {
        CanaryVerdict::RolledBack(v) => assert_eq!(v, ModelVersion(2)),
        other => panic!("expected rollback, got {other:?}"),
    }
    assert_eq!(
        service.model_version(),
        ModelVersion(1),
        "live model untouched by the failed canary"
    );
    let m = service.metrics();
    assert_eq!(m.swaps, 0, "a rolled-back canary never counts as a swap");
    assert_eq!(m.rollbacks, 1);
    assert!(!m.canary_active);

    // The service still serves on the original model.
    for q in queries.iter().take(3) {
        service.plan(q.clone()).expect("post-rollback plan");
    }
}

//! Regression tests for `PlannerService::shutdown` racing in-flight
//! requests.
//!
//! The serving path shares two lock families: the autograd tape's
//! `RwLock`s inside the model and the plan cache's shard mutexes. A
//! shutdown racing live `plan` calls must not poison either (clients would
//! start panicking on unrelated queries) and must not drop replies for
//! requests that were already queued (clients would hang or get spurious
//! errors). The bounded-interleaving models in `mtmlf-lint` prove the
//! protocol for 2–3 threads; these tests exercise the real implementation
//! under an actual scheduler.

use mtmlf::prelude::*;
use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn setup() -> (Arc<MtmlfQo>, Vec<Query>) {
    let mut db = imdb_lite(47, ImdbScale { scale: 0.02 }).unwrap();
    db.analyze_all(8, 4);
    let cfg = MtmlfConfig {
        enc_queries: 10,
        enc_epochs: 1,
        seed: 47,
        ..MtmlfConfig::tiny()
    };
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: 6,
            max_tables: 4,
            ..WorkloadConfig::default()
        },
        13,
    );
    let model = MtmlfQo::new(&db, cfg).expect("build model");
    (Arc::new(model), queries)
}

/// Shutdown racing concurrent clients: every `plan` call either succeeds
/// or reports a clean `Service` error — never a hang, a dropped reply, or
/// a panic — and the model's autograd locks stay usable afterwards.
#[test]
fn shutdown_with_inflight_requests_is_graceful() {
    let (model, queries) = setup();
    let service = Arc::new(
        PlannerService::builder(Arc::clone(&model))
            .config(ServiceConfig {
                workers: 2,
                // Linger long enough that shutdown lands while workers
                // still hold open batches with queued jobs behind them.
                batch_linger: Duration::from_millis(2),
                ..ServiceConfig::default()
            })
            .start()
            .expect("start service"),
    );

    let answered = Arc::new(AtomicUsize::new(0));
    let rejected = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for offset in 0..3 {
            let service = Arc::clone(&service);
            let queries = queries.clone();
            let answered = Arc::clone(&answered);
            let rejected = Arc::clone(&rejected);
            scope.spawn(move || {
                for round in 0..8 {
                    let query = queries[(offset + round) % queries.len()].clone();
                    match service.plan(query.clone()) {
                        Ok(response) => {
                            response.join_order.validate(&query).expect("legal order");
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(MtmlfError::Service(_)) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            });
        }
        // Land the shutdown in the middle of the client traffic.
        let service = Arc::clone(&service);
        scope.spawn(move || service.shutdown());
    });
    assert_eq!(
        answered.load(Ordering::Relaxed) + rejected.load(Ordering::Relaxed),
        3 * 8,
        "every request must be answered or cleanly rejected"
    );

    // After shutdown the service refuses politely...
    match service.plan(queries[0].clone()) {
        Err(MtmlfError::Service(_)) => {}
        other => panic!("post-shutdown plan should fail with Service, got {other:?}"),
    }
    // ...and the shared model is untouched: no autograd lock was poisoned
    // by the race, so direct planning still works.
    for query in &queries {
        let (order, _, _) = model.plan_with_estimates(query).expect("model still plans");
        order.validate(query).expect("legal order");
    }
}

/// Requests that made it into the queue before shutdown closed the channel
/// are still planned: workers drain the buffer before exiting, so no
/// accepted request is silently dropped.
#[test]
fn queued_requests_survive_shutdown() {
    let (model, queries) = setup();
    let service =
        Arc::new(PlannerService::builder(model).start().expect("start service"));

    // Warm every query so the follow-up requests are deterministic fast
    // cache hits regardless of where shutdown lands.
    for query in &queries {
        let response = service.plan(query.clone()).expect("warm plan");
        assert_eq!(response.source, PlanSource::Model);
    }

    std::thread::scope(|scope| {
        for query in &queries {
            let service = Arc::clone(&service);
            let query = query.clone();
            scope.spawn(move || {
                // Submitted before or after close — both outcomes are
                // legal; a hung thread here fails the test by timeout.
                let _ = service.plan(query);
            });
        }
        let service = Arc::clone(&service);
        scope.spawn(move || service.shutdown());
    });

    // Shutdown is idempotent.
    service.shutdown();
    assert!(matches!(
        service.plan(queries[0].clone()),
        Err(MtmlfError::Service(_))
    ));
}

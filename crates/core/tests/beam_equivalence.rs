//! Property suite pinning the batched-decode equivalence contract.
//!
//! The decode API promises that every [`BeamConfig`] knob combination is
//! *bitwise* equivalent across execution strategies — `batch` chooses how
//! the work is scheduled, never what is computed:
//!
//! 1. **Batched == sequential** — one packed decoder forward per step
//!    scores exactly what one forward per live prefix scores, for every
//!    width × topology × legality combination.
//! 2. **Multi-query == per-query** — packing several queries' beams into
//!    one forward ([`beam_search_multi`]) returns each query's exact
//!    solo result.
//! 3. **Inference == training-mode forward** — the segment-local packed
//!    attention used under [`no_grad`] reproduces the masked dense path
//!    bit for bit.
//! 4. **Bushy ignores `batch`** — the position-head decode has no step
//!    loop; the scheduling flag must not leak into its output.
//!
//! Equality is `assert_eq!` on candidate vectors, which compares `f32`
//! log-probabilities exactly — any reassociation or re-accumulation in
//! the packed path fails the suite.

use mtmlf::beam::{beam_search, beam_search_bushy, beam_search_multi, BeamConfig};
use mtmlf::config::MtmlfConfig;
use mtmlf::transjo::TransJo;
use mtmlf_nn::{no_grad, Matrix, Var};
use mtmlf_query::JoinGraph;
use mtmlf_storage::TableId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The three join-graph topologies the suite sweeps: a chain (each table
/// joins the next), a star (every table joins a hub), and a clique (every
/// pair joins — legality never prunes).
fn graph(topology: u8, m: usize) -> JoinGraph {
    let vertices = (0..m as u32).map(TableId).collect();
    let edges: Vec<(usize, usize)> = match topology % 3 {
        0 => (0..m - 1).map(|i| (i, i + 1)).collect(),
        1 => (1..m).map(|i| (0, i)).collect(),
        _ => (0..m)
            .flat_map(|a| ((a + 1)..m).map(move |b| (a, b)))
            .collect(),
    };
    JoinGraph::from_edges(vertices, &edges).expect("valid join graph")
}

/// A decoder plus random-but-seeded encoder memory and table reps for an
/// `m`-table query. The model is untrained — equivalence is a property of
/// the computation, not the weights.
fn setup(seed: u64, m: usize) -> (TransJo, Var, Var) {
    let cfg = MtmlfConfig::tiny();
    let jo = TransJo::new(&cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let memory = Var::constant(Matrix::xavier(2 * m - 1, cfg.d_model, &mut rng));
    let table_reps = Var::constant(Matrix::xavier(m, cfg.d_model, &mut rng));
    (jo, memory, table_reps)
}

fn beam_config(width_sel: u8, constrained: bool) -> BeamConfig {
    let config = BeamConfig::new([1, 2, 4, 8][width_sel as usize % 4]);
    if constrained {
        config.constrained()
    } else {
        config.unconstrained()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched decoding returns bit-for-bit what sequential decoding
    /// returns, across widths {1,2,4,8} × {chain,star,clique} ×
    /// {constrained,unconstrained}, with and without gradients enabled.
    #[test]
    fn batched_decode_is_bitwise_sequential(
        seed in 0u64..1_000,
        m in 2usize..=6,
        width_sel in 0u8..4,
        topology in 0u8..3,
        constrained in 0u8..2,
    ) {
        let constrained = constrained == 0;
        let (jo, memory, table_reps) = setup(seed, m);
        let g = graph(topology, m);
        let config = beam_config(width_sel, constrained);

        let sequential = beam_search(&jo, &memory, &table_reps, &g, &config.sequential());
        let batched = beam_search(&jo, &memory, &table_reps, &g, &config.batched());
        prop_assert_eq!(&sequential, &batched, "batched != sequential");

        // The inference path (segment-local attention under `no_grad`)
        // must reproduce the training-mode masked forward bitwise.
        let inference = no_grad(|| beam_search(&jo, &memory, &table_reps, &g, &config.batched()));
        prop_assert_eq!(&batched, &inference, "no_grad != grad-enabled");
    }

    /// Packing several queries into one multi-query decode returns each
    /// query's exact solo result, in input order — including queries of
    /// different sizes and topologies retiring at different steps.
    #[test]
    fn multi_query_decode_matches_per_query(
        seed in 0u64..1_000,
        sizes in proptest::collection::vec((2usize..=5, 0u8..3), 1..4),
        width_sel in 0u8..4,
        constrained in 0u8..2,
    ) {
        let constrained = constrained == 0;
        let max_m = sizes.iter().map(|&(m, _)| m).max().unwrap_or(2);
        let (jo, memory, table_reps) = setup(seed, max_m);
        let config = beam_config(width_sel, constrained);

        let graphs: Vec<JoinGraph> = sizes
            .iter()
            .map(|&(m, topology)| graph(topology, m))
            .collect();
        let reps: Vec<Var> = sizes
            .iter()
            .map(|&(m, _)| table_reps.slice_rows(0, m))
            .collect();
        let caches: Vec<_> = reps
            .iter()
            .map(|r| jo.decode_cache(&memory, r))
            .collect();
        let graph_refs: Vec<&JoinGraph> = graphs.iter().collect();

        let multi = no_grad(|| beam_search_multi(&jo, &caches, &graph_refs, &config));
        for (i, (g, r)) in graphs.iter().zip(&reps).enumerate() {
            let solo = no_grad(|| beam_search(&jo, &memory, r, g, &config));
            prop_assert_eq!(&multi[i], &solo, "query {} diverged in the pack", i);
        }
    }

    /// Bushy decoding has no step loop to batch: the `batch` scheduling
    /// flag must not change its output, under either gradient mode.
    #[test]
    fn bushy_decode_ignores_batch_flag(
        seed in 0u64..1_000,
        m in 2usize..=5,
        width_sel in 0u8..4,
        topology in 0u8..3,
    ) {
        let (jo, memory, table_reps) = setup(seed, m);
        let g = graph(topology, m);
        let config = beam_config(width_sel, true).bushy();

        let sequential =
            beam_search_bushy(&jo, &memory, &table_reps, &g, &config.sequential());
        let batched = beam_search_bushy(&jo, &memory, &table_reps, &g, &config.batched());
        prop_assert_eq!(&sequential, &batched, "batch flag leaked into bushy decode");

        let inference =
            no_grad(|| beam_search_bushy(&jo, &memory, &table_reps, &g, &config.batched()));
        prop_assert_eq!(&batched, &inference, "bushy no_grad != grad-enabled");
    }
}

//! Crash-recovery fault-injection suite for the durable plan cache.
//!
//! Requires the `fault-injection` feature (`cargo test -p mtmlf --features
//! fault-injection`); CI runs it in the `durability` job. The suite attacks
//! the on-disk state of [`mtmlf::PlanStore`] the way real crashes and disk
//! faults do — torn tail writes, flipped bits, a process kill at either
//! step of the compaction protocol — and pins the recovery contract from
//! DESIGN.md §16:
//!
//! 1. **Longest valid prefix.** Recovery replays exactly the log records
//!    before the first torn or corrupt frame, truncates the rest, and
//!    reports how many bytes it dropped.
//! 2. **No corrupt plan is ever surfaced.** Every plan a recovered store
//!    returns is bitwise-identical to a plan that was actually written for
//!    that fingerprint. Losing tail entries is legal; inventing or mangling
//!    one never is.
//! 3. **Removals never resurrect.** Tombstones and epochs are flushed
//!    eagerly, so an entry removed before a crash stays removed after
//!    recovery — including across compaction crash states.
//!
//! Deterministic edge cases (every truncation boundary, every envelope
//! byte) run exhaustively; on top of those, 100 splitmix64-seeded schedules
//! interleave puts, removes, epochs, compactions, and injected kills, then
//! corrupt the files and check recovery against an independently computed
//! model of the surviving prefix.

#![cfg(feature = "fault-injection")]

use mtmlf::durable::{decode_record_payload, encode_record, KillPoint, LogRecord};
use mtmlf::resilience::ManualClock;
use mtmlf::{DurableConfig, PlanPayload, PlanStore};
use mtmlf_query::{JoinOrder, JoinTree, QueryFingerprint};
use mtmlf_storage::TableId;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Envelope geometry, restated independently of the implementation so a
/// silent format change fails loudly here: 8-byte magic, u64 LE payload
/// length, u64 LE FNV-1a checksum, then the payload.
const HEADER_LEN: usize = 24;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// The repo's standard seeded PRNG (splitmix64): one u64 of state, full
/// 64-bit output, replayable from the schedule seed alone.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fp(n: u64) -> QueryFingerprint {
    QueryFingerprint::from_parts(n, n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A plan derived deterministically from `bits`, covering both order shapes
/// and adversarial float values (±0.0, infinities, NaN, subnormals) so the
/// bitwise-equality contract is exercised where `==` on f64 would lie.
fn plan(bits: u64) -> PlanPayload {
    let order = if bits & 1 == 0 {
        let n = 2 + (bits >> 1) % 4;
        JoinOrder::LeftDeep((0..n).map(|i| TableId((bits >> 8) as u32 % 97 + i as u32)).collect())
    } else {
        let t = |i: u64| Box::new(JoinTree::Leaf(TableId((bits >> (8 + 4 * i)) as u32 % 31)));
        JoinOrder::Bushy(JoinTree::Node(
            Box::new(JoinTree::Node(t(0), t(1))),
            Box::new(JoinTree::Node(t(2), t(3))),
        ))
    };
    PlanPayload::new(order, weird_f64(bits.rotate_left(17)), weird_f64(bits.rotate_left(43)))
}

/// Floats that distinguish bitwise equality from `==`.
fn weird_f64(bits: u64) -> f64 {
    match bits % 8 {
        0 => -0.0,
        1 => f64::NAN,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => f64::MIN_POSITIVE / 2.0, // subnormal
        5 => f64::MAX,
        _ => (bits % 100_000) as f64 * 0.125,
    }
}

/// Bitwise plan equality: identical join order and identical f64 bit
/// patterns (NaN == NaN, -0.0 != +0.0).
fn same_plan(a: &PlanPayload, b: &PlanPayload) -> bool {
    a.join_order == b.join_order
        && a.est_card.to_bits() == b.est_card.to_bits()
        && a.est_cost.to_bits() == b.est_cost.to_bits()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtmlf_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic-clock, flush-every-record config: each op is on disk
/// before the next, so the log contents are exactly the op history.
fn eager(dir: &Path) -> DurableConfig {
    DurableConfig::new(dir)
        .with_clock(Arc::new(ManualClock::new()))
        .with_buffer_records(1)
        .with_compact_threshold(usize::MAX / 2)
}

/// Parses the `(start, end)` byte span of every record in an *uncorrupted*
/// log using only the envelope geometry. Panics on a malformed file — the
/// store is supposed to write whole records only.
fn record_spans(log: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut at = 0;
    while at < log.len() {
        assert!(at + HEADER_LEN <= log.len(), "log ends inside a header");
        let len = u64::from_le_bytes(log[at + 8..at + 16].try_into().unwrap()) as usize;
        let end = at + HEADER_LEN + len;
        assert!(end <= log.len(), "log ends inside a payload");
        spans.push((at, end));
        at = end;
    }
    spans
}

/// Decodes every record of an uncorrupted log via the public decoder.
fn decode_log(log: &[u8]) -> Vec<LogRecord> {
    record_spans(log)
        .iter()
        .map(|&(start, end)| {
            decode_record_payload(&log[start + HEADER_LEN..end]).expect("valid record")
        })
        .collect()
}

/// Independent replay model: the state a correct recovery must produce
/// from a record sequence (last-writer-wins puts, tombstone removes,
/// epoch clears).
fn replay(records: &[LogRecord]) -> HashMap<u128, PlanPayload> {
    let mut state = HashMap::new();
    for record in records {
        match record {
            LogRecord::Put { fp, plan, .. } => {
                state.insert(fp.as_u128(), plan.clone());
            }
            LogRecord::Tombstone { fp, .. } => {
                state.remove(&fp.as_u128());
            }
            LogRecord::Epoch { .. } => state.clear(),
        }
    }
    state
}

/// Key domain shared by every schedule: small enough that re-puts, removes
/// of live keys, and resurrect attempts all actually happen.
const DOMAIN: u64 = 12;

/// Asserts a recovered store holds exactly `expected`, bitwise.
fn assert_state(store: &PlanStore, expected: &HashMap<u128, PlanPayload>, context: &str) {
    assert_eq!(store.len(), expected.len(), "{context}: entry count");
    for key in 0..DOMAIN {
        let f = fp(key);
        match (store.get(&f), expected.get(&f.as_u128())) {
            (None, None) => {}
            (Some(got), Some(want)) => assert!(
                same_plan(&got, want),
                "{context}: fp {key} differs: got {got:?}, want {want:?}"
            ),
            (got, want) => {
                panic!("{context}: fp {key} presence differs: got {got:?}, want {want:?}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic exhaustive cases
// ---------------------------------------------------------------------------

/// Pins the envelope geometry this suite's span parser assumes against the
/// public encoder, so a format change cannot silently defang the suite.
#[test]
fn envelope_geometry_matches_public_encoder() {
    let epoch = encode_record(&LogRecord::Epoch { stamp: 7 });
    // Epoch payload is kind (1 byte) + stamp (8 bytes).
    assert_eq!(epoch.len(), HEADER_LEN + 9);
    assert_eq!(u64::from_le_bytes(epoch[8..16].try_into().unwrap()), 9);
    let put = encode_record(&LogRecord::Put { stamp: 7, fp: fp(1), plan: plan(2) });
    assert_eq!(&put[..8], &epoch[..8], "all records share the magic");
    assert_eq!(decode_record_payload(&epoch[HEADER_LEN..]).unwrap(), LogRecord::Epoch { stamp: 7 });
}

/// Writes a six-op history, then truncates the log at **every byte
/// boundary of the final record** (and its interior): recovery must replay
/// exactly the complete-record prefix and report the dropped bytes.
#[test]
fn truncation_at_every_byte_of_final_record() {
    let base = tmpdir("trunc_base");
    {
        let store = PlanStore::open(64, 2, &eager(&base)).unwrap();
        for key in 0..4 {
            store.insert(fp(key), plan(key * 31 + 5));
        }
        store.remove(&fp(1));
        store.insert(fp(4), plan(999));
        store.flush();
    }
    let log = std::fs::read(base.join("plans.log")).unwrap();
    let spans = record_spans(&log);
    assert_eq!(spans.len(), 6, "six ops, six records");
    let records = decode_log(&log);
    let (last_start, last_end) = *spans.last().unwrap();

    for cut in last_start..=last_end {
        let dir = tmpdir("trunc_case");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("plans.log"), &log[..cut]).unwrap();

        let survivors = spans.iter().filter(|&&(_, end)| end <= cut).count();
        // End of the last complete record: where recovery must truncate to.
        let prefix_end = spans[..survivors].last().map_or(0, |&(_, end)| end);
        let expected = replay(&records[..survivors]);
        let (store, report) =
            PlanStore::open_with_report(64, 2, &eager(&dir)).unwrap();
        assert_state(&store, &expected, &format!("cut at {cut}"));
        assert_eq!(report.log_records, survivors, "cut at {cut}");
        assert_eq!(report.truncated_bytes, cut - prefix_end, "cut at {cut}");
        assert!(!report.snapshot_loaded);
        // The invalid tail must be physically gone so appends can resume.
        drop(store);
        let healed = std::fs::read(dir.join("plans.log")).unwrap();
        assert_eq!(healed.len(), prefix_end, "cut at {cut}: tail not truncated");
    }
}

/// Flips one bit in **every byte of every record** — magic, length,
/// checksum, and payload alike: the flipped record and everything after it
/// are dropped; everything before survives bitwise-intact.
#[test]
fn bitflip_in_every_envelope_byte_detected() {
    let base = tmpdir("flip_base");
    {
        let store = PlanStore::open(64, 2, &eager(&base)).unwrap();
        store.insert(fp(0), plan(11));
        store.insert(fp(1), plan(22));
        store.remove(&fp(0));
        store.insert(fp(2), plan(33));
        store.flush();
    }
    let log = std::fs::read(base.join("plans.log")).unwrap();
    let spans = record_spans(&log);
    let records = decode_log(&log);

    for (idx, &(start, end)) in spans.iter().enumerate() {
        let expected = replay(&records[..idx]);
        for byte in start..end {
            let mut corrupted = log.clone();
            corrupted[byte] ^= 1 << (byte % 8);

            let dir = tmpdir("flip_case");
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("plans.log"), &corrupted).unwrap();
            let (store, report) = PlanStore::open_with_report(64, 2, &eager(&dir)).unwrap();
            let context = format!("flip byte {byte} in record {idx}");
            assert_state(&store, &expected, &context);
            assert_eq!(report.log_records, idx, "{context}");
            assert_eq!(report.truncated_bytes, log.len() - start, "{context}");
        }
    }
}

/// Kills compaction at both protocol steps and restarts. Before the rename
/// the old state must be recovered from the log; after the rename the new
/// snapshot is the committed truth. Either way the surfaced state is
/// identical — the kill is invisible to readers.
#[test]
fn kill_points_mid_compaction_are_invisible_after_restart() {
    let dir = tmpdir("kill");
    let mut expected: HashMap<u128, PlanPayload> = HashMap::new();
    {
        let store = PlanStore::open(64, 2, &eager(&dir)).unwrap();
        for key in 0..3 {
            store.insert(fp(key), plan(key * 7 + 1));
            expected.insert(fp(key).as_u128(), plan(key * 7 + 1));
        }
        store.arm_kill(KillPoint::AfterTmpWrite);
        store.compact().expect_err("armed kill must abort compaction");
        assert_eq!(store.log_compactions(), 0);
    }
    // Crash state: tmp file present, snapshot absent, log intact.
    assert!(dir.join("plans.snapshot.tmp").exists());
    {
        let (store, report) = PlanStore::open_with_report(64, 2, &eager(&dir)).unwrap();
        assert!(!report.snapshot_loaded, "tmp write is not a commit");
        assert!(!dir.join("plans.snapshot.tmp").exists(), "recovery removes the orphan tmp");
        assert_state(&store, &expected, "after AfterTmpWrite kill");

        store.insert(fp(5), plan(404));
        expected.insert(fp(5).as_u128(), plan(404));
        store.arm_kill(KillPoint::AfterRename);
        store.compact().expect_err("armed kill must abort compaction");
    }
    // Crash state: snapshot committed, log not yet truncated — replaying
    // the stale log over the snapshot must be idempotent.
    {
        let (store, report) = PlanStore::open_with_report(64, 2, &eager(&dir)).unwrap();
        assert!(report.snapshot_loaded, "rename committed the snapshot");
        assert_state(&store, &expected, "after AfterRename kill");
        store.compact().expect("unarmed compaction succeeds");
        assert_eq!(store.log_bytes(), 0, "successful compaction empties the log");
    }
    let (store, report) = PlanStore::open_with_report(64, 2, &eager(&dir)).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(report.log_records, 0);
    assert_state(&store, &expected, "after clean compaction");
}

/// Satellite regression: a removed entry must stay dead across a torn tail
/// *and* across compaction. Garbage appended after the tombstone cannot
/// resurrect it, because the tombstone was flushed before the remove was
/// acknowledged.
#[test]
fn removals_stay_dead_through_torn_tails_and_compaction() {
    let dir = tmpdir("resurrect");
    {
        let store = PlanStore::open(64, 2, &eager(&dir)).unwrap();
        store.insert(fp(0), plan(1));
        store.insert(fp(1), plan(2));
        store.remove(&fp(0));
        store.flush();
    }
    // A torn partial record lands after the tombstone.
    let log_path = dir.join("plans.log");
    let mut bytes = std::fs::read(&log_path).unwrap();
    let garbage = encode_record(&LogRecord::Put { stamp: 9, fp: fp(0), plan: plan(66) });
    bytes.extend_from_slice(&garbage[..garbage.len() - 3]);
    std::fs::write(&log_path, &bytes).unwrap();
    {
        let store = PlanStore::open(64, 2, &eager(&dir)).unwrap();
        assert!(store.get(&fp(0)).is_none(), "torn tail resurrected a removed plan");
        assert!(store.get(&fp(1)).is_some());
        store.compact().unwrap();
    }
    // And again after the tombstone has been folded into the snapshot.
    let store = PlanStore::open(64, 2, &eager(&dir)).unwrap();
    assert!(store.get(&fp(0)).is_none(), "compaction resurrected a removed plan");
    assert!(store.get(&fp(1)).is_some());
}

// ---------------------------------------------------------------------------
// 100 seeded schedules
// ---------------------------------------------------------------------------

/// 100 seeded random schedules. Even seeds exercise the compaction path
/// (auto and explicit, with kills injected at both protocol steps) and
/// must round-trip *exactly*. Odd seeds skip compaction — making the log
/// the complete history — then corrupt it (truncation or a bit flip) and
/// check recovery against the independently computed surviving prefix.
/// Every schedule also checks the global soundness rule: no surfaced plan
/// differs bitwise from one that was written for its fingerprint.
#[test]
fn hundred_seeded_schedules_recover_exactly() {
    for seed in 0..100 {
        run_schedule(seed);
    }
}

fn run_schedule(seed: u64) {
    let mut rng = seed ^ 0xdead_beef_cafe_f00d;
    let with_compaction = seed % 2 == 0;
    let dir = tmpdir(&format!("sched{seed}"));
    let ctx = format!("seed {seed}");

    let mut config = DurableConfig::new(&dir)
        .with_clock(Arc::new(ManualClock::new()))
        .with_buffer_records(1);
    config = if with_compaction {
        // Small threshold so auto-compaction fires mid-schedule too.
        config.with_compact_threshold(8 + (splitmix64(&mut rng) % 8) as usize)
    } else {
        config.with_compact_threshold(usize::MAX / 2)
    };

    let (store, report) = PlanStore::open_with_report(256, 4, &config).unwrap();
    assert_eq!(report, Default::default(), "{ctx}: fresh dir must recover nothing");

    // Reference model of the final state, plus every plan ever written per
    // fingerprint (for the no-corrupt-plan rule, which holds even when the
    // recovered state is an earlier prefix).
    let mut model: HashMap<u128, PlanPayload> = HashMap::new();
    let mut written: HashMap<u128, Vec<PlanPayload>> = HashMap::new();

    let ops = 20 + (splitmix64(&mut rng) % 40) as usize;
    for _ in 0..ops {
        let key = splitmix64(&mut rng) % DOMAIN;
        match splitmix64(&mut rng) % 16 {
            0..=9 => {
                let p = plan(splitmix64(&mut rng));
                store.insert(fp(key), p.clone());
                model.insert(fp(key).as_u128(), p.clone());
                written.entry(fp(key).as_u128()).or_default().push(p);
            }
            10..=12 => {
                store.remove(&fp(key));
                model.remove(&fp(key).as_u128());
            }
            13 => {
                store.clear();
                model.clear();
            }
            _ if with_compaction => {
                if splitmix64(&mut rng) % 3 == 0 {
                    let point = if splitmix64(&mut rng) % 2 == 0 {
                        KillPoint::AfterTmpWrite
                    } else {
                        KillPoint::AfterRename
                    };
                    store.arm_kill(point);
                    store.compact().expect_err("armed kill must abort");
                } else {
                    store.compact().unwrap();
                }
            }
            _ => {}
        }
    }
    store.flush();
    drop(store);

    let expected = if with_compaction {
        // Snapshot + log must reproduce the full history exactly.
        model.clone()
    } else {
        // The log *is* the history; corrupt it and compute the surviving
        // prefix independently.
        let log_path = dir.join("plans.log");
        let log = std::fs::read(&log_path).unwrap();
        let spans = record_spans(&log);
        let records = decode_log(&log);
        let full = replay(&records);
        assert_eq!(full.len(), model.len(), "{ctx}: log does not reproduce the model");
        for (key, want) in &model {
            assert!(same_plan(&full[key], want), "{ctx}: log replay differs from model");
        }

        match splitmix64(&mut rng) % 3 {
            0 => model.clone(), // no corruption: exact round-trip
            1 => {
                let cut = (splitmix64(&mut rng) as usize) % (log.len() + 1);
                std::fs::write(&log_path, &log[..cut]).unwrap();
                let survivors = spans.iter().filter(|&&(_, end)| end <= cut).count();
                replay(&records[..survivors])
            }
            _ => {
                let byte = (splitmix64(&mut rng) as usize) % log.len();
                let mut corrupted = log.clone();
                corrupted[byte] ^= 1 << (splitmix64(&mut rng) % 8);
                std::fs::write(&log_path, &corrupted).unwrap();
                let hit = spans.iter().position(|&(start, end)| start <= byte && byte < end);
                replay(&records[..hit.expect("flip lands inside some record")])
            }
        }
    };

    let (store, report) = PlanStore::open_with_report(256, 4, &config).unwrap();
    assert_state(&store, &expected, &ctx);
    assert_eq!(
        store.warm_start_entries(),
        expected.len() as u64,
        "{ctx}: warm-start counter"
    );
    assert_eq!(report.entries_restored, expected.len(), "{ctx}: report entries");
    // Soundness: nothing surfaced that was never written.
    for key in 0..DOMAIN {
        if let Some(got) = store.get(&fp(key)) {
            let history = written.get(&fp(key).as_u128());
            assert!(
                history.is_some_and(|h| h.iter().any(|p| same_plan(p, &got))),
                "{ctx}: fp {key} surfaced a plan that was never written: {got:?}"
            );
        }
    }
}

//! Cluster integration suite: real [`PlannerService`] replicas behind the
//! consistent-hash router, driven over deterministic simulated networks.
//!
//! Every test pins its seeds, so a failing schedule replays exactly. The
//! suite asserts the cluster's core contract from DESIGN.md §12:
//!
//! * **Exactly one reply** — each `plan` call returns one response or one
//!   typed error, across replica kills, revivals, and gossip loss.
//! * **No lost responses** — a request routed to a dying replica fails
//!   over to a ring survivor instead of erroring or hanging.
//! * **Payload fidelity** — answers match the single-threaded facade
//!   bitwise, whichever replica serves them and however gossip mangles the
//!   warming traffic (drops, delays, reorders are performance noise, never
//!   correctness).

use mtmlf::cluster::{
    ClusterConfig, ClusterService, ReplicaNode, ServiceReplica, SimNet, Transport,
};
use mtmlf::prelude::*;
use mtmlf::serve::ServiceConfig;
use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};
use mtmlf_query::fingerprint;
use mtmlf_storage::Database;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn setup() -> (Arc<MtmlfQo>, Arc<Database>, Vec<Query>) {
    let mut db = imdb_lite(67, ImdbScale { scale: 0.02 }).unwrap();
    db.analyze_all(8, 4);
    let cfg = MtmlfConfig {
        enc_queries: 10,
        enc_epochs: 1,
        seed: 67,
        max_query_tables: 8,
        ..MtmlfConfig::tiny()
    };
    let mut queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: 6,
            max_tables: 4,
            ..WorkloadConfig::default()
        },
        31,
    );
    // Distinct fingerprints only: the suite counts gossip per first
    // sighting, and a repeated query would be a cache hit instead.
    let mut seen = std::collections::HashSet::new();
    queries.retain(|q| seen.insert(fingerprint(q)));
    let model = MtmlfQo::new(&db, cfg).expect("build model");
    (Arc::new(model), Arc::new(db), queries)
}

fn replica_config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    }
}

/// Builds `n` killable replicas over one model plus the cluster routing
/// them through `transport`.
fn cluster_with_transport(
    model: &Arc<MtmlfQo>,
    n: usize,
    config: ClusterConfig,
    transport: Arc<dyn Transport>,
) -> (ClusterService, Vec<Arc<ServiceReplica>>) {
    let replicas: Vec<Arc<ServiceReplica>> = (0..n)
        .map(|_| {
            let service = PlannerService::builder(Arc::clone(model))
                .config(replica_config())
                .start()
                .expect("replica starts");
            Arc::new(ServiceReplica::new(service))
        })
        .collect();
    let nodes: Vec<Arc<dyn ReplicaNode>> = replicas
        .iter()
        .map(|r| Arc::clone(r) as Arc<dyn ReplicaNode>)
        .collect();
    let cluster =
        ClusterService::from_replicas(nodes, config, transport).expect("cluster assembles");
    (cluster, replicas)
}

/// The cluster's answers are bitwise identical to the facade's, whichever
/// replica the ring picks, and the router accounts for every request.
#[test]
fn cluster_matches_the_facade_bitwise() {
    let (model, _db, queries) = setup();
    let cluster = ClusterService::builder(Arc::clone(&model))
        .replicas(2)
        .service_config(replica_config())
        .start()
        .expect("cluster starts");
    for query in &queries {
        let resp = cluster
            .plan(PlanRequest::new(query.clone()))
            .expect("cluster plans");
        let (order, card, cost) = model.plan_with_estimates(query).expect("facade plans");
        assert_eq!(resp.join_order, order);
        assert_eq!(resp.est_card.to_bits(), card.to_bits());
        assert_eq!(resp.est_cost.to_bits(), cost.to_bits());
    }
    let m = cluster.metrics();
    let routed: u64 = m.replicas.iter().map(|r| r.routed).sum();
    assert_eq!(routed, queries.len() as u64, "every request accounted to a replica");
    assert_eq!(m.failovers, 0, "no failovers with all replicas live");
}

/// Warm gossip over a lossy, delaying, reordering network: after enough
/// pump rounds, every delivered warm is applied, and replicas that missed
/// a (dropped) warm still answer correctly — warming is an optimization,
/// never a correctness dependency.
#[test]
fn warm_gossip_survives_drops_delays_and_reorders() {
    let (model, _db, queries) = setup();
    let net = Arc::new(
        SimNet::new(0xC1D2_2022)
            .with_drop_permille(250)
            .with_max_delay(3)
            .with_reorder(),
    );
    let (cluster, replicas) = cluster_with_transport(
        &model,
        3,
        ClusterConfig::default(),
        Arc::clone(&net) as Arc<dyn Transport>,
    );
    for query in &queries {
        let resp = cluster
            .plan(PlanRequest::new(query.clone()))
            .expect("cluster plans under lossy gossip");
        assert_eq!(resp.source, PlanSource::Model, "first sighting runs the model");
    }
    // Mature every in-flight warm (max_delay rounds is enough) and apply.
    for _ in 0..4 {
        cluster.pump_gossip();
    }
    let stats = net.stats();
    assert_eq!(
        stats.sent,
        queries.len() as u64 * 2,
        "each plan gossips to both peers"
    );
    assert!(stats.dropped > 0, "seed 0xC1D22022 drops some warms");
    assert_eq!(
        stats.delivered,
        stats.sent - stats.dropped,
        "every undropped warm is eventually delivered"
    );
    let m = cluster.metrics();
    assert_eq!(m.warms_applied, stats.delivered, "every delivered warm applied");
    assert_eq!(m.warms_discarded, 0, "nothing invalidated, nothing stale");
    // Replicas warmed for a query answer it from cache without a forward.
    for query in &queries {
        let fp = fingerprint(query);
        let holders = replicas
            .iter()
            .filter(|r| r.service().cached_payload(&fp).is_some())
            .count();
        assert!(holders >= 1, "at least the planner itself holds the plan");
        let resp = cluster
            .plan(PlanRequest::new(query.clone()))
            .expect("replan succeeds");
        assert_eq!(resp.source, PlanSource::Cache, "replan hits a cache");
    }
}

/// A delayed warm that arrives after its plan was invalidated is discarded
/// by the epoch tombstone instead of resurrecting stale state.
#[test]
fn invalidation_tombstones_warms_still_in_flight() {
    let (model, _db, queries) = setup();
    // Reliable but slow: every warm is delayed a round, so an invalidation
    // can overtake it.
    let net = Arc::new(SimNet::new(7).with_max_delay(1));
    let (cluster, replicas) = cluster_with_transport(
        &model,
        2,
        ClusterConfig::default(),
        Arc::clone(&net) as Arc<dyn Transport>,
    );
    let query = queries[0].clone();
    let fp = fingerprint(&query);
    let _ = cluster.plan(PlanRequest::new(query)).expect("plan");
    // The warm may still be in flight; invalidate before pumping.
    let _ = cluster.invalidate(&fp);
    for _ in 0..3 {
        cluster.pump_gossip();
    }
    for (i, replica) in replicas.iter().enumerate() {
        assert!(
            replica.service().cached_payload(&fp).is_none(),
            "replica {i} resurrected an invalidated plan from a late warm"
        );
    }
    let m = cluster.metrics();
    let in_flight_warm_arrived = net.stats().delivered > 0;
    assert!(
        !in_flight_warm_arrived || m.warms_discarded > 0,
        "a delivered post-invalidation warm must be discarded: {m:?}"
    );
}

/// Replica-kill chaos: concurrent clients stream requests while a killer
/// thread kills and revives replicas. Every accepted request gets exactly
/// one reply and none are lost — kills surface as failovers, not errors.
#[test]
fn replica_kill_chaos_exactly_one_reply_no_lost_responses() {
    let (model, _db, queries) = setup();
    let cluster_cfg = ClusterConfig {
        // Health eviction and the candidate walk do the failover; disable
        // the router breakers (threshold 0) so a kill storm never leaves
        // every candidate rejected.
        breaker: mtmlf::BreakerConfig {
            failure_threshold: 0,
            ..mtmlf::BreakerConfig::default()
        },
        ..ClusterConfig::default()
    };
    let net: Arc<dyn Transport> = Arc::new(SimNet::new(99).with_drop_permille(100));
    let (cluster, replicas) = cluster_with_transport(&model, 3, cluster_cfg, net);
    let cluster = Arc::new(cluster);
    let replies = Arc::new(AtomicU64::new(0));
    let submitted = Arc::new(AtomicU64::new(0));

    const ROUNDS: usize = 12;
    std::thread::scope(|scope| {
        // Killer: cycles each replica through kill -> revive while clients
        // stream. Never kills more than one replica at a time, so the ring
        // always has survivors.
        let killer_replicas = &replicas;
        scope.spawn(move || {
            for round in 0..ROUNDS {
                let victim = &killer_replicas[round % killer_replicas.len()];
                victim.kill();
                std::thread::sleep(std::time::Duration::from_millis(3));
                victim.revive();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        for offset in 0..3usize {
            let cluster = Arc::clone(&cluster);
            let replies = Arc::clone(&replies);
            let submitted = Arc::clone(&submitted);
            let queries = &queries;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let query = queries[(offset + round) % queries.len()].clone();
                    submitted.fetch_add(1, Ordering::SeqCst);
                    match cluster.plan(PlanRequest::new(query.clone())) {
                        Ok(resp) => {
                            replies.fetch_add(1, Ordering::SeqCst);
                            resp.join_order.validate(&query).expect("legal join order");
                        }
                        Err(e) => panic!(
                            "request lost to a replica kill (round {round}): {e}"
                        ),
                    }
                }
            });
        }
    });

    assert_eq!(
        replies.load(Ordering::SeqCst),
        submitted.load(Ordering::SeqCst),
        "exactly one reply per submitted request"
    );
    assert_eq!(submitted.load(Ordering::SeqCst), (3 * ROUNDS) as u64);
    let m = cluster.metrics();
    let routed: u64 = m.replicas.iter().map(|r| r.routed).sum();
    assert_eq!(routed, submitted.load(Ordering::SeqCst), "router accounted every reply");
}

/// Killing a replica re-homes its keys to survivors — and because the plan
/// was gossiped while the replica was alive, the survivor answers from its
/// warmed cache. Reviving the replica restores the original routing
/// (consistent hashing, not mod-N).
#[test]
fn dead_replicas_keys_rehash_to_warm_survivors_and_return() {
    let (model, _db, queries) = setup();
    let (cluster, replicas) = cluster_with_transport(
        &model,
        3,
        ClusterConfig::default(),
        Arc::new(mtmlf::cluster::DirectTransport::new()),
    );
    // Warm every query once and record which replica served each.
    let owner_of = |q: &Query| -> usize {
        let before = cluster.metrics();
        let _ = cluster.plan(PlanRequest::new(q.clone())).expect("plan");
        let after = cluster.metrics();
        (0..3)
            .find(|&i| after.replicas[i].routed > before.replicas[i].routed)
            .expect("some replica served it")
    };
    let owners: Vec<usize> = queries.iter().map(&owner_of).collect();
    // Flush the last round of warm gossip to the peers.
    cluster.pump_gossip();
    let (victim_idx, query) = owners
        .iter()
        .zip(&queries)
        .map(|(&o, q)| (o, q.clone()))
        .next()
        .expect("at least one query");
    replicas[victim_idx].kill();
    let resp = cluster
        .plan(PlanRequest::new(query.clone()))
        .expect("survivor serves the dead replica's key");
    assert_eq!(
        resp.source,
        PlanSource::Cache,
        "gossip warming made the failover a cache hit"
    );
    assert!(
        !cluster.ring_members().contains(&mtmlf::cluster::ReplicaId(victim_idx)),
        "dead replica left the ring"
    );
    replicas[victim_idx].revive();
    let before = cluster.metrics();
    let _ = cluster.plan(PlanRequest::new(query)).expect("plan after revival");
    let after = cluster.metrics();
    assert!(
        after.replicas[victim_idx].routed > before.replicas[victim_idx].routed,
        "revived replica took its key back"
    );
    let err = cluster.plan(PlanRequest::new(queries[0].clone()));
    assert!(err.is_ok(), "cluster healthy after the churn: {err:?}");
}

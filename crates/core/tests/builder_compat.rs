//! Compatibility tests for the deprecated `PlannerService::start*`
//! constructors: they are thin shims over [`mtmlf::ServiceBuilder`] and
//! must keep serving until their announced removal in 0.2.
//!
//! The feature-gated `start_with_faults` shim has its compatibility test
//! in `tests/chaos.rs` (it needs a `FaultPlan`).
#![allow(deprecated)]

use mtmlf::prelude::*;
use mtmlf::serve::ServiceConfig;
use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};
use mtmlf_storage::Database;
use std::sync::Arc;

fn setup(max_query_tables: usize) -> (Arc<MtmlfQo>, Arc<Database>, Vec<Query>) {
    let mut db = imdb_lite(61, ImdbScale { scale: 0.02 });
    db.analyze_all(8, 4);
    let cfg = MtmlfConfig {
        enc_queries: 10,
        enc_epochs: 1,
        seed: 61,
        max_query_tables,
        ..MtmlfConfig::tiny()
    };
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: 3,
            max_tables: 4,
            ..WorkloadConfig::default()
        },
        23,
    );
    let model = MtmlfQo::new(&db, cfg).expect("build model");
    (Arc::new(model), Arc::new(db), queries)
}

/// `PlannerService::start` still spawns a working pool and plans queries
/// exactly like `builder(..).config(..).start()`.
#[test]
fn deprecated_start_shim_still_serves() {
    let (model, _db, queries) = setup(8);
    let service = PlannerService::start(
        Arc::clone(&model),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    )
    .expect("shim starts");
    for query in &queries {
        let resp = service.plan(query.clone()).expect("shim plans");
        assert_eq!(resp.source, PlanSource::Model);
        let (order, card, cost) = model.plan_with_estimates(query).expect("direct");
        assert_eq!(resp.join_order, order);
        assert_eq!(resp.est_card.to_bits(), card.to_bits());
        assert_eq!(resp.est_cost.to_bits(), cost.to_bits());
    }
    let m = service.metrics();
    assert_eq!(m.requests, queries.len() as u64);
    assert_eq!(m.errors, 0);
    service.shutdown();
}

/// `PlannerService::start_with_fallback` still wires the classical
/// fallback: a model that admits too few tables degrades per request.
#[test]
fn deprecated_start_with_fallback_shim_still_serves() {
    let (model, db, _queries) = setup(3);
    let big = generate_queries(
        &db,
        &WorkloadConfig {
            count: 2,
            min_tables: 4,
            max_tables: 4,
            ..WorkloadConfig::default()
        },
        29,
    );
    let service = PlannerService::start_with_fallback(
        model,
        Some(FallbackPlanner::new(Arc::clone(&db))),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    )
    .expect("shim starts");
    for query in &big {
        let resp = service.plan(query.clone()).expect("fallback answers");
        assert_eq!(resp.source, PlanSource::Fallback);
        resp.join_order.validate(query).expect("legal join order");
    }
    let m = service.metrics();
    assert_eq!(m.fallbacks, big.len() as u64);
    assert_eq!(m.errors, 0);
    service.shutdown();
}

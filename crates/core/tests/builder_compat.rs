//! Surface tests for the 0.2 client API: the builder is the only way to
//! start a service (the deprecated `start*` shims are gone), and every
//! planning mode — the single-threaded facade and the worker-pool service —
//! speaks the unified [`PlanClient`] request/response vocabulary.

use mtmlf::prelude::*;
use mtmlf::serve::ServiceConfig;
use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};
use mtmlf_storage::Database;
use std::sync::Arc;
use std::time::Duration;

fn setup(max_query_tables: usize) -> (Arc<MtmlfQo>, Arc<Database>, Vec<Query>) {
    let mut db = imdb_lite(61, ImdbScale { scale: 0.02 }).unwrap();
    db.analyze_all(8, 4);
    let cfg = MtmlfConfig {
        enc_queries: 10,
        enc_epochs: 1,
        seed: 61,
        max_query_tables,
        ..MtmlfConfig::tiny()
    };
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: 3,
            max_tables: 4,
            ..WorkloadConfig::default()
        },
        23,
    );
    let model = MtmlfQo::new(&db, cfg).expect("build model");
    (Arc::new(model), Arc::new(db), queries)
}

/// `builder(..).config(..).start()` spawns a working pool whose answers
/// are bitwise identical to the facade's.
#[test]
fn builder_starts_a_service_that_matches_the_facade() {
    let (model, _db, queries) = setup(8);
    let service = PlannerService::builder(Arc::clone(&model))
        .config(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .start()
        .expect("builder starts");
    for query in &queries {
        let resp = service.plan(query.clone()).expect("service plans");
        assert_eq!(resp.source, PlanSource::Model);
        let (order, card, cost) = model.plan_with_estimates(query).expect("direct");
        assert_eq!(resp.join_order, order);
        assert_eq!(resp.est_card.to_bits(), card.to_bits());
        assert_eq!(resp.est_cost.to_bits(), cost.to_bits());
    }
    let m = service.metrics();
    assert_eq!(m.requests, queries.len() as u64);
    assert_eq!(m.errors, 0);
    service.shutdown();
}

/// The facade and the service implement the same [`PlanClient`] trait and
/// produce the same payloads through it: callers can hold `&dyn PlanClient`
/// and stay oblivious to the serving mode.
#[test]
fn facade_and_service_agree_through_the_plan_client_trait() {
    let (model, _db, queries) = setup(8);
    let service = PlannerService::builder(Arc::clone(&model))
        .config(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .start()
        .expect("builder starts");
    let modes: [(&str, &dyn PlanClient); 2] = [("facade", &*model), ("service", &service)];
    for query in &queries {
        let mut payloads = Vec::new();
        for (name, client) in modes {
            let resp = client
                .plan(PlanRequest::new(query.clone()))
                .unwrap_or_else(|e| panic!("{name} plans: {e}"));
            assert_eq!(resp.source, PlanSource::Model, "{name} reports model source");
            payloads.push(resp.payload());
        }
        assert_eq!(payloads[0], payloads[1], "modes agree on the payload");
    }
    service.shutdown();
}

/// `plan_batch` answers every request in order, mixing cache hits with
/// fresh plans, and the batched answers match the one-at-a-time answers.
#[test]
fn plan_batch_answers_every_request_in_order() {
    let (model, _db, queries) = setup(8);
    let service = PlannerService::builder(Arc::clone(&model))
        .config(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        })
        .start()
        .expect("builder starts");
    // Duplicate the workload so the batch contains repeats (cache collapse).
    let requests: Vec<PlanRequest> = queries
        .iter()
        .chain(queries.iter())
        .map(|q| PlanRequest::new(q.clone()))
        .collect();
    let responses = PlanClient::plan_batch(&service, requests);
    assert_eq!(responses.len(), queries.len() * 2);
    for (i, resp) in responses.iter().enumerate() {
        let resp = resp.as_ref().expect("batched request answered");
        let query = &queries[i % queries.len()];
        let (order, ..) = model.plan_with_estimates(query).expect("direct");
        assert_eq!(resp.join_order, order, "response {i} kept its slot");
    }
    service.shutdown();
}

/// The unified request shape carries deadline and trace opt-out to the
/// service: an opted-out request leaves no trace even on a tracing service.
#[test]
fn requests_carry_deadline_and_trace_preferences() {
    let (model, _db, queries) = setup(8);
    let service = PlannerService::builder(Arc::clone(&model))
        .config(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .tracing(TraceConfig::default())
        .start()
        .expect("builder starts");
    let query = queries[0].clone();
    let traced = service
        .plan(PlanRequest::new(query.clone()).with_deadline(Duration::from_secs(30)))
        .expect("traced plan");
    assert_eq!(traced.source, PlanSource::Model);
    assert_eq!(service.traces().len(), 1, "default: traced when configured");
    let _ = service
        .plan(PlanRequest::new(query).with_tracing(false))
        .expect("opted-out plan");
    assert_eq!(service.traces().len(), 1, "opt-out left no new trace");
    service.shutdown();
}

/// The facade honors the request deadline contract: an impossible budget
/// yields `Timeout`, never a late response.
#[test]
fn facade_rejects_blown_deadlines() {
    let (model, _db, queries) = setup(8);
    let client: &dyn PlanClient = &*model;
    let err = client
        .plan(PlanRequest::new(queries[0].clone()).with_deadline(Duration::ZERO))
        .expect_err("zero budget cannot be met");
    assert!(matches!(err, MtmlfError::Timeout));
    let ok = client
        .plan(PlanRequest::new(queries[0].clone()).with_deadline(Duration::from_secs(60)))
        .expect("generous budget is met");
    assert_eq!(ok.source, PlanSource::Model);
}

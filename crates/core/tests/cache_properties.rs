//! Property tests for [`mtmlf::ShardedLruCache`].
//!
//! Two invariants over arbitrary interleaved op sequences:
//!
//! 1. **Bounded occupancy** — the cache never holds more entries than its
//!    shard-rounded capacity, `ceil(capacity / shards) * shards`. (Capacity
//!    is split evenly across shards, rounding each shard's share up, so the
//!    total bound can exceed the nominal capacity by at most `shards − 1`;
//!    a zero-capacity cache stores nothing at all.)
//! 2. **Get-after-put** — immediately after `insert(k, v)`, `get(&k)`
//!    returns `v` whenever the cache can hold anything: the inserted key is
//!    the most-recently-used entry of its shard and therefore cannot have
//!    been evicted by its own insertion.

use mtmlf::ShardedLruCache;
use proptest::prelude::*;

/// One step of an interleaved workload: `(tag, key, value)` where an even
/// tag is `insert(key, value)` and an odd tag is `get(&key)`. Keys are drawn
/// from a small domain so sequences revisit keys and actually exercise
/// recency bumps and in-place updates, not just cold inserts.
type Op = (u8, u64, u64);

fn arb_ops(key_domain: u64, max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..=3, 0u64..key_domain, 0u64..1000), 1..max_len)
}

fn shard_rounded_bound(capacity: usize, shards: usize) -> usize {
    let shards = shards.max(1);
    capacity.div_ceil(shards) * shards
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The occupancy bound holds after every single operation, for every
    /// capacity/shard geometry, including degenerate ones (zero capacity,
    /// one shard, more shards than capacity).
    #[test]
    fn never_exceeds_shard_rounded_capacity(
        capacity in 0usize..=32,
        shards in 1usize..=8,
        ops in arb_ops(24, 160),
    ) {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(capacity, shards);
        let bound = shard_rounded_bound(capacity, shards);
        for &(tag, key, value) in &ops {
            if tag % 2 == 0 {
                cache.insert(key, value);
            } else {
                let _ = cache.get(&key);
            }
            prop_assert!(
                cache.len() <= bound,
                "len {} exceeded bound {} (capacity {}, shards {})",
                cache.len(), bound, capacity, shards
            );
            if capacity == 0 {
                prop_assert!(cache.is_empty(), "zero-capacity cache stored an entry");
            }
        }
    }

    /// An insert is immediately observable: the new entry is its shard's
    /// most-recently-used, so the eviction triggered by that same insert
    /// can never have removed it.
    #[test]
    fn get_after_put_returns_the_value(
        capacity in 1usize..=32,
        shards in 1usize..=8,
        ops in arb_ops(24, 160),
    ) {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(capacity, shards);
        for &(tag, key, value) in &ops {
            if tag % 2 == 0 {
                cache.insert(key, value);
                prop_assert_eq!(
                    cache.get(&key),
                    Some(value),
                    "inserted key {} not readable back", key
                );
            } else {
                // A hit must return the value most recently inserted for
                // that key: interleaved gets never corrupt entries.
                let _ = cache.get(&key);
            }
        }
    }

    /// A get that hits returns the *latest* value written for that key,
    /// across arbitrary interleavings of updates and reads.
    #[test]
    fn hits_return_the_latest_write(
        shards in 1usize..=4,
        ops in arb_ops(8, 120),
    ) {
        // Capacity comfortably above the key domain: nothing is ever
        // evicted, so every get must hit and must see the latest write.
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(64, shards);
        let mut latest: std::collections::HashMap<u64, u64> = Default::default();
        for &(tag, key, value) in &ops {
            if tag % 2 == 0 {
                cache.insert(key, value);
                latest.insert(key, value);
            } else {
                prop_assert_eq!(cache.get(&key), latest.get(&key).copied());
            }
        }
    }
}

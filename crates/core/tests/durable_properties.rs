//! Property tests for the durable plan-cache log ([`mtmlf::durable`]).
//!
//! Three properties over arbitrary inputs:
//!
//! 1. **Record round-trip** — any [`LogRecord`], including plans whose
//!    estimates are NaN, ±∞, -0.0, or subnormal, survives
//!    `encode_record` → `decode_record_payload` bitwise.
//! 2. **Replay fidelity** — an arbitrary interleaving of puts, removes,
//!    and epoch clears, under arbitrary write-behind buffering and
//!    compaction thresholds, replays on reopen to *exactly* the state an
//!    in-memory model predicts, with bitwise plan equality.
//! 3. **Prefix recovery** — truncating the log at an arbitrary byte
//!    recovers exactly the complete-record prefix: never a partial record,
//!    never a mangled plan.

use mtmlf::durable::{decode_record_payload, encode_record, LogRecord};
use mtmlf::resilience::ManualClock;
use mtmlf::{DurableConfig, PlanPayload, PlanStore};
use mtmlf_query::{JoinOrder, JoinTree, QueryFingerprint};
use mtmlf_storage::TableId;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Magic + u64 length + u64 checksum, per DESIGN.md §16.
const HEADER_LEN: usize = 24;

fn fp(n: u64) -> QueryFingerprint {
    QueryFingerprint::from_parts(n, n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A plan from raw bits: both order shapes, float estimates taken directly
/// from the bit pattern so NaNs and every other awkward value occur.
fn plan(bits: u64) -> PlanPayload {
    let order = if bits & 1 == 0 {
        let n = 1 + (bits >> 1) % 5;
        JoinOrder::LeftDeep((0..n).map(|i| TableId((bits >> 8) as u32 % 64 + i as u32)).collect())
    } else {
        JoinOrder::Bushy(JoinTree::Node(
            Box::new(JoinTree::Leaf(TableId((bits >> 2) as u32 % 64))),
            Box::new(JoinTree::Node(
                Box::new(JoinTree::Leaf(TableId((bits >> 9) as u32 % 64))),
                Box::new(JoinTree::Leaf(TableId((bits >> 16) as u32 % 64))),
            )),
        ))
    };
    PlanPayload::new(order, f64::from_bits(bits.rotate_left(13)), f64::from_bits(bits.rotate_left(47)))
}

fn same_plan(a: &PlanPayload, b: &PlanPayload) -> bool {
    a.join_order == b.join_order
        && a.est_card.to_bits() == b.est_card.to_bits()
        && a.est_cost.to_bits() == b.est_cost.to_bits()
}

fn same_record(a: &LogRecord, b: &LogRecord) -> bool {
    match (a, b) {
        (
            LogRecord::Put { stamp: sa, fp: fa, plan: pa },
            LogRecord::Put { stamp: sb, fp: fb, plan: pb },
        ) => sa == sb && fa == fb && same_plan(pa, pb),
        (
            LogRecord::Tombstone { stamp: sa, fp: fa },
            LogRecord::Tombstone { stamp: sb, fp: fb },
        ) => sa == sb && fa == fb,
        (LogRecord::Epoch { stamp: sa }, LogRecord::Epoch { stamp: sb }) => sa == sb,
        _ => false,
    }
}

/// Fresh per-case directory: proptest runs many cases per process, so a
/// global counter keeps them from trampling each other.
fn casedir(tag: &str) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mtmlf_durprop_{tag}_{}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One workload step: `(tag, key, bits)`. tag%8: 0–4 put, 5–6 remove,
/// 7 epoch clear. Keys come from a small domain so removes hit live
/// entries and re-puts exercise last-writer-wins.
type Op = (u8, u64, u64);

fn arb_ops(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..=7, 0u64..10, any::<u64>()), 1..max_len)
}

fn arb_record() -> impl Strategy<Value = (u8, u64, u64, u64)> {
    (0u8..=2, any::<u64>(), 0u64..1 << 32, any::<u64>())
}

fn build_record((kind, stamp, key, bits): (u8, u64, u64, u64)) -> LogRecord {
    match kind {
        0 => LogRecord::Put { stamp, fp: fp(key), plan: plan(bits) },
        1 => LogRecord::Tombstone { stamp, fp: fp(key) },
        _ => LogRecord::Epoch { stamp },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1: every record round-trips bitwise through the envelope.
    #[test]
    fn record_roundtrips_bitwise(raw in arb_record()) {
        let record = build_record(raw);
        let frame = encode_record(&record);
        prop_assert!(frame.len() > HEADER_LEN);
        let declared = u64::from_le_bytes(frame[8..16].try_into().unwrap()) as usize;
        prop_assert_eq!(frame.len(), HEADER_LEN + declared);
        let decoded = decode_record_payload(&frame[HEADER_LEN..]).expect("own frame decodes");
        prop_assert!(
            same_record(&record, &decoded),
            "round-trip mismatch: {:?} vs {:?}", record, decoded
        );
    }

    /// Property 2: arbitrary op sequences under arbitrary buffering and
    /// compaction replay to the model state exactly.
    #[test]
    fn replay_matches_model_bitwise(
        ops in arb_ops(60),
        buffer in 1usize..=8,
        threshold in 4usize..=64,
    ) {
        let dir = casedir("replay");
        let config = DurableConfig::new(&dir)
            .with_clock(Arc::new(ManualClock::new()))
            .with_buffer_records(buffer)
            .with_compact_threshold(threshold);

        let mut model: HashMap<u128, PlanPayload> = HashMap::new();
        {
            let store = PlanStore::open(128, 4, &config).expect("open fresh");
            for &(tag, key, bits) in &ops {
                match tag % 8 {
                    0..=4 => {
                        let p = plan(bits);
                        store.insert(fp(key), p.clone());
                        model.insert(fp(key).as_u128(), p);
                    }
                    5..=6 => {
                        store.remove(&fp(key));
                        model.remove(&fp(key).as_u128());
                    }
                    _ => {
                        store.clear();
                        model.clear();
                    }
                }
            }
            // Drop flushes the write-behind buffer (clean shutdown).
        }

        let store = PlanStore::open(128, 4, &config).expect("reopen");
        prop_assert_eq!(store.len(), model.len());
        for key in 0..10u64 {
            let got = store.get(&fp(key));
            let want = model.get(&fp(key).as_u128());
            match (got, want) {
                (None, None) => {}
                (Some(g), Some(w)) => prop_assert!(
                    same_plan(&g, w),
                    "fp {} differs after replay: {:?} vs {:?}", key, g, w
                ),
                (g, w) => prop_assert!(false, "fp {} presence differs: {:?} vs {:?}", key, g, w),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Property 3: truncating the log at an arbitrary byte recovers the
    /// complete-record prefix, bitwise, and reports the dropped tail.
    #[test]
    fn truncated_log_recovers_complete_prefix(
        raws in proptest::collection::vec(arb_record(), 1..12),
        cut_frac in 0.0f64..=1.0,
    ) {
        let records: Vec<LogRecord> = raws.into_iter().map(build_record).collect();
        let mut log = Vec::new();
        let mut spans = Vec::new();
        for record in &records {
            let frame = encode_record(record);
            spans.push((log.len(), log.len() + frame.len()));
            log.extend_from_slice(&frame);
        }
        let cut = ((log.len() as f64) * cut_frac) as usize;

        let dir = casedir("prefix");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("plans.log"), &log[..cut.min(log.len())]).expect("write log");

        let config = DurableConfig::new(&dir).with_clock(Arc::new(ManualClock::new()));
        let (store, report) = PlanStore::open_with_report(128, 4, &config).expect("recover");

        let survivors = spans.iter().filter(|&&(_, end)| end <= cut).count();
        prop_assert_eq!(report.log_records, survivors);

        // Model replay of the surviving prefix.
        let mut model: HashMap<u128, PlanPayload> = HashMap::new();
        for record in &records[..survivors] {
            match record {
                LogRecord::Put { fp, plan, .. } => { model.insert(fp.as_u128(), plan.clone()); }
                LogRecord::Tombstone { fp, .. } => { model.remove(&fp.as_u128()); }
                LogRecord::Epoch { .. } => model.clear(),
            }
        }
        prop_assert_eq!(store.len(), model.len());
        for (key, want) in &model {
            let f = QueryFingerprint::from_parts((key >> 64) as u64, *key as u64);
            let got = store.get(&f);
            prop_assert!(
                got.as_ref().is_some_and(|g| same_plan(g, want)),
                "prefix entry lost or mangled: {:?} vs {:?}", got, want
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

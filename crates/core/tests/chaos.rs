//! Chaos suite: the serving path under deterministic injected faults.
//!
//! Requires the `fault-injection` feature (`cargo test -p mtmlf --features
//! fault-injection`); CI runs it as a dedicated job. Every test asserts the
//! service's core liveness contract: **each accepted `plan` call returns
//! exactly one result** — a cached, modeled, or fallback plan, or a typed
//! error — with no hung client, no lost reply, and no poisoned lock, under
//! every fault the harness can express (forward errors, latency spikes,
//! worker panics).
//!
//! Fault schedules are seeded or scripted ([`mtmlf::resilience::FaultPlan`]
//! is keyed by the global forward counter), so every run replays the same
//! storm.

#![cfg(feature = "fault-injection")]

use mtmlf::prelude::*;
use mtmlf::resilience::{FaultPlan, ManualClock};
use mtmlf::serve::ServiceConfig;
use mtmlf::{BreakerState, Clock, MtmlfError};
use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};
use mtmlf_storage::Database;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn setup() -> (Arc<MtmlfQo>, Arc<Database>, Vec<Query>) {
    let mut db = imdb_lite(53, ImdbScale { scale: 0.02 }).unwrap();
    db.analyze_all(8, 4);
    let cfg = MtmlfConfig {
        enc_queries: 10,
        enc_epochs: 1,
        seed: 53,
        ..MtmlfConfig::tiny()
    };
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: 6,
            max_tables: 4,
            ..WorkloadConfig::default()
        },
        19,
    );
    let model = MtmlfQo::new(&db, cfg).expect("build model");
    (Arc::new(model), Arc::new(db), queries)
}

/// Asserts the metrics counting identity that makes "exactly one reply"
/// auditable: every accepted request is counted once by how it returned.
fn assert_identity(m: &mtmlf::MetricsSnapshot) {
    assert_eq!(
        m.requests,
        m.cache_hits + m.model_plans + m.fallbacks + m.errors,
        "counting identity violated: {m:?}"
    );
}

/// A seeded error storm (30% of forwards fail) against a retrying,
/// breaker-guarded service with a classical fallback: concurrent clients
/// all get exactly one legal answer each, and no request errors out.
#[test]
fn seeded_error_storm_every_client_gets_one_answer() {
    let (model, db, queries) = setup();
    let service = Arc::new(
        PlannerService::builder(model)
            .config(ServiceConfig {
                workers: 2,
                cache_capacity: 0, // keep the model path hot for the storm
                ..ServiceConfig::default()
            })
            .fallback(FallbackPlanner::new(Arc::clone(&db)))
            .faults(FaultPlan::seeded(101, 300))
            .start()
            .expect("start service"),
    );

    let answered = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for offset in 0..4 {
            let service = Arc::clone(&service);
            let queries = queries.clone();
            let answered = Arc::clone(&answered);
            scope.spawn(move || {
                for round in 0..6 {
                    let query = queries[(offset + round) % queries.len()].clone();
                    let resp = service.plan(query.clone()).expect("storm answer");
                    resp.join_order.validate(&query).expect("legal order");
                    assert!(matches!(
                        resp.source,
                        PlanSource::Model | PlanSource::Fallback
                    ));
                    answered.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(answered.load(Ordering::Relaxed), 4 * 6);

    let m = service.metrics();
    assert_eq!(m.requests, 4 * 6);
    assert_eq!(m.errors, 0, "retry+fallback must absorb every fault");
    assert_identity(&m);
}

/// An injected latency spike makes the victim miss its deadline; it gets a
/// clean [`MtmlfError::Timeout`] and the service keeps serving afterwards.
#[test]
fn latency_spike_times_out_cleanly() {
    let (model, _db, queries) = setup();
    let service = PlannerService::builder(model)
        .config(ServiceConfig {
            workers: 1,
            batching: false,
            ..ServiceConfig::default()
        })
        .faults(FaultPlan::new().delay_on(0, Duration::from_millis(120)))
        .start()
        .expect("start service");

    let victim = service.plan(
        PlanRequest::new(queries[0].clone()).with_deadline(Duration::from_millis(10)),
    );
    assert!(matches!(victim, Err(MtmlfError::Timeout)), "{victim:?}");

    // Later requests (forward 1+) are clean and fast.
    for query in &queries[1..] {
        let resp = service.plan(query.clone()).expect("post-spike answer");
        assert_eq!(resp.source, PlanSource::Model);
    }
    let m = service.metrics();
    assert_eq!(m.timeouts, 1);
    assert_eq!(m.errors, 1);
    assert_identity(&m);
}

/// Scripted forward failures trip the breaker; the fallback carries the
/// load while it is open; a manual-clock cool-down later, the half-open
/// probe succeeds and the model path resumes. The whole episode is
/// deterministic.
#[test]
fn breaker_trips_and_recovers_deterministically() {
    let (model, db, queries) = setup();
    let clock = Arc::new(ManualClock::new());
    let service = PlannerService::builder(model)
        .config(ServiceConfig {
            workers: 1,
            cache_capacity: 0,
            retry: RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(100),
                clock: Arc::clone(&clock) as Arc<dyn Clock>,
            },
            ..ServiceConfig::default()
        })
        .fallback(FallbackPlanner::new(Arc::clone(&db)))
        // Forwards 0 and 1 fail; everything after is clean.
        .faults(FaultPlan::new().fail_on(0).fail_on(1))
        .start()
        .expect("start service");

    // Failures 1 and 2 trip the breaker; both degrade to the fallback.
    for query in &queries[..2] {
        let resp = service.plan(query.clone()).expect("fallback answer");
        assert_eq!(resp.source, PlanSource::Fallback);
    }
    assert_eq!(service.breaker_state(), BreakerState::Open);

    // Still open (clock has not moved): rejected at the breaker, no
    // forward consumed, fallback answers.
    let resp = service.plan(queries[2].clone()).expect("degraded answer");
    assert_eq!(resp.source, PlanSource::Fallback);

    // Cool-down passes; the probe (forward 2, clean) closes the breaker.
    clock.advance(Duration::from_millis(150));
    let resp = service.plan(queries[3].clone()).expect("probe answer");
    assert_eq!(resp.source, PlanSource::Model);
    assert_eq!(service.breaker_state(), BreakerState::Closed);

    let m = service.metrics();
    assert_eq!(m.fallbacks, 3);
    assert_eq!(m.model_plans, 1);
    assert_eq!(m.breaker_opens, 1);
    assert_eq!(m.errors, 0);
    assert_identity(&m);
}

/// With a stalled worker and a queue of one, a burst sheds with
/// [`MtmlfError::Overloaded`] — fail-fast, no hung client — and the one
/// admitted occupant still completes.
#[test]
fn overload_sheds_and_recovers() {
    let (model, _db, queries) = setup();
    let service = Arc::new(
        PlannerService::builder(model)
            .config(ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                batching: false,
                ..ServiceConfig::default()
            })
            .faults(FaultPlan::new().delay_on(0, Duration::from_millis(250)))
            .start()
            .expect("start service"),
    );

    let occupant = {
        let service = Arc::clone(&service);
        let query = queries[0].clone();
        std::thread::spawn(move || service.plan(query))
    };
    std::thread::sleep(Duration::from_millis(80)); // let it hit the delay
    let mut sheds = 0;
    for query in queries.iter().skip(1).cycle().take(8) {
        match service.plan(PlanRequest::new(query.clone()).with_deadline(Duration::ZERO)) {
            Err(MtmlfError::Overloaded) => sheds += 1,
            Err(MtmlfError::Timeout) => {} // admitted, then expired: also clean
            other => {
                other.expect("any non-shed outcome must be a plan");
            }
        }
    }
    assert!(sheds >= 1, "a queue of one must shed an 8-request burst");
    assert!(occupant.join().expect("occupant ran").is_ok());

    // The stall was transient: the service still answers.
    let resp = service.plan(queries[1].clone()).expect("post-burst answer");
    assert!(matches!(resp.source, PlanSource::Model | PlanSource::Cache));
    let m = service.metrics();
    assert_eq!(m.sheds, sheds);
    assert_identity(&m);
}

/// An injected worker panic costs its victim one clean `Service` error and
/// nothing else: no poisoned model lock, no poisoned cache shard, and the
/// surviving workers keep planning.
#[test]
fn worker_panic_does_not_poison_the_service() {
    let (model, _db, queries) = setup();
    let service = PlannerService::builder(Arc::clone(&model))
        .config(ServiceConfig {
            workers: 2,
            batching: false,
            ..ServiceConfig::default()
        })
        .faults(FaultPlan::new().panic_on(0))
        .start()
        .expect("start service");

    let victim = service.plan(queries[0].clone());
    assert!(
        matches!(victim, Err(MtmlfError::Service(_))),
        "panic must surface as a clean dropped-reply error, got {victim:?}"
    );
    for query in &queries[1..] {
        let resp = service.plan(query.clone()).expect("survivor answer");
        assert_eq!(resp.source, PlanSource::Model);
        resp.join_order.validate(query).expect("legal order");
    }
    let m = service.metrics();
    assert_eq!(m.errors, 1);
    assert_identity(&m);
    // Shutdown joins the panicked worker without propagating its panic...
    service.shutdown();
    // ...and the shared model's autograd locks are untouched.
    for query in &queries {
        model.plan_with_estimates(query).expect("model unpoisoned");
    }
}

/// Under a seeded error storm with tracing enabled, **every accepted
/// request produces exactly one complete trace**: the traces counter
/// matches the requests counter, every ring entry's stage spans are
/// monotonically ordered inside the request window, and requests that
/// degraded to the classical planner carry a `Fallback` span. (Worker
/// panics are excluded by construction — a killed worker takes its
/// in-flight traces with it, which is the documented trade.)
#[test]
fn every_accepted_request_yields_exactly_one_complete_trace() {
    let (model, db, queries) = setup();
    let service = Arc::new(
        PlannerService::builder(model)
            .config(ServiceConfig {
                workers: 2,
                cache_capacity: 0,
                ..ServiceConfig::default()
            })
            .fallback(FallbackPlanner::new(Arc::clone(&db)))
            .faults(FaultPlan::seeded(202, 300))
            .tracing(TraceConfig {
                ring_capacity: 256,
                ..TraceConfig::default()
            })
            .start()
            .expect("start service"),
    );

    std::thread::scope(|scope| {
        for offset in 0..4 {
            let service = Arc::clone(&service);
            let queries = queries.clone();
            scope.spawn(move || {
                for round in 0..6 {
                    let query = queries[(offset + round) % queries.len()].clone();
                    service.plan(query).expect("storm answer");
                }
            });
        }
    });
    service.shutdown();

    let m = service.metrics();
    assert_eq!(m.requests, 4 * 6);
    assert_identity(&m);
    assert_eq!(
        m.traces, m.requests,
        "exactly one completed trace per accepted request"
    );
    let traces = service.traces();
    assert_eq!(traces.len(), 4 * 6, "ring kept every trace");
    let mut fallback_traces = 0;
    for trace in &traces {
        assert!(
            trace.is_monotonic(),
            "stage spans out of order or outside the request window: {trace:?}"
        );
        assert!(!trace.spans.is_empty(), "complete traces carry spans");
        match trace.outcome {
            TraceOutcome::Served(PlanSource::Fallback) => {
                assert!(
                    trace.spans.iter().any(|s| s.stage == Stage::Fallback),
                    "fallback-served trace lacks a Fallback span: {trace:?}"
                );
                fallback_traces += 1;
            }
            TraceOutcome::Served(_) => {}
            other => panic!("storm requests all succeed, got {other:?}"),
        }
    }
    assert_eq!(fallback_traces, m.fallbacks, "one Fallback-span trace per fallback");
}

/// Shed requests trace too: with a stalled worker and a queue of one, each
/// burst request that sheds at admission still finishes its trace — outcome
/// `Shed`, no model-path spans — so overload is visible in the ring with
/// the same exactly-one-trace guarantee as served traffic.
#[test]
fn shed_requests_complete_their_traces() {
    let (model, _db, queries) = setup();
    let service = Arc::new(
        PlannerService::builder(model)
            .config(ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                batching: false,
                ..ServiceConfig::default()
            })
            .faults(FaultPlan::new().delay_on(0, Duration::from_millis(250)))
            .tracing(TraceConfig {
                ring_capacity: 256,
                ..TraceConfig::default()
            })
            .start()
            .expect("start service"),
    );

    let occupant = {
        let service = Arc::clone(&service);
        let query = queries[0].clone();
        std::thread::spawn(move || service.plan(query))
    };
    std::thread::sleep(Duration::from_millis(80)); // let it hit the delay
    for query in queries.iter().skip(1).cycle().take(8) {
        match service.plan(PlanRequest::new(query.clone()).with_deadline(Duration::ZERO)) {
            Err(MtmlfError::Overloaded) | Err(MtmlfError::Timeout) => {}
            other => {
                other.expect("any non-shed outcome must be a plan");
            }
        }
    }
    assert!(occupant.join().expect("occupant ran").is_ok());
    service.shutdown();

    let m = service.metrics();
    assert!(m.sheds >= 1, "a queue of one must shed an 8-request burst");
    assert_identity(&m);
    assert_eq!(m.traces, m.requests, "shed and expired requests trace too");
    let traces = service.traces();
    assert_eq!(traces.len() as u64, m.requests);
    let shed_traces: Vec<_> = traces
        .iter()
        .filter(|t| t.outcome == TraceOutcome::Shed)
        .collect();
    assert_eq!(shed_traces.len() as u64, m.sheds);
    for trace in &traces {
        assert!(trace.is_monotonic(), "{trace:?}");
    }
    for trace in shed_traces {
        assert!(
            !trace.spans.iter().any(|s| s.stage == Stage::Forward),
            "a shed request never reached the model: {trace:?}"
        );
    }
}

/// One hundred seeded storm schedules, each with a swapper thread cycling
/// hot swap and rollback under the error storm: every accepted request
/// gets exactly one answer (no client hangs, none is dropped by a swap),
/// the counting identity holds, and the service lands on a whole model —
/// the boot version or the candidate, never anything in between.
#[test]
fn swap_during_storm_no_request_is_dropped() {
    let (model, db, queries) = setup();
    // The candidate is a fresh, independently constructed model (same DB,
    // different seed) — built once; swapping shares it via Arc.
    let candidate = Arc::new(
        MtmlfQo::new(
            &db,
            MtmlfConfig {
                enc_queries: 10,
                enc_epochs: 1,
                seed: 54,
                ..MtmlfConfig::tiny()
            },
        )
        .expect("build candidate"),
    );

    for seed in 0..100u64 {
        let service = Arc::new(
            PlannerService::builder(Arc::clone(&model))
                .model_version(mtmlf::ModelVersion(1))
                .config(ServiceConfig {
                    workers: 2,
                    cache_capacity: 0,
                    ..ServiceConfig::default()
                })
                .fallback(FallbackPlanner::new(Arc::clone(&db)))
                .faults(FaultPlan::seeded(1_000 + seed, 300))
                .start()
                .expect("start service"),
        );

        let answered = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for offset in 0..2usize {
                let service = Arc::clone(&service);
                let queries = queries.clone();
                let answered = Arc::clone(&answered);
                scope.spawn(move || {
                    for round in 0..4 {
                        let query = queries[(offset + round) % queries.len()].clone();
                        let resp = service.plan(query.clone()).expect("storm answer");
                        resp.join_order.validate(&query).expect("legal order");
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            let service = Arc::clone(&service);
            let candidate = Arc::clone(&candidate);
            scope.spawn(move || {
                for _ in 0..2 {
                    service.swap_model(Arc::clone(&candidate), mtmlf::ModelVersion(2));
                    let _ = service.rollback_model();
                }
            });
        });

        assert_eq!(answered.load(Ordering::Relaxed), 2 * 4, "seed {seed}");
        let m = service.metrics();
        assert_eq!(m.requests, 2 * 4, "seed {seed}");
        assert_eq!(m.errors, 0, "seed {seed}: retry+fallback absorb faults");
        assert_identity(&m);
        let v = service.model_version().0;
        assert!(v == 1 || v == 2, "seed {seed}: half-swapped version {v}");
        service.shutdown();
    }
}

/// A swap racing shutdown: clients, a swapper, and a shutdown all run
/// concurrently. Nothing hangs, every accepted request is answered or
/// fails with a typed error, and the counting identity survives the race.
#[test]
fn swap_racing_shutdown_stays_clean() {
    let (model, db, queries) = setup();
    let candidate = Arc::new(
        MtmlfQo::new(
            &db,
            MtmlfConfig {
                enc_queries: 10,
                enc_epochs: 1,
                seed: 55,
                ..MtmlfConfig::tiny()
            },
        )
        .expect("build candidate"),
    );

    for round in 0..20u64 {
        let service = Arc::new(
            PlannerService::builder(Arc::clone(&model))
                .model_version(mtmlf::ModelVersion(1))
                .config(ServiceConfig {
                    workers: 2,
                    cache_capacity: 0,
                    ..ServiceConfig::default()
                })
                .fallback(FallbackPlanner::new(Arc::clone(&db)))
                .start()
                .expect("start service"),
        );

        std::thread::scope(|scope| {
            for offset in 0..2usize {
                let service = Arc::clone(&service);
                let queries = queries.clone();
                scope.spawn(move || {
                    for i in 0..4 {
                        let query = queries[(offset + i) % queries.len()].clone();
                        match service.plan(query) {
                            Ok(resp) => assert!(matches!(
                                resp.source,
                                PlanSource::Model | PlanSource::Fallback | PlanSource::Cache
                            )),
                            // A request landing after shutdown fails with a
                            // typed error — never a hang or a panic.
                            Err(e) => assert!(
                                matches!(
                                    e,
                                    MtmlfError::Service(_)
                                        | MtmlfError::Overloaded
                                        | MtmlfError::Timeout
                                ),
                                "round {round}: unexpected {e:?}"
                            ),
                        }
                    }
                });
            }
            {
                let service = Arc::clone(&service);
                let candidate = Arc::clone(&candidate);
                scope.spawn(move || {
                    service.swap_model(Arc::clone(&candidate), mtmlf::ModelVersion(2));
                    let _ = service.rollback_model();
                });
            }
            let service = Arc::clone(&service);
            scope.spawn(move || {
                if round % 2 == 0 {
                    std::thread::yield_now();
                }
                service.shutdown();
            });
        });

        let m = service.metrics();
        assert_identity(&m);
        let v = service.model_version().0;
        assert!(v == 1 || v == 2, "round {round}: half-swapped version {v}");
    }
}

/// A corrupt candidate snapshot — bit-flipped or truncated — is rejected
/// before it touches the live model: adoption fails with
/// [`MtmlfError::Corrupt`], the `swap_rejected` counter records it, the
/// active version is unchanged, and the service's plans stay bitwise
/// identical to the pre-attempt baseline.
#[test]
fn corrupt_candidate_never_replaces_the_live_model() {
    let (model, db, queries) = setup();
    let dir = std::env::temp_dir().join("mtmlf_chaos_corrupt_candidate");
    let _ = std::fs::remove_dir_all(&dir);
    let registry = ModelRegistry::open(&dir).expect("open registry");
    let v1 = registry.publish(&model).expect("publish v1");
    let v2 = registry.publish(&model).expect("publish v2");

    let service = PlannerService::builder(Arc::clone(&model))
        .model_version(ModelVersion(0))
        .config(ServiceConfig {
            workers: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .start()
        .expect("start service");
    let baseline: Vec<_> = queries
        .iter()
        .map(|q| service.plan(q.clone()).expect("baseline plan"))
        .collect();

    // Bit-flip one payload byte of v1's snapshot.
    let path = registry.path_of(v1);
    let mut bytes = std::fs::read(&path).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("write corrupted snapshot");

    let fresh = |seed: u64| {
        MtmlfQo::new(
            &db,
            MtmlfConfig {
                enc_queries: 10,
                enc_epochs: 1,
                seed,
                ..MtmlfConfig::tiny()
            },
        )
        .expect("build fresh candidate")
    };

    let err = service
        .adopt_version(&registry, v1, fresh(53))
        .expect_err("bit-flipped snapshot must be rejected");
    assert!(matches!(err, MtmlfError::Corrupt(_)), "{err:?}");

    // Truncate v2's snapshot mid-payload.
    let path2 = registry.path_of(v2);
    let bytes2 = std::fs::read(&path2).expect("read snapshot");
    std::fs::write(&path2, &bytes2[..bytes2.len() / 3]).expect("truncate snapshot");
    let err = service
        .adopt_version(&registry, v2, fresh(53))
        .expect_err("truncated snapshot must be rejected");
    assert!(matches!(err, MtmlfError::Corrupt(_)), "{err:?}");

    let m = service.metrics();
    assert_eq!(m.swaps, 0, "no corrupt candidate was promoted");
    assert_eq!(m.swap_rejections, 2, "both corruptions recorded");
    assert_eq!(service.model_version(), ModelVersion(0));
    for (q, base) in queries.iter().zip(&baseline) {
        let resp = service.plan(q.clone()).expect("post-rejection plan");
        assert_eq!(resp.join_order, base.join_order, "live model disturbed");
        assert_eq!(resp.est_card.to_bits(), base.est_card.to_bits());
        assert_eq!(resp.est_cost.to_bits(), base.est_cost.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Property tests for the cluster's consistent-hash ring
//! ([`mtmlf::cluster::HashRing`]).
//!
//! Three invariants over arbitrary memberships and key sets:
//!
//! 1. **Join/leave stability** — removing one of N members re-homes only
//!    the keys that member owned; every other key keeps its owner. Adding
//!    a member steals keys only for itself (no key moves between two
//!    surviving members). This is the property that makes replica churn
//!    cheap: ~K/N keys move, not all of them.
//! 2. **Uniformity within documented bounds** — with enough virtual nodes,
//!    no member owns more than a small multiple of its fair share of a
//!    large pseudo-random key population.
//! 3. **Determinism and total coverage** — routing is a pure function of
//!    (membership, key), independent of insertion order, and the failover
//!    candidate list is always a permutation of the full membership with
//!    the primary first.

use mtmlf::cluster::{HashRing, ReplicaId};
use proptest::prelude::*;

/// A well-mixed key population derived from an arbitrary seed.
fn keys(seed: u64, n: usize) -> Vec<u64> {
    // SplitMix64 stream: decorrelates consecutive seeds.
    let mut x = seed;
    (0..n)
        .map(|_| {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

fn ring_of(members: &[usize], vnodes: usize) -> HashRing {
    let mut ring = HashRing::new(vnodes);
    for &m in members {
        ring.add(ReplicaId(m));
    }
    ring
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Removing a member re-homes exactly that member's keys; the rest
    /// keep their owner. Re-adding it restores the original assignment.
    #[test]
    fn leave_moves_only_the_departed_members_keys(
        n in 2usize..=8,
        victim_idx in 0usize..8,
        seed in any::<u64>(),
    ) {
        let members: Vec<usize> = (0..n).collect();
        let victim = ReplicaId(victim_idx % n);
        let mut ring = ring_of(&members, 48);
        let population = keys(seed, 600);
        let before: Vec<ReplicaId> =
            population.iter().map(|&k| ring.route(k).unwrap()).collect();
        ring.remove(victim);
        let mut moved = 0usize;
        for (&k, &owner) in population.iter().zip(&before) {
            let now = ring.route(k).unwrap();
            if owner == victim {
                prop_assert!(now != victim, "departed member still owns key {}", k);
                moved += 1;
            } else {
                prop_assert_eq!(now, owner, "a surviving member's key moved");
            }
        }
        // The departed member owned roughly 1/n of the keys; allow a wide
        // (4x fair share) bound since this is a hash distribution.
        prop_assert!(
            moved <= 4 * population.len() / n,
            "{} of {} keys moved on a 1-of-{} leave",
            moved, population.len(), n
        );
        ring.add(victim);
        for (&k, &owner) in population.iter().zip(&before) {
            prop_assert_eq!(ring.route(k), Some(owner), "re-join did not restore routing");
        }
    }

    /// Adding a member steals keys only for itself: no key moves between
    /// two members that were present both before and after the join.
    #[test]
    fn join_steals_keys_only_for_the_newcomer(
        n in 1usize..=7,
        seed in any::<u64>(),
    ) {
        let members: Vec<usize> = (0..n).collect();
        let mut ring = ring_of(&members, 48);
        let population = keys(seed, 600);
        let before: Vec<ReplicaId> =
            population.iter().map(|&k| ring.route(k).unwrap()).collect();
        let newcomer = ReplicaId(n);
        ring.add(newcomer);
        for (&k, &owner) in population.iter().zip(&before) {
            let now = ring.route(k).unwrap();
            prop_assert!(
                now == owner || now == newcomer,
                "key {} moved between two surviving members ({:?} -> {:?})",
                k, owner, now
            );
        }
    }

    /// With 64 vnodes, no member of an N-replica ring owns more than 3x its
    /// fair share of 4096 pseudo-random keys (and every member owns some).
    #[test]
    fn ownership_is_near_uniform(
        n in 2usize..=8,
        seed in any::<u64>(),
    ) {
        let members: Vec<usize> = (0..n).collect();
        let ring = ring_of(&members, 64);
        let population = keys(seed, 4096);
        let mut counts = vec![0usize; n];
        for &k in &population {
            counts[ring.route(k).unwrap().0] += 1;
        }
        let fair = population.len() / n;
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!(c > 0, "member {} owns no keys at 64 vnodes", i);
            prop_assert!(
                c <= 3 * fair,
                "member {} owns {} of {} keys (fair share {})",
                i, c, population.len(), fair
            );
        }
    }

    /// Routing ignores insertion order, and the candidate list is a
    /// permutation of the membership led by the primary.
    #[test]
    fn routing_is_order_independent_and_candidates_cover_members(
        n in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let forward: Vec<usize> = (0..n).collect();
        let reverse: Vec<usize> = (0..n).rev().collect();
        let a = ring_of(&forward, 32);
        let b = ring_of(&reverse, 32);
        for &k in keys(seed, 200).iter() {
            prop_assert_eq!(a.route(k), b.route(k), "insertion order changed routing");
            let cands = a.candidates(k);
            prop_assert_eq!(cands.len(), n, "candidates miss a member");
            prop_assert_eq!(Some(&cands[0]), a.route(k).as_ref(), "primary not first");
            let mut sorted: Vec<usize> = cands.iter().map(|r| r.0).collect();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, forward.clone(), "candidates are not a permutation");
        }
    }
}

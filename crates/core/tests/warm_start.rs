//! Warm-start end-to-end: serve → shut down → reboot from the durable log.
//!
//! The durable plan cache's whole point is that a restarted service picks
//! up where the dead one left off: the first pass of a repeated workload
//! after reboot is served **entirely from cache**, bitwise-identical to the
//! plans computed before the restart, without a single model forward
//! (DESIGN.md §16). This suite pins that, including the interaction with
//! model hot swap — a swap writes an epoch record, so a restart after a
//! swap must come up *empty* rather than resurrect plans from the retired
//! model version. A cluster variant checks that each replica reboots from
//! its own per-replica directory.

use mtmlf::prelude::*;
use mtmlf::resilience::ManualClock;
use mtmlf::{DurableConfig, ModelVersion, SwapOutcome};
use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};
use mtmlf_query::fingerprint;
use mtmlf_storage::Database;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn setup() -> (Arc<MtmlfQo>, Arc<Database>, Vec<Query>) {
    let mut db = imdb_lite(41, ImdbScale { scale: 0.02 }).unwrap();
    db.analyze_all(8, 4);
    let cfg = MtmlfConfig {
        enc_queries: 10,
        enc_epochs: 1,
        seed: 41,
        ..MtmlfConfig::tiny()
    };
    let mut queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: 6,
            max_tables: 4,
            ..WorkloadConfig::default()
        },
        23,
    );
    // Distinct fingerprints: the assertions below count one cache entry
    // per query.
    let mut seen = std::collections::HashSet::new();
    queries.retain(|q| seen.insert(fingerprint(q)));
    let model = MtmlfQo::new(&db, cfg).expect("build model");
    (Arc::new(model), Arc::new(db), queries)
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtmlf_warmstart_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything flushed before the insert returns: restart tests must not
/// depend on a clean shutdown to see their writes.
fn durable(dir: &Path) -> DurableConfig {
    DurableConfig::new(dir)
        .with_clock(Arc::new(ManualClock::new()))
        .with_buffer_records(1)
}

fn service(model: &Arc<MtmlfQo>, dir: &Path) -> PlannerService {
    PlannerService::builder(Arc::clone(model))
        .config(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        })
        .durable_config(durable(dir))
        .start()
        .expect("service starts")
}

fn assert_bitwise(a: &PlanResponse, b: &PlanResponse, context: &str) {
    assert_eq!(a.join_order, b.join_order, "{context}: join order");
    assert_eq!(a.est_card.to_bits(), b.est_card.to_bits(), "{context}: est_card");
    assert_eq!(a.est_cost.to_bits(), b.est_cost.to_bits(), "{context}: est_cost");
}

/// The headline contract: after a shutdown + reboot, the *first* pass of
/// the workload is served entirely from the warm-started cache, bitwise
/// identical to the pre-restart answers, and the metrics say so.
#[test]
fn reboot_serves_first_pass_from_cache_bitwise() {
    let (model, _db, queries) = setup();
    let dir = tmpdir("reboot");

    let mut before: HashMap<u128, PlanResponse> = HashMap::new();
    {
        let service = service(&model, &dir);
        for query in &queries {
            let resp = service.plan(PlanRequest::new(query.clone())).expect("plan");
            assert_eq!(resp.source, PlanSource::Model, "cold cache: model path");
            before.insert(fingerprint(query).as_u128(), resp);
        }
        // Second pass: the live cache already serves every repeat.
        for query in &queries {
            let resp = service.plan(PlanRequest::new(query.clone())).expect("plan");
            assert_eq!(resp.source, PlanSource::Cache);
        }
        let m = service.metrics();
        assert_eq!(m.cached_plans, queries.len() as u64);
        assert_eq!(m.warm_start_entries, 0, "cold boot warm-started nothing");
        service.shutdown();
    }

    let rebooted = service(&model, &dir);
    let m = rebooted.metrics();
    assert_eq!(
        m.warm_start_entries,
        queries.len() as u64,
        "every cached plan must survive the restart"
    );
    assert_eq!(m.cached_plans, queries.len() as u64);
    for query in &queries {
        let resp = rebooted.plan(PlanRequest::new(query.clone())).expect("plan");
        assert_eq!(
            resp.source,
            PlanSource::Cache,
            "first post-reboot pass must be a cache hit"
        );
        let want = &before[&fingerprint(query).as_u128()];
        assert_bitwise(&resp, want, "post-reboot plan");
    }
    let m = rebooted.metrics();
    assert_eq!(m.cache_hits, queries.len() as u64, "all first-pass requests hit");
    assert_eq!(m.model_plans, 0, "no model forward ran after reboot");
    rebooted.shutdown();
}

/// A hot swap invalidates the cache with an epoch record; the invalidation
/// is durable. Restarting after a swap must come up empty — serving a
/// retired version's plans from disk would defeat the swap — and plans
/// cached *after* the swap warm-start normally on the next reboot.
#[test]
fn hot_swap_epoch_survives_restart() {
    let (model, _db, queries) = setup();
    let dir = tmpdir("swap");

    {
        let service = service(&model, &dir);
        for query in &queries {
            service.plan(PlanRequest::new(query.clone())).expect("plan");
        }
        assert_eq!(service.metrics().cached_plans, queries.len() as u64);
        match service.swap_model(Arc::clone(&model), ModelVersion(1)) {
            SwapOutcome::Swapped { .. } => {}
            other => panic!("swap refused: {other:?}"),
        }
        assert_eq!(service.metrics().cached_plans, 0, "swap clears the live cache");
        // No clean shutdown: the epoch record must already be durable.
    }

    {
        let rebooted = service(&model, &dir);
        assert_eq!(
            rebooted.metrics().warm_start_entries,
            0,
            "plans cached before a hot swap must not survive the restart"
        );
        for query in &queries {
            let resp = rebooted.plan(PlanRequest::new(query.clone())).expect("plan");
            assert_eq!(resp.source, PlanSource::Model, "post-swap reboot replans");
        }
        rebooted.shutdown();
    }

    // The post-swap generation of plans warm-starts like any other.
    let third = service(&model, &dir);
    assert_eq!(third.metrics().warm_start_entries, queries.len() as u64);
    for query in &queries {
        let resp = third.plan(PlanRequest::new(query.clone())).expect("plan");
        assert_eq!(resp.source, PlanSource::Cache);
    }
    third.shutdown();
}

/// Explicit invalidations are durable too: a plan removed before the
/// restart stays gone, while its neighbors warm-start.
#[test]
fn invalidation_survives_restart() {
    let (model, _db, queries) = setup();
    assert!(queries.len() >= 2, "workload too small");
    let dir = tmpdir("invalidate");
    let dropped = fingerprint(&queries[0]);

    {
        let service = service(&model, &dir);
        for query in &queries {
            service.plan(PlanRequest::new(query.clone())).expect("plan");
        }
        assert!(service.invalidate(&dropped), "entry existed");
        service.shutdown();
    }

    let rebooted = service(&model, &dir);
    assert_eq!(
        rebooted.metrics().warm_start_entries,
        (queries.len() - 1) as u64
    );
    assert!(rebooted.cached_payload(&dropped).is_none(), "invalidated plan resurrected");
    let resp = rebooted.plan(PlanRequest::new(queries[0].clone())).expect("plan");
    assert_eq!(resp.source, PlanSource::Model, "invalidated plan must be recomputed");
    for query in &queries[1..] {
        let resp = rebooted.plan(PlanRequest::new(query.clone())).expect("plan");
        assert_eq!(resp.source, PlanSource::Cache);
    }
    rebooted.shutdown();
}

/// Cluster mode: each replica persists to its own `replica_<i>` directory
/// under the cluster's durable root and reboots from it. The restarted
/// cluster answers the whole workload bitwise-identically from cache.
#[test]
fn cluster_replicas_warm_start_from_per_replica_dirs() {
    let (model, _db, queries) = setup();
    let dir = tmpdir("cluster");

    let build = |model: &Arc<MtmlfQo>| {
        ClusterService::builder(Arc::clone(model))
            .replicas(2)
            .service_config(ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            })
            .durable_config(durable(&dir))
            .start()
            .expect("cluster starts")
    };

    let mut before: HashMap<u128, PlanResponse> = HashMap::new();
    {
        let cluster = build(&model);
        for query in &queries {
            let resp = cluster.plan(PlanRequest::new(query.clone())).expect("plan");
            before.insert(fingerprint(query).as_u128(), resp);
        }
        // Eager per-record flush: dropping the cluster loses nothing.
    }
    for i in 0..2 {
        assert!(
            dir.join(format!("replica_{i}")).join("plans.log").exists()
                || dir.join(format!("replica_{i}")).join("plans.snapshot").exists(),
            "replica {i} wrote no durable state"
        );
    }

    let cluster = build(&model);
    for query in &queries {
        let resp = cluster.plan(PlanRequest::new(query.clone())).expect("plan");
        assert_eq!(
            resp.source,
            PlanSource::Cache,
            "restarted cluster must serve the first pass from warm caches"
        );
        assert_bitwise(&resp, &before[&fingerprint(query).as_u128()], "cluster reboot");
    }
}

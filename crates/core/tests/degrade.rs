//! Degradation-ladder integration tests that need no fault injection:
//! deadlines, the classical fallback, and breaker recovery are all
//! observable with natural failures (queries too large for the model) and
//! the injectable [`mtmlf::Clock`].
//!
//! The chaos suite (`tests/chaos.rs`, behind the `fault-injection`
//! feature) covers injected error storms, latency spikes, and worker
//! panics; this file runs under a plain `cargo test`.

use mtmlf::prelude::*;
use mtmlf::resilience::ManualClock;
use mtmlf::serve::ServiceConfig;
use mtmlf::{BreakerState, Clock, MtmlfError};
use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};
use mtmlf_optd::PgOptimizer;
use mtmlf_storage::Database;
use std::sync::Arc;
use std::time::Duration;

fn setup(max_query_tables: usize) -> (Arc<MtmlfQo>, Arc<Database>) {
    let mut db = imdb_lite(43, ImdbScale { scale: 0.02 }).unwrap();
    db.analyze_all(8, 4);
    let cfg = MtmlfConfig {
        enc_queries: 10,
        enc_epochs: 1,
        seed: 43,
        max_query_tables,
        ..MtmlfConfig::tiny()
    };
    let model = MtmlfQo::new(&db, cfg).expect("build model");
    (Arc::new(model), Arc::new(db))
}

fn workload(db: &Database, min_tables: usize, max_tables: usize, count: usize) -> Vec<Query> {
    generate_queries(
        db,
        &WorkloadConfig {
            count,
            min_tables,
            max_tables,
            ..WorkloadConfig::default()
        },
        17,
    )
}

/// A request whose deadline expires while it is queued is never forwarded
/// through the model: the caller gets [`MtmlfError::Timeout`], the worker
/// drops the job before the forward (visible as `metrics.expired`), and
/// queries batched alongside it are answered bit-identically to the
/// single-threaded facade.
#[test]
fn expired_deadline_is_dropped_before_the_forward() {
    let (model, _db) = setup(8);
    let queries = workload(&_db, 2, 4, 4);
    let service = Arc::new(
        PlannerService::builder(Arc::clone(&model))
            .config(ServiceConfig {
                workers: 1,
                // A long linger keeps the doomed job and its batch-mates in
                // one batch, exercising the per-job expiry split.
                batch_linger: Duration::from_millis(20),
                ..ServiceConfig::default()
            })
            .start()
            .expect("start service"),
    );

    // A zero deadline has already expired by the time any worker can look
    // at the job, so the drop-before-forward path is deterministic.
    let doomed = queries[0].clone();
    let mates: Vec<Query> = queries[1..].to_vec();
    let mut mate_results = Vec::new();
    std::thread::scope(|scope| {
        let service_ref = &service;
        let timed_out = scope.spawn(move || {
            service_ref.plan(PlanRequest::new(doomed).with_deadline(Duration::ZERO))
        });
        let mate_handles: Vec<_> = mates
            .iter()
            .map(|query| {
                let query = query.clone();
                scope.spawn(move || service_ref.plan(query))
            })
            .collect();
        assert!(
            matches!(timed_out.join().expect("no panic"), Err(MtmlfError::Timeout)),
            "zero deadline must time out"
        );
        for handle in mate_handles {
            mate_results.push(handle.join().expect("no panic").expect("mate planned"));
        }
    });

    // Batch-mates are untouched by the expiry: bit-identical to the model.
    for (query, resp) in mates.iter().zip(&mate_results) {
        assert_eq!(resp.source, PlanSource::Model);
        let (order, card, cost) = model.plan_with_estimates(query).expect("direct");
        assert_eq!(resp.join_order, order);
        assert_eq!(resp.est_card.to_bits(), card.to_bits());
        assert_eq!(resp.est_cost.to_bits(), cost.to_bits());
    }

    // Drain the queue so the worker has definitely seen the doomed job.
    service.shutdown();
    let m = service.metrics();
    assert_eq!(m.timeouts, 1);
    assert_eq!(m.expired, 1, "the doomed job must be dropped, not forwarded");
    assert_eq!(m.model_plans, mates.len() as u64);
    // The dropped query was never planned, so it was never cached.
    assert_eq!(service.cached_plans(), mates.len());
}

/// Property over generated workloads: when the model cannot plan a query
/// at all (more tables than its serializer admits), the fallback answers
/// with a *legal* join order that is bitwise identical to running the
/// classical optimizer directly.
#[test]
fn fallback_plans_are_legal_and_match_the_classical_optimizer() {
    // Model admits ≤ 3 tables; every workload query joins exactly 4.
    let (model, db) = setup(3);
    let queries = workload(&db, 4, 4, 6);
    let service = PlannerService::builder(model)
        .config(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .fallback(FallbackPlanner::new(Arc::clone(&db)))
        .start()
        .expect("start service");

    let reference = PgOptimizer::new(&db);
    for query in &queries {
        let resp = service.plan(query.clone()).expect("fallback answers");
        assert_eq!(resp.source, PlanSource::Fallback);
        resp.join_order.validate(query).expect("legal join order");
        let (planned, card) = reference.plan_with_estimates(query).expect("classical");
        assert_eq!(resp.join_order, planned.order);
        assert_eq!(resp.est_card.to_bits(), card.to_bits());
        assert_eq!(resp.est_cost.to_bits(), planned.estimated_cost.to_bits());
    }
    let m = service.metrics();
    assert_eq!(m.fallbacks, queries.len() as u64);
    assert_eq!(m.model_plans, 0);
    assert_eq!(m.errors, 0, "a model failure never becomes a query failure");
    // Fallback plans are never cached: the cache replays model output only.
    assert_eq!(service.cached_plans(), 0);
}

/// Breaker lifecycle Open → HalfOpen → Closed, driven by natural failures
/// (oversized queries) and a [`ManualClock`], observed through
/// [`mtmlf::MetricsSnapshot`] and [`PlannerService::breaker_state`].
#[test]
fn breaker_recovery_is_observable_through_metrics() {
    let (model, db) = setup(3);
    let big = workload(&db, 4, 4, 2);
    let small = workload(&db, 2, 3, 2);
    let clock = Arc::new(ManualClock::new());
    let service = PlannerService::builder(model)
        .config(ServiceConfig {
            workers: 1,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(100),
                clock: Arc::clone(&clock) as Arc<dyn Clock>,
            },
            ..ServiceConfig::default()
        })
        .fallback(FallbackPlanner::new(Arc::clone(&db)))
        .start()
        .expect("start service");

    // Two oversized queries fail the model path twice: threshold reached.
    for query in &big {
        let resp = service.plan(query.clone()).expect("fallback answers");
        assert_eq!(resp.source, PlanSource::Fallback);
    }
    assert_eq!(service.breaker_state(), BreakerState::Open);
    assert_eq!(service.metrics().breaker_opens, 1);

    // Open and not yet cooled down: even a model-plannable query is
    // rejected at the breaker and degrades to the fallback.
    let resp = service.plan(small[0].clone()).expect("degraded answer");
    assert_eq!(resp.source, PlanSource::Fallback);
    assert_eq!(service.breaker_state(), BreakerState::Open);

    // Cool-down elapses (manual clock: deterministic, no real sleeping);
    // the next request is the half-open probe, succeeds, and closes the
    // breaker.
    clock.advance(Duration::from_millis(150));
    let resp = service.plan(small[1].clone()).expect("probe answer");
    assert_eq!(resp.source, PlanSource::Model);
    assert_eq!(service.breaker_state(), BreakerState::Closed);

    let m = service.metrics();
    assert_eq!(m.fallbacks, 3);
    assert_eq!(m.model_plans, 1);
    assert_eq!(m.breaker_opens, 1);
    assert_eq!(m.errors, 0);
}

//! Model hyper-parameters.

/// Weights of the multi-task loss `L_QO = w_card·L_card + w_cost·L_cost +
/// w_jo·L_jo` (paper Eq. 1; all three are 1 in the paper's experiments).
/// Setting a weight to zero yields the single-task ablations
/// (MTMLF-CardEst, MTMLF-CostEst, MTMLF-JoinSel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossWeights {
    /// Weight of the cardinality Q-error loss.
    pub card: f32,
    /// Weight of the cost Q-error loss.
    pub cost: f32,
    /// Weight of the join-order loss.
    pub jo: f32,
    /// Weight of the access-path advisor loss (an *additional* DBMS task
    /// demonstrating the framework's extensibility — Section 2.2's
    /// "task-specific module contains a series of models corresponding to
    /// all DBMS tasks"; off by default so the paper's three-task
    /// experiments are unchanged).
    pub advisor: f32,
}

impl Default for LossWeights {
    fn default() -> Self {
        Self {
            card: 1.0,
            cost: 1.0,
            jo: 1.0,
            advisor: 0.0,
        }
    }
}

impl LossWeights {
    /// Single-task CardEst (the MTMLF-CardEst ablation).
    pub fn card_only() -> Self {
        Self {
            card: 1.0,
            cost: 0.0,
            jo: 0.0,
            advisor: 0.0,
        }
    }

    /// Single-task CostEst (the MTMLF-CostEst ablation).
    pub fn cost_only() -> Self {
        Self {
            card: 0.0,
            cost: 1.0,
            jo: 0.0,
            advisor: 0.0,
        }
    }

    /// Single-task JoinSel (the MTMLF-JoinSel ablation).
    pub fn jo_only() -> Self {
        Self {
            card: 0.0,
            cost: 0.0,
            jo: 1.0,
            advisor: 0.0,
        }
    }

    /// All four tasks, including the access-path advisor extension.
    pub fn with_advisor() -> Self {
        Self {
            advisor: 1.0,
            ..Self::default()
        }
    }
}

/// MTMLF-QO hyper-parameters.
///
/// The paper uses 3 transformer blocks with 4 heads throughout and Adam at
/// `1e-4`; the defaults here shrink widths/depths to match the scaled-down
/// data and CPU training (model and data are scaled together, preserving
/// the comparisons).
#[derive(Debug, Clone)]
pub struct MtmlfConfig {
    /// Model width.
    pub d_model: usize,
    /// Attention heads in every transformer.
    pub heads: usize,
    /// Blocks in each per-table encoder `Enc_i`.
    pub enc_blocks: usize,
    /// Blocks in `Trans_Share`.
    pub share_blocks: usize,
    /// Blocks in `Trans_JO`.
    pub jo_blocks: usize,
    /// Maximum columns per table the featurizer supports.
    pub max_cols: usize,
    /// Maximum tables per query (plan depth cap for positional encodings).
    pub max_query_tables: usize,
    /// Feature-hash buckets for string literals (LIKE needles).
    pub needle_buckets: usize,
    /// Multi-task loss weights.
    pub weights: LossWeights,
    /// Adam learning rate for joint training.
    pub lr: f32,
    /// Joint-training epochs.
    pub epochs: usize,
    /// Adam learning rate for encoder pre-training.
    pub enc_lr: f32,
    /// Epochs of per-table encoder pre-training.
    pub enc_epochs: usize,
    /// Single-table queries generated per table for encoder pre-training.
    pub enc_queries: usize,
    /// Beam width `k` of the join-order beam search (Section 4.3).
    pub beam_width: usize,
    /// Train `Trans_JO` with the sequence-level JOEU loss (Section 5)
    /// instead of token-level cross-entropy only.
    pub sequence_loss: bool,
    /// Penalty `λ` on illegal candidate mass in the sequence-level loss.
    pub lambda_illegal: f32,
    /// Additionally train the bushy position head (Section 4.1's KL loss
    /// against the tree decoding embeddings); requires bushy-labelled
    /// training data.
    pub bushy: bool,
    /// Global seed for weight init, shuffling, and encoder-query sampling.
    pub seed: u64,
}

impl Default for MtmlfConfig {
    fn default() -> Self {
        Self {
            d_model: 32,
            heads: 4,
            enc_blocks: 2,
            share_blocks: 3,
            jo_blocks: 2,
            max_cols: 24,
            max_query_tables: 8,
            needle_buckets: 16,
            weights: LossWeights::default(),
            lr: 1e-3,
            epochs: 8,
            enc_lr: 2e-3,
            enc_epochs: 30,
            enc_queries: 200,
            beam_width: 8,
            sequence_loss: false,
            lambda_illegal: 2.0,
            bushy: false,
            seed: 0,
        }
    }
}

impl MtmlfConfig {
    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            d_model: 16,
            heads: 2,
            enc_blocks: 1,
            share_blocks: 1,
            jo_blocks: 1,
            epochs: 3,
            enc_epochs: 5,
            enc_queries: 40,
            ..Self::default()
        }
    }
}

/// Codec width of the bushy position head: the Section 4.1 decoding
/// embeddings of a query over `m ≤ max_query_tables` tables need
/// `2^(m−1)` leaf positions in the worst (left-deep) case.
pub fn codec_positions(config: &MtmlfConfig) -> usize {
    mtmlf_query::treecodec::codec_dim(config.max_query_tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_weights() {
        assert_eq!(LossWeights::card_only().jo, 0.0);
        assert_eq!(LossWeights::cost_only().card, 0.0);
        assert_eq!(LossWeights::jo_only().jo, 1.0);
        let d = LossWeights::default();
        assert_eq!((d.card, d.cost, d.jo), (1.0, 1.0, 1.0));
    }

    #[test]
    fn default_divisibility() {
        let c = MtmlfConfig::default();
        assert_eq!(c.d_model % c.heads, 0);
        let t = MtmlfConfig::tiny();
        assert_eq!(t.d_model % t.heads, 0);
    }
}

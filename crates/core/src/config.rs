//! Model hyper-parameters.

use crate::beam::BeamConfig;
use crate::error::MtmlfError;
use mtmlf_nn::KernelConfig;

/// Weights of the multi-task loss `L_QO = w_card·L_card + w_cost·L_cost +
/// w_jo·L_jo` (paper Eq. 1; all three are 1 in the paper's experiments).
/// Setting a weight to zero yields the single-task ablations
/// (MTMLF-CardEst, MTMLF-CostEst, MTMLF-JoinSel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossWeights {
    /// Weight of the cardinality Q-error loss.
    pub card: f32,
    /// Weight of the cost Q-error loss.
    pub cost: f32,
    /// Weight of the join-order loss.
    pub jo: f32,
    /// Weight of the access-path advisor loss (an *additional* DBMS task
    /// demonstrating the framework's extensibility — Section 2.2's
    /// "task-specific module contains a series of models corresponding to
    /// all DBMS tasks"; off by default so the paper's three-task
    /// experiments are unchanged).
    pub advisor: f32,
}

impl Default for LossWeights {
    fn default() -> Self {
        Self {
            card: 1.0,
            cost: 1.0,
            jo: 1.0,
            advisor: 0.0,
        }
    }
}

impl LossWeights {
    /// Single-task CardEst (the MTMLF-CardEst ablation).
    pub fn card_only() -> Self {
        Self {
            card: 1.0,
            cost: 0.0,
            jo: 0.0,
            advisor: 0.0,
        }
    }

    /// Single-task CostEst (the MTMLF-CostEst ablation).
    pub fn cost_only() -> Self {
        Self {
            card: 0.0,
            cost: 1.0,
            jo: 0.0,
            advisor: 0.0,
        }
    }

    /// Single-task JoinSel (the MTMLF-JoinSel ablation).
    pub fn jo_only() -> Self {
        Self {
            card: 0.0,
            cost: 0.0,
            jo: 1.0,
            advisor: 0.0,
        }
    }

    /// All four tasks, including the access-path advisor extension.
    pub fn with_advisor() -> Self {
        Self {
            advisor: 1.0,
            ..Self::default()
        }
    }
}

/// MTMLF-QO hyper-parameters.
///
/// The paper uses 3 transformer blocks with 4 heads throughout and Adam at
/// `1e-4`; the defaults here shrink widths/depths to match the scaled-down
/// data and CPU training (model and data are scaled together, preserving
/// the comparisons).
#[derive(Debug, Clone)]
pub struct MtmlfConfig {
    /// Model width.
    pub d_model: usize,
    /// Attention heads in every transformer.
    pub heads: usize,
    /// Blocks in each per-table encoder `Enc_i`.
    pub enc_blocks: usize,
    /// Blocks in `Trans_Share`.
    pub share_blocks: usize,
    /// Blocks in `Trans_JO`.
    pub jo_blocks: usize,
    /// Maximum columns per table the featurizer supports.
    pub max_cols: usize,
    /// Maximum tables per query (plan depth cap for positional encodings).
    pub max_query_tables: usize,
    /// Feature-hash buckets for string literals (LIKE needles).
    pub needle_buckets: usize,
    /// Multi-task loss weights.
    pub weights: LossWeights,
    /// Adam learning rate for joint training.
    pub lr: f32,
    /// Joint-training epochs.
    pub epochs: usize,
    /// Adam learning rate for encoder pre-training.
    pub enc_lr: f32,
    /// Epochs of per-table encoder pre-training.
    pub enc_epochs: usize,
    /// Single-table queries generated per table for encoder pre-training.
    pub enc_queries: usize,
    /// Join-order beam decoding: width `k` (Section 4.3), legality
    /// pruning, plan shape, and batched-vs-sequential stepping. All
    /// settings of `beam.batch` are bitwise-equivalent — see
    /// `tests/beam_equivalence.rs` — so it affects latency only.
    pub beam: BeamConfig,
    /// Train `Trans_JO` with the sequence-level JOEU loss (Section 5)
    /// instead of token-level cross-entropy only.
    pub sequence_loss: bool,
    /// Penalty `λ` on illegal candidate mass in the sequence-level loss.
    pub lambda_illegal: f32,
    /// Additionally train the bushy position head (Section 4.1's KL loss
    /// against the tree decoding embeddings); requires bushy-labelled
    /// training data.
    pub bushy: bool,
    /// Global seed for weight init, shuffling, and encoder-query sampling.
    pub seed: u64,
    /// Compute-kernel tuning (`threads`, `block_size`) applied to every
    /// forward/backward this model runs (`plan`, `plan_batch`, `train`).
    /// All settings are bitwise-equivalent — see `mtmlf_nn::kernel` — so
    /// this affects latency only, never plans.
    pub kernel: KernelConfig,
}

impl Default for MtmlfConfig {
    fn default() -> Self {
        Self {
            d_model: 32,
            heads: 4,
            enc_blocks: 2,
            share_blocks: 3,
            jo_blocks: 2,
            max_cols: 24,
            max_query_tables: 8,
            needle_buckets: 16,
            weights: LossWeights::default(),
            lr: 1e-3,
            epochs: 8,
            enc_lr: 2e-3,
            enc_epochs: 30,
            enc_queries: 200,
            beam: BeamConfig::new(8),
            sequence_loss: false,
            lambda_illegal: 2.0,
            bushy: false,
            seed: 0,
            kernel: KernelConfig::default(),
        }
    }
}

impl MtmlfConfig {
    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            d_model: 16,
            heads: 2,
            enc_blocks: 1,
            share_blocks: 1,
            jo_blocks: 1,
            epochs: 3,
            enc_epochs: 5,
            enc_queries: 40,
            ..Self::default()
        }
    }

    /// A validating builder over the default configuration. Invalid
    /// combinations are rejected at construction instead of panicking
    /// mid-training. The plain struct-literal path keeps working; the
    /// builder is the checked front door.
    ///
    /// ```
    /// use mtmlf::MtmlfConfig;
    ///
    /// let config = MtmlfConfig::builder()
    ///     .d_model(64)
    ///     .heads(4)
    ///     .beam(mtmlf::BeamConfig::new(4))
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(config.d_model, 64);
    ///
    /// // d_model must divide into heads; zero beam width is meaningless.
    /// assert!(MtmlfConfig::builder().d_model(10).heads(3).build().is_err());
    /// assert!(MtmlfConfig::builder()
    ///     .beam(mtmlf::BeamConfig::new(0))
    ///     .build()
    ///     .is_err());
    /// ```
    pub fn builder() -> MtmlfConfigBuilder {
        MtmlfConfigBuilder {
            config: Self::default(),
        }
    }

    /// Checks the invariants the builder enforces (callable on
    /// struct-literal configurations too).
    pub fn validate(&self) -> Result<(), MtmlfError> {
        fn invalid(why: String) -> Result<(), MtmlfError> {
            Err(MtmlfError::InvalidConfig(why))
        }
        if self.d_model == 0 {
            return invalid("d_model must be positive".into());
        }
        if self.heads == 0 {
            return invalid("heads must be positive".into());
        }
        if self.d_model % self.heads != 0 {
            return invalid(format!(
                "d_model {} is not divisible by heads {}",
                self.d_model, self.heads
            ));
        }
        if self.beam.width == 0 {
            return invalid("beam.width must be at least 1".into());
        }
        if self.max_cols == 0 {
            return invalid("max_cols must be positive".into());
        }
        if self.max_query_tables == 0 || self.max_query_tables > 16 {
            return invalid(format!(
                "max_query_tables must be in 1..=16 (got {}; the bushy position \
                 codec needs 2^(m-1) slots)",
                self.max_query_tables
            ));
        }
        if self.needle_buckets == 0 {
            return invalid("needle_buckets must be positive".into());
        }
        for (name, lr) in [("lr", self.lr), ("enc_lr", self.enc_lr)] {
            if !(lr.is_finite() && lr > 0.0) {
                return invalid(format!("{name} must be a positive finite number, got {lr}"));
            }
        }
        if !self.lambda_illegal.is_finite() || self.lambda_illegal < 0.0 {
            return invalid(format!(
                "lambda_illegal must be finite and non-negative, got {}",
                self.lambda_illegal
            ));
        }
        for (name, w) in [
            ("weights.card", self.weights.card),
            ("weights.cost", self.weights.cost),
            ("weights.jo", self.weights.jo),
            ("weights.advisor", self.weights.advisor),
        ] {
            if !w.is_finite() || w < 0.0 {
                return invalid(format!("{name} must be finite and non-negative, got {w}"));
            }
        }
        if let Err(why) = self.kernel.validate() {
            return invalid(why);
        }
        Ok(())
    }
}

/// Builder returned by [`MtmlfConfig::builder`]; every setter mirrors a
/// [`MtmlfConfig`] field, and [`MtmlfConfigBuilder::build`] validates the
/// combination.
#[derive(Debug, Clone)]
pub struct MtmlfConfigBuilder {
    config: MtmlfConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, $name: $ty) -> Self {
                self.config.$name = $name;
                self
            }
        )*
    };
}

impl MtmlfConfigBuilder {
    builder_setters! {
        /// Model width.
        d_model: usize,
        /// Attention heads in every transformer.
        heads: usize,
        /// Blocks in each per-table encoder `Enc_i`.
        enc_blocks: usize,
        /// Blocks in `Trans_Share`.
        share_blocks: usize,
        /// Blocks in `Trans_JO`.
        jo_blocks: usize,
        /// Maximum columns per table the featurizer supports.
        max_cols: usize,
        /// Maximum tables per query.
        max_query_tables: usize,
        /// Feature-hash buckets for string literals.
        needle_buckets: usize,
        /// Multi-task loss weights.
        weights: LossWeights,
        /// Adam learning rate for joint training.
        lr: f32,
        /// Joint-training epochs.
        epochs: usize,
        /// Adam learning rate for encoder pre-training.
        enc_lr: f32,
        /// Epochs of per-table encoder pre-training.
        enc_epochs: usize,
        /// Single-table queries per table for encoder pre-training.
        enc_queries: usize,
        /// Join-order beam decoding (width, legality, shape, batching).
        beam: BeamConfig,
        /// Use the sequence-level JOEU loss.
        sequence_loss: bool,
        /// Penalty on illegal candidate mass in the sequence-level loss.
        lambda_illegal: f32,
        /// Train the bushy position head.
        bushy: bool,
        /// Global seed.
        seed: u64,
        /// Compute-kernel tuning (bitwise-equivalent performance knob).
        kernel: KernelConfig,
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<MtmlfConfig, MtmlfError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Codec width of the bushy position head: the Section 4.1 decoding
/// embeddings of a query over `m ≤ max_query_tables` tables need
/// `2^(m−1)` leaf positions in the worst (left-deep) case.
pub fn codec_positions(config: &MtmlfConfig) -> usize {
    mtmlf_query::treecodec::codec_dim(config.max_query_tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_weights() {
        assert_eq!(LossWeights::card_only().jo, 0.0);
        assert_eq!(LossWeights::cost_only().card, 0.0);
        assert_eq!(LossWeights::jo_only().jo, 1.0);
        let d = LossWeights::default();
        assert_eq!((d.card, d.cost, d.jo), (1.0, 1.0, 1.0));
    }

    #[test]
    fn default_divisibility() {
        let c = MtmlfConfig::default();
        assert_eq!(c.d_model % c.heads, 0);
        let t = MtmlfConfig::tiny();
        assert_eq!(t.d_model % t.heads, 0);
    }

    #[test]
    fn builder_accepts_valid() {
        let c = MtmlfConfig::builder()
            .d_model(24)
            .heads(3)
            .beam(BeamConfig::new(2))
            .epochs(1)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(c.d_model, 24);
        assert_eq!(c.heads, 3);
        assert_eq!(c.seed, 7);
        // Unset fields keep their defaults.
        assert_eq!(c.max_cols, MtmlfConfig::default().max_cols);
    }

    #[test]
    fn builder_rejects_invalid_combinations() {
        use crate::error::MtmlfError;
        let invalid =
            |b: MtmlfConfigBuilder| matches!(b.build(), Err(MtmlfError::InvalidConfig(_)));
        assert!(invalid(MtmlfConfig::builder().d_model(10).heads(3)));
        assert!(invalid(MtmlfConfig::builder().d_model(0)));
        assert!(invalid(MtmlfConfig::builder().heads(0)));
        assert!(invalid(MtmlfConfig::builder().beam(BeamConfig::new(0))));
        assert!(invalid(MtmlfConfig::builder().max_query_tables(0)));
        assert!(invalid(MtmlfConfig::builder().max_query_tables(40)));
        assert!(invalid(MtmlfConfig::builder().lr(0.0)));
        assert!(invalid(MtmlfConfig::builder().lr(f32::NAN)));
        assert!(invalid(MtmlfConfig::builder().lambda_illegal(-1.0)));
        assert!(invalid(MtmlfConfig::builder().weights(LossWeights {
            card: -1.0,
            ..LossWeights::default()
        })));
        assert!(invalid(MtmlfConfig::builder().kernel(KernelConfig {
            threads: 0,
            block_size: 0,
        })));
        assert!(invalid(MtmlfConfig::builder().kernel(KernelConfig {
            threads: 1,
            block_size: 2,
        })));
    }

    #[test]
    fn builder_accepts_kernel_config() {
        let c = MtmlfConfig::builder()
            .kernel(KernelConfig {
                threads: 4,
                block_size: 64,
            })
            .build()
            .unwrap();
        assert_eq!(c.kernel.threads, 4);
        assert_eq!(c.kernel.block_size, 64);
        // Default stays on the reference kernels (the seed behavior).
        assert!(MtmlfConfig::default().kernel.is_reference());
    }

    #[test]
    fn struct_literal_path_still_validates() {
        let c = MtmlfConfig {
            d_model: 10,
            heads: 3,
            ..MtmlfConfig::default()
        };
        assert!(c.validate().is_err());
        assert!(MtmlfConfig::default().validate().is_ok());
        assert!(MtmlfConfig::tiny().validate().is_ok());
    }
}

//! Task-specific heads (T.i, T.ii): `M_CardEst` and `M_CostEst`.

use crate::config::MtmlfConfig;
use mtmlf_nn::layers::{Mlp, Module};
use mtmlf_nn::Var;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The two per-node regression heads. Both read the shared representation
/// row `S_i` of a plan node and output the *log* cardinality / cost of the
/// sub-plan rooted there (two-layer MLPs, as in the paper's Section 6.1).
#[derive(Clone)]
pub struct TaskHeads {
    card: Mlp,
    cost: Mlp,
    advisor: Mlp,
}

impl TaskHeads {
    /// Builds all heads.
    pub fn new(config: &MtmlfConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7EAD);
        Self {
            card: Mlp::new(&[config.d_model, config.d_model, 1], &mut rng),
            cost: Mlp::new(&[config.d_model, config.d_model, 1], &mut rng),
            advisor: Mlp::new(&[config.d_model, config.d_model, 1], &mut rng),
        }
    }

    /// Per-node log-cardinality predictions `(nodes, 1)`.
    pub fn card(&self, shared: &Var) -> Var {
        self.card.forward(shared)
    }

    /// Per-node log-cost predictions `(nodes, 1)`.
    pub fn cost(&self, shared: &Var) -> Var {
        self.cost.forward(shared)
    }

    /// Per-node access-path logits `(nodes, 1)`: positive means an index
    /// scan is predicted cheaper than a sequential scan for the node's
    /// filters (meaningful on scan nodes; the physical-design task of the
    /// paper's Section 2.2).
    pub fn advisor(&self, shared: &Var) -> Var {
        self.advisor.forward(shared)
    }
}

impl Module for TaskHeads {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.card.parameters();
        p.extend(self.cost.parameters());
        p.extend(self.advisor.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_nn::Matrix;

    #[test]
    fn per_node_outputs() {
        let cfg = MtmlfConfig::tiny();
        let heads = TaskHeads::new(&cfg);
        let s = Var::constant(Matrix::zeros(5, cfg.d_model));
        assert_eq!(heads.card(&s).shape(), (5, 1));
        assert_eq!(heads.cost(&s).shape(), (5, 1));
    }

    #[test]
    fn heads_are_independent() {
        let cfg = MtmlfConfig::tiny();
        let heads = TaskHeads::new(&cfg);
        let s = Var::constant(Matrix::full(1, cfg.d_model, 0.3));
        assert_ne!(heads.card(&s).item(), heads.cost(&s).item());
    }
}

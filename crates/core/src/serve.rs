//! A concurrent planning service over a trained [`MtmlfQo`].
//!
//! [`PlannerService`] turns the single-threaded facade into something a DBMS
//! process can call from many session threads at once:
//!
//! * **Plan cache** — responses are memoized in a sharded LRU keyed by the
//!   canonical [`QueryFingerprint`], so a repeated query (even with its
//!   tables, joins, or predicates written in a different order) is answered
//!   without touching the model.
//! * **Cross-query batching** — concurrent cache misses are packed into one
//!   batched model forward ([`crate::batch::plan_batch`]): same plans, same
//!   estimates, fewer and larger matmuls.
//! * **Worker pool** — inference runs on dedicated worker threads fed by a
//!   channel; client threads block only on their own reply.
//!
//! Responses are bitwise identical to calling
//! [`MtmlfQo::plan_with_estimates`] directly — batching changes the shape of
//! the arithmetic, not its result, and the cache only replays stored model
//! output.

use crate::batch::plan_batch;
use crate::cache::ShardedLruCache;
use crate::error::MtmlfError;
use crate::model::MtmlfQo;
use crate::Result;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use mtmlf_nn::no_grad;
use mtmlf_query::{fingerprint, JoinOrder, Query, QueryFingerprint};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A planning request. Convertible from a bare [`Query`]; a struct so the
/// API can grow fields (deadlines, priorities) without breaking callers.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// The query to plan.
    pub query: Query,
}

impl From<Query> for PlanRequest {
    fn from(query: Query) -> Self {
        Self { query }
    }
}

/// Where a response came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// Replayed from the plan cache without running the model.
    Cache,
    /// Computed by a (possibly batched) model forward.
    Model,
}

/// A planned query as returned by [`PlannerService::plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanResponse {
    /// The chosen join order (always legal for the query).
    pub join_order: JoinOrder,
    /// Predicted root cardinality of the chosen plan.
    pub est_card: f64,
    /// Predicted total cost of the chosen plan.
    pub est_cost: f64,
    /// Whether the answer was cached or freshly computed.
    pub source: PlanSource,
    /// End-to-end latency observed by the calling thread, including any
    /// queueing and batching delay.
    pub latency: Duration,
}

/// Tuning knobs for [`PlannerService::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Inference worker threads (≥ 1).
    pub workers: usize,
    /// Most queries packed into one batched forward (≥ 1).
    pub max_batch: usize,
    /// How long a worker holding a non-full batch waits for more work
    /// before running it.
    pub batch_linger: Duration,
    /// Plan-cache entries across all shards; `0` disables caching.
    pub cache_capacity: usize,
    /// Cache shard count (lock-contention granularity).
    pub cache_shards: usize,
    /// When `false`, every miss runs as a batch of one.
    pub batching: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 8,
            batch_linger: Duration::from_micros(500),
            cache_capacity: 1024,
            cache_shards: 8,
            batching: true,
        }
    }
}

impl ServiceConfig {
    fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(MtmlfError::InvalidConfig(
                "service needs at least one worker thread".into(),
            ));
        }
        if self.max_batch == 0 {
            return Err(MtmlfError::InvalidConfig(
                "max_batch must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

#[derive(Clone)]
struct CachedPlan {
    join_order: JoinOrder,
    est_card: f64,
    est_cost: f64,
}

struct Job {
    query: Query,
    fp: QueryFingerprint,
    reply: Sender<Result<(CachedPlan, PlanSource)>>,
}

/// Power-of-two latency histogram: bucket `i` counts samples whose latency
/// in nanoseconds lies in `[2^i, 2^(i+1))` (bucket 0 also holds 0 ns).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; 32],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded latencies, in nanoseconds.
    pub total_nanos: u64,
}

impl LatencyHistogram {
    /// Mean latency over all samples (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.total_nanos / self.count)
        }
    }

    /// Upper-bound estimate of the `q`-quantile (e.g. `0.99`): the upper
    /// edge of the first bucket at which the cumulative count reaches it.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return Duration::from_nanos(1u64 << (i + 1).min(63));
            }
        }
        Duration::from_nanos(u64::MAX)
    }

    fn bucket(nanos: u64) -> usize {
        (63 - nanos.max(1).leading_zeros() as usize).min(31)
    }
}

/// A point-in-time snapshot of service counters, from
/// [`PlannerService::metrics`].
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Requests accepted by [`PlannerService::plan`].
    pub requests: u64,
    /// Requests answered from the plan cache.
    pub cache_hits: u64,
    /// Requests answered by a model forward.
    pub model_plans: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Batched forwards executed by workers.
    pub batches: u64,
    /// Cache-miss queries that went through those batches.
    pub batched_queries: u64,
    /// Latency distribution of cache-served responses.
    pub cache_latency: LatencyHistogram,
    /// Latency distribution of model-served responses.
    pub model_latency: LatencyHistogram,
}

impl ServiceMetrics {
    /// Fraction of answered requests served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let answered = self.cache_hits + self.model_plans;
        if answered == 0 {
            0.0
        } else {
            self.cache_hits as f64 / answered as f64
        }
    }
}

struct MetricsInner {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    model_plans: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    cache_buckets: [AtomicU64; 32],
    cache_count: AtomicU64,
    cache_nanos: AtomicU64,
    model_buckets: [AtomicU64; 32],
    model_count: AtomicU64,
    model_nanos: AtomicU64,
}

impl MetricsInner {
    fn new() -> Self {
        Self {
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            model_plans: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_queries: AtomicU64::new(0),
            cache_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            cache_count: AtomicU64::new(0),
            cache_nanos: AtomicU64::new(0),
            model_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            model_count: AtomicU64::new(0),
            model_nanos: AtomicU64::new(0),
        }
    }

    fn record(&self, source: PlanSource, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        let bucket = LatencyHistogram::bucket(nanos);
        let (hits, buckets, count, total) = match source {
            PlanSource::Cache => (
                &self.cache_hits,
                &self.cache_buckets,
                &self.cache_count,
                &self.cache_nanos,
            ),
            PlanSource::Model => (
                &self.model_plans,
                &self.model_buckets,
                &self.model_count,
                &self.model_nanos,
            ),
        };
        hits.fetch_add(1, Ordering::Relaxed);
        buckets[bucket].fetch_add(1, Ordering::Relaxed);
        count.fetch_add(1, Ordering::Relaxed);
        total.fetch_add(nanos, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServiceMetrics {
        let hist =
            |buckets: &[AtomicU64; 32], count: &AtomicU64, nanos: &AtomicU64| LatencyHistogram {
                buckets: std::array::from_fn(|i| buckets[i].load(Ordering::Relaxed)),
                count: count.load(Ordering::Relaxed),
                total_nanos: nanos.load(Ordering::Relaxed),
            };
        ServiceMetrics {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            model_plans: self.model_plans.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_queries: self.batched_queries.load(Ordering::Relaxed),
            cache_latency: hist(&self.cache_buckets, &self.cache_count, &self.cache_nanos),
            model_latency: hist(&self.model_buckets, &self.model_count, &self.model_nanos),
        }
    }
}

/// A thread-safe planning service: shared plan cache, batched inference,
/// worker pool. See the [module docs](self) for the architecture.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use mtmlf::prelude::*;
/// use mtmlf::serve::ServiceConfig;
///
/// # fn demo(model: MtmlfQo, query: Query) -> mtmlf::Result<()> {
/// let service = PlannerService::start(Arc::new(model), ServiceConfig::default())?;
/// // Callable from any number of threads:
/// let response = service.plan(query)?;
/// println!(
///     "order {:?} card {:.0} cost {:.0} via {:?} in {:?}",
///     response.join_order, response.est_card, response.est_cost,
///     response.source, response.latency,
/// );
/// println!("hit rate {:.2}", service.metrics().cache_hit_rate());
/// # Ok(())
/// # }
/// ```
pub struct PlannerService {
    /// `None` once [`PlannerService::shutdown`] has run; behind a `RwLock`
    /// so shutdown can race concurrent [`PlannerService::plan`] calls.
    tx: RwLock<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    cache: Arc<ShardedLruCache<QueryFingerprint, CachedPlan>>,
    metrics: Arc<MetricsInner>,
}

impl PlannerService {
    /// Spawns the worker pool and returns a handle that can be shared (or
    /// referenced) across client threads. Dropping the service drains and
    /// joins the workers (see [`PlannerService::shutdown`]).
    pub fn start(model: Arc<MtmlfQo>, config: ServiceConfig) -> Result<Self> {
        config.validate()?;
        let cache = Arc::new(ShardedLruCache::new(
            config.cache_capacity,
            config.cache_shards,
        ));
        let metrics = Arc::new(MetricsInner::new());
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..config.workers)
            .map(|i| {
                let model = Arc::clone(&model);
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                let rx = rx.clone();
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("mtmlf-planner-{i}"))
                    .spawn(move || worker_loop(&model, &cache, &metrics, &rx, &config))
                    .map_err(|e| MtmlfError::Service(format!("spawn worker: {e}")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            tx: RwLock::new(Some(tx)),
            workers: Mutex::new(workers),
            cache,
            metrics,
        })
    }

    /// Plans one query, from cache when possible, otherwise via the worker
    /// pool. Blocks the calling thread until its response is ready; safe to
    /// call concurrently from many threads.
    pub fn plan(&self, request: impl Into<PlanRequest>) -> Result<PlanResponse> {
        let PlanRequest { query } = request.into();
        let start = Instant::now();
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);

        // Refuse before the cache probe: a shut-down service answers
        // nothing, not even hits (mirrors the service model, where any
        // submit after close is Rejected). The sender is cloned out of the
        // guard so the read lock is not held across the cache probe, the
        // (potentially blocking) send, or the reply wait.
        let tx = {
            let guard = self.tx.read().unwrap_or_else(PoisonError::into_inner);
            guard.clone()
        };
        let Some(tx) = tx else {
            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
            return Err(MtmlfError::Service("planner service is shut down".into()));
        };
        let fp = fingerprint(&query);

        // Fast path: answer cache hits on the calling thread, no handoff.
        if let Some(hit) = self.cache.get(&fp) {
            return Ok(self.respond(hit, PlanSource::Cache, start));
        }

        let (reply_tx, reply_rx) = bounded(1);
        let job = Job {
            query,
            fp,
            reply: reply_tx,
        };
        let sent = tx.send(job);
        // Drop our sender clone eagerly: a shutdown that raced this call
        // must not wait on this thread's reply round-trip to see the
        // channel close.
        drop(tx);
        sent.map_err(|_| MtmlfError::Service("planner workers are gone".into()))?;
        match reply_rx.recv() {
            Ok(Ok((plan, source))) => Ok(self.respond(plan, source, start)),
            Ok(Err(e)) => {
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
            Err(_) => {
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                Err(MtmlfError::Service(
                    "planner worker dropped the reply".into(),
                ))
            }
        }
    }

    fn respond(&self, plan: CachedPlan, source: PlanSource, start: Instant) -> PlanResponse {
        let latency = start.elapsed();
        self.metrics.record(source, latency);
        PlanResponse {
            join_order: plan.join_order,
            est_card: plan.est_card,
            est_cost: plan.est_cost,
            source,
            latency,
        }
    }

    /// A point-in-time snapshot of the service counters and latency
    /// histograms.
    pub fn metrics(&self) -> ServiceMetrics {
        self.metrics.snapshot()
    }

    /// Entries currently held by the plan cache.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Stops accepting new requests and joins the worker pool.
    ///
    /// Graceful by construction: requests already queued (or mid-batch) are
    /// still planned and their callers still receive replies, because the
    /// workers drain the channel's buffer before observing disconnection.
    /// `plan` calls that arrive after shutdown return
    /// [`MtmlfError::Service`]. Idempotent and safe to call concurrently
    /// with `plan` from any number of threads; the
    /// `service-shutdown`/`service-2client` models in `mtmlf-lint` explore
    /// every interleaving of this race for small thread counts.
    pub fn shutdown(&self) {
        // Take the sender inside a block so the write guard drops before
        // joining: a worker blocked on a reply to a client that is itself
        // blocked in `plan` must not deadlock against this lock.
        let sender = {
            let mut guard = self.tx.write().unwrap_or_else(PoisonError::into_inner);
            guard.take()
        };
        // Closing the channel lets each worker drain and exit its loop.
        drop(sender);
        let handles = {
            let mut guard = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for PlannerService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    model: &MtmlfQo,
    cache: &ShardedLruCache<QueryFingerprint, CachedPlan>,
    metrics: &MetricsInner,
    rx: &Receiver<Job>,
    config: &ServiceConfig,
) {
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        if config.batching && config.max_batch > 1 {
            // Linger briefly to let concurrent misses join this batch.
            let deadline = Instant::now() + config.batch_linger;
            while batch.len() < config.max_batch {
                match rx.recv_deadline(deadline) {
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            }
        }
        process_batch(model, cache, metrics, batch);
    }
}

fn process_batch(
    model: &MtmlfQo,
    cache: &ShardedLruCache<QueryFingerprint, CachedPlan>,
    metrics: &MetricsInner,
    batch: Vec<Job>,
) {
    // Re-check the cache: another client may have planned the same query
    // between this job's miss and now.
    let mut misses: Vec<Job> = Vec::with_capacity(batch.len());
    for job in batch {
        match cache.get(&job.fp) {
            Some(hit) => {
                let _ = job.reply.send(Ok((hit, PlanSource::Cache)));
            }
            None => misses.push(job),
        }
    }
    if misses.is_empty() {
        return;
    }

    // Deduplicate identical queries within the batch (cache-stampede
    // collapse): plan each distinct fingerprint once, fan the result out.
    let mut unique_queries: Vec<Query> = Vec::with_capacity(misses.len());
    let mut slot_of: HashMap<QueryFingerprint, usize> = HashMap::with_capacity(misses.len());
    for job in &misses {
        slot_of.entry(job.fp).or_insert_with(|| {
            unique_queries.push(job.query.clone());
            unique_queries.len() - 1
        });
    }

    metrics.batches.fetch_add(1, Ordering::Relaxed);
    metrics
        .batched_queries
        .fetch_add(unique_queries.len() as u64, Ordering::Relaxed);

    // Inference only: skip the autograd tape entirely.
    let outcomes = no_grad(|| plan_batch(model, &unique_queries));

    for (slot, outcome) in outcomes.iter().enumerate() {
        if let Ok(planned) = outcome {
            let fp = fingerprint(&unique_queries[slot]);
            cache.insert(
                fp,
                CachedPlan {
                    join_order: planned.join_order.clone(),
                    est_card: planned.est_card,
                    est_cost: planned.est_cost,
                },
            );
        }
    }
    for job in misses {
        let slot = slot_of[&job.fp];
        let reply = match &outcomes[slot] {
            Ok(planned) => Ok((
                CachedPlan {
                    join_order: planned.join_order.clone(),
                    est_card: planned.est_card,
                    est_cost: planned.est_cost,
                },
                PlanSource::Model,
            )),
            Err(e) => Err(e.clone()),
        };
        let _ = job.reply.send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MtmlfConfig;
    use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};

    fn setup() -> (Arc<MtmlfQo>, Vec<Query>) {
        let mut db = imdb_lite(41, ImdbScale { scale: 0.02 });
        db.analyze_all(8, 4);
        let cfg = MtmlfConfig {
            enc_queries: 10,
            enc_epochs: 1,
            seed: 41,
            ..MtmlfConfig::tiny()
        };
        let queries = generate_queries(
            &db,
            &WorkloadConfig {
                count: 5,
                max_tables: 4,
                ..WorkloadConfig::default()
            },
            11,
        );
        let model = MtmlfQo::new(&db, cfg).expect("build model");
        (Arc::new(model), queries)
    }

    #[test]
    fn serves_plans_and_caches_repeats() {
        let (model, queries) = setup();
        let service = PlannerService::start(
            Arc::clone(&model),
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        )
        .expect("start service");
        for query in &queries {
            let cold = service.plan(query.clone()).expect("cold plan");
            assert_eq!(cold.source, PlanSource::Model);
            cold.join_order.validate(query).expect("legal order");
            let (order, card, cost) = model.plan_with_estimates(query).expect("direct");
            assert_eq!(cold.join_order, order);
            assert_eq!(cold.est_card.to_bits(), card.to_bits());
            assert_eq!(cold.est_cost.to_bits(), cost.to_bits());

            let warm = service.plan(query.clone()).expect("warm plan");
            assert_eq!(warm.source, PlanSource::Cache);
            assert_eq!(warm.join_order, cold.join_order);
            assert_eq!(warm.est_card.to_bits(), cold.est_card.to_bits());
        }
        let m = service.metrics();
        assert_eq!(m.requests, 2 * queries.len() as u64);
        assert_eq!(m.cache_hits, queries.len() as u64);
        assert_eq!(m.model_plans, queries.len() as u64);
        assert!(m.cache_latency.mean() > Duration::ZERO);
        assert!(m.model_latency.mean() >= m.cache_latency.mean());
        assert_eq!(service.cached_plans(), queries.len());
    }

    #[test]
    fn fingerprint_equivalent_queries_share_a_cache_entry() {
        let (model, queries) = setup();
        let service =
            PlannerService::start(model, ServiceConfig::default()).expect("start service");
        let query = &queries[0];
        // Same query object twice stands in for any fingerprint-equal pair;
        // fingerprint canonicalization itself is proptested in mtmlf-query.
        service.plan(query.clone()).expect("cold");
        let again = service.plan(query.clone()).expect("warm");
        assert_eq!(again.source, PlanSource::Cache);
        assert_eq!(service.cached_plans(), 1);
    }

    #[test]
    fn caching_can_be_disabled() {
        let (model, queries) = setup();
        let service = PlannerService::start(
            model,
            ServiceConfig {
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
        )
        .expect("start service");
        let query = &queries[0];
        let a = service.plan(query.clone()).expect("first");
        let b = service.plan(query.clone()).expect("second");
        assert_eq!(a.source, PlanSource::Model);
        assert_eq!(b.source, PlanSource::Model);
        assert_eq!(service.metrics().cache_hits, 0);
        assert_eq!(service.cached_plans(), 0);
    }

    #[test]
    fn rejects_invalid_service_config() {
        let (model, _) = setup();
        let err = PlannerService::start(
            model,
            ServiceConfig {
                workers: 0,
                ..ServiceConfig::default()
            },
        );
        assert!(matches!(err, Err(MtmlfError::InvalidConfig(_))));
    }

    #[test]
    fn histogram_bucketing_and_quantiles() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 0);
        assert_eq!(LatencyHistogram::bucket(2), 1);
        assert_eq!(LatencyHistogram::bucket(1024), 10);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), 31);
        let mut h = LatencyHistogram::default();
        for nanos in [100u64, 200, 400, 100_000] {
            h.buckets[LatencyHistogram::bucket(nanos)] += 1;
            h.count += 1;
            h.total_nanos += nanos;
        }
        assert_eq!(h.mean(), Duration::from_nanos(100_700 / 4));
        assert!(h.quantile(0.5) <= Duration::from_nanos(1 << 9));
        assert!(h.quantile(1.0) >= Duration::from_nanos(100_000));
    }
}

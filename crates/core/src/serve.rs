//! A concurrent planning service over a trained [`MtmlfQo`].
//!
//! [`PlannerService`] turns the single-threaded facade into something a DBMS
//! process can call from many session threads at once:
//!
//! * **Plan cache** — responses are memoized in a sharded LRU keyed by the
//!   canonical [`QueryFingerprint`], so a repeated query (even with its
//!   tables, joins, or predicates written in a different order) is answered
//!   without touching the model.
//! * **Cross-query batching** — concurrent cache misses are packed into one
//!   batched model forward ([`crate::batch::plan_batch`]): same plans, same
//!   estimates, fewer and larger matmuls.
//! * **Worker pool** — inference runs on dedicated worker threads fed by a
//!   bounded channel; client threads block only on their own reply.
//! * **Fault tolerance** — the degradation ladder of DESIGN.md §9:
//!   per-request **deadlines** ([`PlanRequest::with_deadline`]), bounded
//!   **retry** with deterministic backoff for transient errors, a
//!   **circuit breaker** over the model path, a classical-optimizer
//!   **fallback** ([`FallbackPlanner`], reported as
//!   [`PlanSource::Fallback`]), and **admission control** that sheds load
//!   with [`MtmlfError::Overloaded`] when the request queue is full. A
//!   model failure never becomes a query failure when a fallback is
//!   configured.
//!
//! Model-path responses are bitwise identical to calling
//! [`MtmlfQo::plan_with_estimates`] directly — batching changes the shape of
//! the arithmetic, not its result, and the cache only replays stored model
//! output. Fallback responses are the deterministic DP optimum of
//! `mtmlf-optd` and are never cached (the cache stores model output only).

use crate::batch::plan_batch_traced;
use crate::durable::{DurableConfig, PlanStore};
pub use crate::client::{PlanClient, PlanPayload, PlanRequest, PlanResponse, PlanSource};
use crate::error::MtmlfError;
use crate::lifecycle::{
    BatchModel, CanaryPolicy, CanaryVerdict, DriftSample, ModelRegistry, ModelSlot, ModelVersion,
    ShadowConfig, ShadowReport, SwapOutcome,
};
use crate::metrics::MetricsSnapshot;
use crate::model::MtmlfQo;
#[cfg(any(test, feature = "fault-injection"))]
use crate::resilience::FaultPlan;
use crate::resilience::{
    is_transient, Admission, BreakerState, CircuitBreaker, FallbackPlanner, RetryPolicy,
};
use crate::trace::{
    RequestTrace, Stage, StageRecorder, StageSpan, TraceBuilder, TraceConfig, TraceOutcome, Tracer,
};
use crate::Result;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use mtmlf_nn::no_grad;
use mtmlf_query::{fingerprint, Query, QueryFingerprint};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`ServiceBuilder::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Inference worker threads (≥ 1).
    pub workers: usize,
    /// Most queries packed into one batched forward (≥ 1).
    pub max_batch: usize,
    /// How long a worker holding a non-full batch waits for more work
    /// before running it.
    pub batch_linger: Duration,
    /// Plan-cache entries across all shards; `0` disables caching.
    pub cache_capacity: usize,
    /// Cache shard count (lock-contention granularity).
    pub cache_shards: usize,
    /// When `false`, every miss runs as a batch of one.
    pub batching: bool,
    /// Bound on queued (admitted, not yet planned) requests (≥ 1).
    /// Admission beyond it fails fast with [`MtmlfError::Overloaded`]
    /// instead of growing an unbounded backlog.
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    /// `None` means such requests wait indefinitely.
    pub default_deadline: Option<Duration>,
    /// Retry policy for transient model-path errors.
    pub retry: RetryPolicy,
    /// Circuit breaker over the model path (threshold, cool-down, clock).
    pub breaker: crate::resilience::BreakerConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 8,
            batch_linger: Duration::from_micros(500),
            cache_capacity: 1024,
            cache_shards: 8,
            batching: true,
            queue_capacity: 1024,
            default_deadline: None,
            retry: RetryPolicy::default(),
            breaker: crate::resilience::BreakerConfig::default(),
        }
    }
}

impl ServiceConfig {
    fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(MtmlfError::InvalidConfig(
                "service needs at least one worker thread".into(),
            ));
        }
        if self.max_batch == 0 {
            return Err(MtmlfError::InvalidConfig(
                "max_batch must be at least 1".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(MtmlfError::InvalidConfig(
                "queue_capacity must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

struct Job {
    query: Query,
    fp: QueryFingerprint,
    /// Absolute deadline; a worker drops the job (instead of forwarding it)
    /// once this has passed, because the client has already timed out.
    deadline: Option<Instant>,
    reply: Sender<Result<(PlanPayload, PlanSource)>>,
    /// The request's in-flight trace; travels with the job so whichever
    /// thread finishes the request completes its trace.
    trace: Option<TraceBuilder>,
}

/// A submitted-but-unanswered request, produced by the submit half of
/// [`PlannerService::plan`]. Splitting submit from wait lets
/// [`PlanClient::plan_batch`] enqueue every request before blocking on any
/// reply, so concurrent misses land in one cross-query batch.
enum PendingPlan {
    /// Answered (or refused) on the submitting thread: cache hit, shed,
    /// shutdown refusal.
    Ready(Result<PlanResponse>),
    /// Queued for the worker pool; the reply arrives on `reply_rx`.
    Waiting {
        reply_rx: Receiver<Result<(PlanPayload, PlanSource)>>,
        abs_deadline: Option<Instant>,
        start: Instant,
    },
}

/// Power-of-two latency histogram: bucket `i` counts samples whose latency
/// in nanoseconds lies in `[2^i, 2^(i+1))` (bucket 0 also holds 0 ns).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; 32],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded latencies, in nanoseconds.
    pub total_nanos: u64,
    /// Largest single sample recorded, in nanoseconds (`0` when empty or
    /// when the histogram was assembled from buckets alone).
    pub max_nanos: u64,
}

impl LatencyHistogram {
    /// Records one sample. The service's hot path records through atomic
    /// mirrors instead; this is for snapshot builders and tests.
    pub fn record_nanos(&mut self, nanos: u64) {
        self.buckets[Self::bucket(nanos)] += 1;
        self.count += 1;
        self.total_nanos = self.total_nanos.saturating_add(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Mean latency over all samples (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.total_nanos / self.count)
        }
    }

    /// Upper-bound estimate of the `q`-quantile (e.g. `0.99`): the upper
    /// edge of the first bucket at which the cumulative count reaches it,
    /// capped at the true maximum. At `q = 1.0` this *is* the true maximum
    /// (when one was recorded), not a bucket edge — a power-of-two edge can
    /// overstate the worst case by almost 2x.
    ///
    /// Returns [`Duration::ZERO`] on an empty histogram; use
    /// [`Self::try_quantile`] to distinguish "no samples" from a genuine
    /// zero-latency quantile.
    pub fn quantile(&self, q: f64) -> Duration {
        self.try_quantile(q).unwrap_or(Duration::ZERO)
    }

    /// [`Self::quantile`], but `None` when no samples have been recorded —
    /// an empty histogram has no quantiles, and dashboards that plot the
    /// raw value would otherwise render a phantom bucket bound.
    pub fn try_quantile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        if q >= 1.0 && self.max_nanos > 0 {
            return Some(Duration::from_nanos(self.max_nanos));
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                let edge = 1u64 << (i + 1).min(63);
                // Bucket-edge estimate, except it can never exceed the
                // recorded maximum.
                let capped = if self.max_nanos > 0 {
                    edge.min(self.max_nanos)
                } else {
                    edge
                };
                return Some(Duration::from_nanos(capped));
            }
        }
        // Reachable only for hand-assembled histograms whose `count`
        // exceeds the bucket sum; answer with the most honest bound we
        // have instead of a sentinel that reads as a 584-year latency.
        Some(if self.max_nanos > 0 {
            Duration::from_nanos(self.max_nanos)
        } else {
            Duration::from_nanos(1u64 << 32)
        })
    }

    /// The bucket index covering a sample of `nanos`.
    pub fn bucket(nanos: u64) -> usize {
        (63 - nanos.max(1).leading_zeros() as usize).min(31)
    }
}

struct MetricsInner {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    model_plans: AtomicU64,
    fallbacks: AtomicU64,
    errors: AtomicU64,
    timeouts: AtomicU64,
    sheds: AtomicU64,
    expired: AtomicU64,
    retries: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    swaps: AtomicU64,
    rollbacks: AtomicU64,
    swap_rejections: AtomicU64,
    shadow_evals: AtomicU64,
    canary_requests: AtomicU64,
    /// Last published drift score, stored as `f64::to_bits`.
    drift_score_bits: AtomicU64,
    /// Last published buffer-manager spill gauge
    /// ([`PlannerService::set_spilled_frames`]).
    spilled_frames: AtomicU64,
    cache_buckets: [AtomicU64; 32],
    cache_count: AtomicU64,
    cache_nanos: AtomicU64,
    cache_max: AtomicU64,
    model_buckets: [AtomicU64; 32],
    model_count: AtomicU64,
    model_nanos: AtomicU64,
    model_max: AtomicU64,
    fallback_buckets: [AtomicU64; 32],
    fallback_count: AtomicU64,
    fallback_nanos: AtomicU64,
    fallback_max: AtomicU64,
}

impl MetricsInner {
    fn new() -> Self {
        Self {
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            model_plans: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_queries: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            swap_rejections: AtomicU64::new(0),
            shadow_evals: AtomicU64::new(0),
            canary_requests: AtomicU64::new(0),
            drift_score_bits: AtomicU64::new(0.0f64.to_bits()),
            spilled_frames: AtomicU64::new(0),
            cache_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            cache_count: AtomicU64::new(0),
            cache_nanos: AtomicU64::new(0),
            cache_max: AtomicU64::new(0),
            model_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            model_count: AtomicU64::new(0),
            model_nanos: AtomicU64::new(0),
            model_max: AtomicU64::new(0),
            fallback_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            fallback_count: AtomicU64::new(0),
            fallback_nanos: AtomicU64::new(0),
            fallback_max: AtomicU64::new(0),
        }
    }

    fn record(&self, source: PlanSource, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        let bucket = LatencyHistogram::bucket(nanos);
        let (hits, buckets, count, total, max) = match source {
            PlanSource::Cache => (
                &self.cache_hits,
                &self.cache_buckets,
                &self.cache_count,
                &self.cache_nanos,
                &self.cache_max,
            ),
            PlanSource::Model => (
                &self.model_plans,
                &self.model_buckets,
                &self.model_count,
                &self.model_nanos,
                &self.model_max,
            ),
            PlanSource::Fallback => (
                &self.fallbacks,
                &self.fallback_buckets,
                &self.fallback_count,
                &self.fallback_nanos,
                &self.fallback_max,
            ),
        };
        hits.fetch_add(1, Ordering::Relaxed);
        buckets[bucket].fetch_add(1, Ordering::Relaxed);
        count.fetch_add(1, Ordering::Relaxed);
        total.fetch_add(nanos, Ordering::Relaxed);
        max.fetch_max(nanos, Ordering::Relaxed);
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let hist = |buckets: &[AtomicU64; 32],
                    count: &AtomicU64,
                    nanos: &AtomicU64,
                    max: &AtomicU64| LatencyHistogram {
            buckets: std::array::from_fn(|i| buckets[i].load(Ordering::Relaxed)),
            count: count.load(Ordering::Relaxed),
            total_nanos: nanos.load(Ordering::Relaxed),
            max_nanos: max.load(Ordering::Relaxed),
        };
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            model_plans: self.model_plans.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_queries: self.batched_queries.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            swap_rejections: self.swap_rejections.load(Ordering::Relaxed),
            shadow_evals: self.shadow_evals.load(Ordering::Relaxed),
            canary_requests: self.canary_requests.load(Ordering::Relaxed),
            drift_score: f64::from_bits(self.drift_score_bits.load(Ordering::Relaxed)),
            spilled_frames: self.spilled_frames.load(Ordering::Relaxed),
            cache_latency: hist(
                &self.cache_buckets,
                &self.cache_count,
                &self.cache_nanos,
                &self.cache_max,
            ),
            model_latency: hist(
                &self.model_buckets,
                &self.model_count,
                &self.model_nanos,
                &self.model_max,
            ),
            fallback_latency: hist(
                &self.fallback_buckets,
                &self.fallback_count,
                &self.fallback_nanos,
                &self.fallback_max,
            ),
            // Gauges (breaker, cache occupancy, queue depth, tracing) are
            // filled in by `PlannerService::metrics`.
            ..MetricsSnapshot::default()
        }
    }
}

/// A thread-safe planning service: shared plan cache, batched inference,
/// worker pool, and the fault-tolerance ladder of DESIGN.md §9. See the
/// [module docs](self) for the architecture.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use std::time::Duration;
/// use mtmlf::prelude::*;
/// use mtmlf::serve::ServiceConfig;
///
/// # fn demo(model: MtmlfQo, db: Arc<mtmlf_storage::Database>, query: Query) -> mtmlf::Result<()> {
/// let service = PlannerService::builder(Arc::new(model))
///     .fallback(FallbackPlanner::new(db))
///     .tracing(TraceConfig::default())
///     .config(ServiceConfig {
///         default_deadline: Some(Duration::from_millis(50)),
///         ..ServiceConfig::default()
///     })
///     .start()?;
/// // Callable from any number of threads:
/// let response = service.plan(PlanRequest::new(query).with_deadline(Duration::from_millis(10)))?;
/// println!(
///     "order {:?} card {:.0} cost {:.0} via {:?} in {:?}",
///     response.join_order, response.est_card, response.est_cost,
///     response.source, response.latency,
/// );
/// println!("hit rate {:.2}", service.metrics().cache_hit_rate());
/// print!("{}", service.render_prometheus());
/// # Ok(())
/// # }
/// ```
pub struct PlannerService {
    /// `None` once [`PlannerService::shutdown`] has run; behind a `RwLock`
    /// so shutdown can race concurrent [`PlannerService::plan`] calls.
    tx: RwLock<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    cache: Arc<PlanStore>,
    metrics: Arc<MetricsInner>,
    breaker: Arc<CircuitBreaker>,
    tracer: Option<Arc<Tracer>>,
    queue_depth: Arc<AtomicUsize>,
    default_deadline: Option<Duration>,
    /// The swap point workers plan through ([`crate::lifecycle`]).
    slot: Arc<ModelSlot>,
}

/// Everything one worker thread needs; cloned per worker.
#[derive(Clone)]
struct WorkerCtx {
    /// The model swap point; workers resolve a model from it once per
    /// batch, so a hot swap never splits a batch across versions.
    slot: Arc<ModelSlot>,
    cache: Arc<PlanStore>,
    metrics: Arc<MetricsInner>,
    fallback: Option<FallbackPlanner>,
    breaker: Arc<CircuitBreaker>,
    retry: RetryPolicy,
    tracer: Option<Arc<Tracer>>,
    queue_depth: Arc<AtomicUsize>,
    #[cfg(any(test, feature = "fault-injection"))]
    faults: Option<Arc<FaultPlan>>,
}

/// Configures and starts a [`PlannerService`]; from
/// [`PlannerService::builder`].
///
/// ```no_run
/// # use std::sync::Arc;
/// # use mtmlf::prelude::*;
/// # fn demo(model: Arc<MtmlfQo>, fallback: FallbackPlanner) -> mtmlf::Result<()> {
/// let service = PlannerService::builder(model)
///     .config(ServiceConfig::default())
///     .fallback(fallback)
///     .tracing(TraceConfig::default())
///     .start()?;
/// # drop(service); Ok(())
/// # }
/// ```
#[must_use = "a builder does nothing until `.start()`"]
pub struct ServiceBuilder {
    model: Arc<MtmlfQo>,
    model_version: ModelVersion,
    config: ServiceConfig,
    fallback: Option<FallbackPlanner>,
    tracing: Option<TraceConfig>,
    durable: Option<DurableConfig>,
    #[cfg(any(test, feature = "fault-injection"))]
    faults: Option<Arc<FaultPlan>>,
}

impl ServiceBuilder {
    fn new(model: Arc<MtmlfQo>) -> Self {
        Self {
            model,
            model_version: ModelVersion::default(),
            config: ServiceConfig::default(),
            fallback: None,
            tracing: None,
            durable: None,
            #[cfg(any(test, feature = "fault-injection"))]
            faults: None,
        }
    }

    /// Labels the boot model with a registry version (defaults to `v0`,
    /// the unregistered boot version). Hot swaps are idempotent on
    /// version, so starting from the version the model was published
    /// under makes a redundant swap of the same snapshot a no-op.
    pub fn model_version(mut self, version: ModelVersion) -> Self {
        self.model_version = version;
        self
    }

    /// Replaces the [`ServiceConfig`] (defaults to
    /// `ServiceConfig::default()`).
    pub fn config(mut self, config: ServiceConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the classical fallback planner that answers when the model path
    /// fails or the breaker is open. Accepts a [`FallbackPlanner`] or an
    /// `Option` of one (handy when it is itself configurable).
    pub fn fallback(mut self, fallback: impl Into<Option<FallbackPlanner>>) -> Self {
        self.fallback = fallback.into();
        self
    }

    /// Enables plan-lifecycle tracing ([`crate::trace`]): per-stage latency
    /// histograms plus a ring buffer of complete request traces. Off by
    /// default; when off the service holds no tracer and pays no tracing
    /// cost.
    pub fn tracing(mut self, tracing: TraceConfig) -> Self {
        self.tracing = Some(tracing);
        self
    }

    /// Makes the plan cache durable under `dir` with the default policy
    /// (see [`DurableConfig::new`]): every cache mutation is mirrored to a
    /// write-behind log, and `.start()` warm-starts the cache from
    /// whatever a previous service persisted there (DESIGN.md §16).
    pub fn durable(self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.durable_config(DurableConfig::new(dir))
    }

    /// Like [`ServiceBuilder::durable`] with full control over the
    /// compaction threshold, write-behind buffer, and record clock.
    pub fn durable_config(mut self, config: DurableConfig) -> Self {
        self.durable = Some(config);
        self
    }

    /// Consults `faults` before every model forward — the chaos-test entry
    /// point. Test/feature-gated; release builds have no fault-injection
    /// code at all.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(Arc::new(faults));
        self
    }

    /// Validates the config, spawns the worker pool, and returns the
    /// running service.
    pub fn start(self) -> Result<PlannerService> {
        let Self {
            model,
            model_version,
            config,
            fallback,
            tracing,
            durable,
            #[cfg(any(test, feature = "fault-injection"))]
            faults,
        } = self;
        config.validate()?;
        let cache = Arc::new(match &durable {
            // Durable mode: recover the directory and warm-start the
            // cache before the first request arrives.
            Some(durable) => {
                PlanStore::open(config.cache_capacity, config.cache_shards, durable)?
            }
            None => PlanStore::in_memory(config.cache_capacity, config.cache_shards),
        });
        let metrics = Arc::new(MetricsInner::new());
        let breaker = Arc::new(CircuitBreaker::new(config.breaker.clone()));
        let tracer = tracing.map(|t| Arc::new(Tracer::new(&t)));
        let queue_depth = Arc::new(AtomicUsize::new(0));
        let slot = Arc::new(ModelSlot::with_version(model, model_version));
        let (tx, rx) = bounded::<Job>(config.queue_capacity);
        let ctx = WorkerCtx {
            slot: Arc::clone(&slot),
            cache: Arc::clone(&cache),
            metrics: Arc::clone(&metrics),
            fallback,
            breaker: Arc::clone(&breaker),
            retry: config.retry.clone(),
            tracer: tracer.clone(),
            queue_depth: Arc::clone(&queue_depth),
            #[cfg(any(test, feature = "fault-injection"))]
            faults,
        };
        let workers = (0..config.workers)
            .map(|i| {
                let ctx = ctx.clone();
                let rx = rx.clone();
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("mtmlf-planner-{i}"))
                    .spawn(move || worker_loop(&ctx, &rx, &config))
                    .map_err(|e| MtmlfError::Service(format!("spawn worker: {e}")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(PlannerService {
            tx: RwLock::new(Some(tx)),
            workers: Mutex::new(workers),
            cache,
            metrics,
            breaker,
            tracer,
            queue_depth,
            default_deadline: config.default_deadline,
            slot,
        })
    }
}

impl PlannerService {
    /// Starts configuring a service over `model`; finish with
    /// [`ServiceBuilder::start`]. Dropping the started service drains and
    /// joins the workers (see [`PlannerService::shutdown`]).
    pub fn builder(model: Arc<MtmlfQo>) -> ServiceBuilder {
        ServiceBuilder::new(model)
    }

    /// Plans one query, from cache when possible, otherwise via the worker
    /// pool. Blocks the calling thread until its response is ready or its
    /// deadline expires; safe to call concurrently from many threads.
    ///
    /// Every call returns exactly one result: a [`PlanResponse`] (cached,
    /// modeled, or fallback) or a typed error ([`MtmlfError::Timeout`],
    /// [`MtmlfError::Overloaded`], [`MtmlfError::Service`], or the model's
    /// own error). The chaos suite asserts this under injected faults.
    pub fn plan(&self, request: impl Into<PlanRequest>) -> Result<PlanResponse> {
        let pending = self.submit_request(request.into());
        self.wait_for(pending)
    }

    /// The submit half of [`PlannerService::plan`]: admission, the cache
    /// fast path, and the queue handoff — everything except blocking on the
    /// worker's reply. [`PlanClient::plan_batch`] submits every request
    /// before waiting on any so concurrent misses share one batch.
    fn submit_request(&self, request: PlanRequest) -> PendingPlan {
        let PlanRequest {
            query,
            deadline,
            trace: trace_pref,
        } = request;
        let start = Instant::now();
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        // Open the trace at admission, stamping breaker state and queue
        // depth as the operator would have seen them. `trace: Some(false)`
        // opts the request out even on a tracing service; `Some(true)` is a
        // no-op without a tracer.
        let mut trace = if trace_pref.unwrap_or(true) {
            self.tracer.as_ref().map(|t| {
                t.begin(
                    self.breaker.state(),
                    self.queue_depth.load(Ordering::Relaxed),
                )
            })
        } else {
            None
        };
        let deadline = deadline.or(self.default_deadline);
        // Saturating: a deadline too large to represent is no deadline.
        let abs_deadline = deadline.and_then(|d| start.checked_add(d));

        // Refuse before the cache probe: a shut-down service answers
        // nothing, not even hits (mirrors the service model, where any
        // submit after close is Rejected). The sender is cloned out of the
        // guard so the read lock is not held across the cache probe, the
        // admission attempt, or the reply wait.
        let tx = {
            let guard = self.tx.read().unwrap_or_else(PoisonError::into_inner);
            guard.clone()
        };
        let Some(tx) = tx else {
            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
            self.finish_trace(trace, TraceOutcome::Error);
            return PendingPlan::Ready(Err(MtmlfError::Service(
                "planner service is shut down".into(),
            )));
        };
        let fp = match trace.as_mut() {
            Some(tb) => tb.timed(Stage::Fingerprint, || fingerprint(&query)),
            None => fingerprint(&query),
        };

        // Fast path: answer cache hits on the calling thread, no handoff.
        let probe = match trace.as_mut() {
            Some(tb) => tb.timed(Stage::CacheLookup, || self.cache.get(&fp)),
            None => self.cache.get(&fp),
        };
        if let Some(hit) = probe {
            self.finish_trace(trace, TraceOutcome::Served(PlanSource::Cache));
            return PendingPlan::Ready(Ok(self.respond(hit, PlanSource::Cache, start)));
        }

        if let Some(tb) = trace.as_mut() {
            tb.mark_queued();
            // Model-path requests capture their query so the completed
            // trace is replayable by the lifecycle layer's shadow
            // evaluator; cache hits above never need it.
            tb.attach_query(Arc::new(query.clone()));
        }
        let (reply_tx, reply_rx) = bounded(1);
        let job = Job {
            query,
            fp,
            deadline: abs_deadline,
            reply: reply_tx,
            trace,
        };
        // Admission control: never block on a full queue — shed instead.
        // The sender clone is dropped eagerly either way: a shutdown that
        // raced this call must not wait on this thread's reply round-trip
        // to see the channel close. The depth gauge is raised before the
        // send so a worker's decrement can never observe it at zero.
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
        let sent = tx.try_send(job);
        drop(tx);
        match sent {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => {
                self.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.metrics.sheds.fetch_add(1, Ordering::Relaxed);
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                self.finish_trace(job.trace, TraceOutcome::Shed);
                return PendingPlan::Ready(Err(MtmlfError::Overloaded));
            }
            Err(TrySendError::Disconnected(job)) => {
                self.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                self.finish_trace(job.trace, TraceOutcome::Error);
                return PendingPlan::Ready(Err(MtmlfError::Service(
                    "planner workers are gone".into(),
                )));
            }
        }
        PendingPlan::Waiting {
            reply_rx,
            abs_deadline,
            start,
        }
    }

    /// The wait half of [`PlannerService::plan`]: blocks on the worker's
    /// reply (bounded by the request's absolute deadline) and turns the
    /// outcome into a [`PlanResponse`].
    fn wait_for(&self, pending: PendingPlan) -> Result<PlanResponse> {
        let (reply_rx, abs_deadline, start) = match pending {
            PendingPlan::Ready(result) => return result,
            PendingPlan::Waiting {
                reply_rx,
                abs_deadline,
                start,
            } => (reply_rx, abs_deadline, start),
        };
        let outcome = match abs_deadline {
            Some(d) => match reply_rx.recv_deadline(d) {
                Ok(outcome) => outcome,
                Err(RecvTimeoutError::Timeout) => {
                    self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    return Err(MtmlfError::Timeout);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    return Err(MtmlfError::Service(
                        "planner worker dropped the reply".into(),
                    ));
                }
            },
            None => match reply_rx.recv() {
                Ok(outcome) => outcome,
                Err(_) => {
                    self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    return Err(MtmlfError::Service(
                        "planner worker dropped the reply".into(),
                    ));
                }
            },
        };
        match outcome {
            Ok((plan, source)) => Ok(self.respond(plan, source, start)),
            Err(e) => {
                if matches!(e, MtmlfError::Timeout) {
                    self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn respond(&self, plan: PlanPayload, source: PlanSource, start: Instant) -> PlanResponse {
        let latency = start.elapsed();
        self.metrics.record(source, latency);
        PlanResponse {
            join_order: plan.join_order,
            est_card: plan.est_card,
            est_cost: plan.est_cost,
            source,
            latency,
        }
    }

    /// Completes a client-side trace (cache hit, shed, refusal). Queued
    /// requests are completed by the worker instead.
    fn finish_trace(&self, trace: Option<TraceBuilder>, outcome: TraceOutcome) {
        if let (Some(tracer), Some(tb)) = (&self.tracer, trace) {
            tb.finish(tracer, outcome);
        }
    }

    /// A point-in-time snapshot of the service counters, latency
    /// histograms, and gauges. See [`crate::metrics`] for the consistency
    /// guarantee.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = self.metrics.snapshot();
        m.breaker_opens = self.breaker.times_opened();
        m.breaker_state = self.breaker.state();
        m.cached_plans = self.cache.len() as u64;
        m.warm_start_entries = self.cache.warm_start_entries();
        m.log_compactions = self.cache.log_compactions();
        m.queue_depth = self.queue_depth.load(Ordering::Relaxed) as u64;
        m.model_version = self.slot.version().0;
        m.canary_active = self.slot.canary_version().is_some();
        if let Some(tracer) = &self.tracer {
            m.tracing_enabled = true;
            m.traces = tracer.completed();
            m.stage_latency = tracer.stage_histograms();
        }
        m
    }

    /// The last N complete request traces, oldest first (empty when the
    /// service was built without `.tracing(..)`).
    pub fn traces(&self) -> Vec<RequestTrace> {
        self.tracer.as_ref().map(|t| t.recent()).unwrap_or_default()
    }

    /// Renders [`PlannerService::metrics`] in the Prometheus text
    /// exposition format ([`crate::metrics::render_prometheus`]).
    pub fn render_prometheus(&self) -> String {
        crate::metrics::render_prometheus(&self.metrics())
    }

    /// The circuit breaker's current state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Entries currently held by the plan cache.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Seeds the plan cache with a payload computed elsewhere. The cluster
    /// layer calls this when a peer replica gossips a freshly computed plan
    /// so the next local request for `fp` is a cache hit.
    pub fn warm(&self, fp: QueryFingerprint, payload: PlanPayload) {
        self.cache.insert(fp, payload);
    }

    /// Drops the cached plan for `fp`, returning `true` when an entry was
    /// removed. The cluster layer's invalidation protocol fans this out to
    /// every replica so a stale plan stops being served anywhere.
    pub fn invalidate(&self, fp: &QueryFingerprint) -> bool {
        self.cache.remove(fp).is_some()
    }

    /// Peeks the plan cache without planning. Used by the cluster layer to
    /// source warm-gossip payloads and by tests to observe cache state.
    pub fn cached_payload(&self, fp: &QueryFingerprint) -> Option<PlanPayload> {
        self.cache.get(fp)
    }

    // --- Model lifecycle (see `crate::lifecycle` and DESIGN.md §14) ---

    /// The active model version.
    pub fn model_version(&self) -> ModelVersion {
        self.slot.version()
    }

    /// Atomically hot-swaps `candidate` in as the active model. In-flight
    /// batches finish on the version they selected; subsequent batches
    /// plan with `candidate`; no request is dropped. On a real swap the
    /// plan cache is cleared (its entries belong to the displaced
    /// version) and the displaced model is retained for one
    /// [`PlannerService::rollback_model`]. Idempotent on `version`.
    pub fn swap_model(&self, candidate: Arc<MtmlfQo>, version: ModelVersion) -> SwapOutcome {
        let outcome = self.slot.swap(candidate, version);
        if matches!(outcome, SwapOutcome::Swapped { .. }) {
            self.cache.clear();
            self.metrics.swaps.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }

    /// Restores the model displaced by the last swap (one level deep),
    /// clearing the plan cache so no plan from the rolled-back version
    /// survives. Errors when there is nothing to roll back to.
    pub fn rollback_model(&self) -> Result<ModelVersion> {
        let version = self.slot.rollback()?;
        self.cache.clear();
        self.metrics.rollbacks.fetch_add(1, Ordering::Relaxed);
        Ok(version)
    }

    /// Loads `version` from `registry` into `fresh` — a freshly
    /// constructed model that must not alias the live one — and swaps it
    /// in. A corrupt or truncated snapshot is rejected before any
    /// parameter is touched: the live model keeps serving, the candidate
    /// is never promoted, and the `swap_rejected` metric records the
    /// attempt.
    pub fn adopt_version(
        &self,
        registry: &ModelRegistry,
        version: ModelVersion,
        mut fresh: MtmlfQo,
    ) -> Result<SwapOutcome> {
        match registry.load_into(version, &mut fresh) {
            Ok(()) => Ok(self.swap_model(Arc::new(fresh), version)),
            Err(e) => {
                self.metrics.swap_rejections.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Stages `candidate` as a canary receiving `fraction_permille`/1000
    /// of worker batches; the active model keeps the rest. Poll
    /// [`PlannerService::resolve_canary`] to promote or roll back.
    pub fn begin_canary(
        &self,
        candidate: Arc<MtmlfQo>,
        version: ModelVersion,
        fraction_permille: u16,
    ) {
        self.slot.begin_canary(candidate, version, fraction_permille);
    }

    /// Discards a staged canary without touching the active model,
    /// returning its version if one was staged.
    pub fn cancel_canary(&self) -> Option<ModelVersion> {
        self.slot.cancel_canary()
    }

    /// Decides the staged canary's fate from its observed window: rolls it
    /// back immediately when the circuit breaker has tripped or (once
    /// `policy.min_window` canary requests completed) its failure rate
    /// exceeds `policy.max_failure_rate`; promotes it when the window
    /// completes clean; otherwise keeps waiting. Safe to poll repeatedly.
    pub fn resolve_canary(&self, policy: &CanaryPolicy) -> CanaryVerdict {
        if self.slot.canary_version().is_none() {
            return CanaryVerdict::Pending;
        }
        let (served, failures) = self.slot.canary_stats();
        let breaker_tripped = self.breaker.state() != BreakerState::Closed;
        let window_full = served >= policy.min_window.max(1);
        let failure_rate = if served == 0 {
            0.0
        } else {
            failures as f64 / served as f64
        };
        if breaker_tripped || (window_full && failure_rate > policy.max_failure_rate) {
            return match self.slot.cancel_canary() {
                Some(version) => {
                    self.metrics.rollbacks.fetch_add(1, Ordering::Relaxed);
                    CanaryVerdict::RolledBack(version)
                }
                None => CanaryVerdict::Pending,
            };
        }
        if window_full {
            return match self.slot.promote_canary() {
                Ok(version) => {
                    // Promotion changes the active version: stale plans out.
                    self.cache.clear();
                    self.metrics.swaps.fetch_add(1, Ordering::Relaxed);
                    CanaryVerdict::Promoted(version)
                }
                Err(_) => CanaryVerdict::Pending,
            };
        }
        CanaryVerdict::Pending
    }

    /// Replays `window` against the live model and `candidate` off the hot
    /// path ([`crate::lifecycle::shadow_evaluate`]), counting the
    /// evaluation in the service metrics.
    pub fn shadow_evaluate(
        &self,
        window: &[DriftSample],
        candidate: &MtmlfQo,
        config: &ShadowConfig,
    ) -> Result<ShadowReport> {
        self.metrics.shadow_evals.fetch_add(1, Ordering::Relaxed);
        let (baseline, _) = self.slot.active();
        crate::lifecycle::shadow_evaluate(window, &baseline, candidate, config)
    }

    /// Publishes the latest drift score so it rides along in
    /// [`PlannerService::metrics`] and the Prometheus exposition. The
    /// lifecycle loop that owns the [`crate::lifecycle::DriftDetector`]
    /// calls this after each scoring pass.
    pub fn set_drift_score(&self, score: f64) {
        self.metrics
            .drift_score_bits
            .store(score.to_bits(), Ordering::Relaxed);
    }

    /// Publishes the storage buffer manager's spilled-frame count (a
    /// gauge, like the drift score) so memory-bounded deployments can
    /// watch spill pressure next to the serving counters. The embedder
    /// that owns the [`mtmlf_storage::BufferPool`] calls this.
    pub fn set_spilled_frames(&self, frames: u64) {
        self.metrics.spilled_frames.store(frames, Ordering::Relaxed);
    }

    /// The [`PlanStore`] backing this service's cache: warm-start and
    /// compaction counters, explicit [`PlanStore::compact`] /
    /// [`PlanStore::flush`], and (in tests) compaction kill points.
    pub fn plan_store(&self) -> &Arc<PlanStore> {
        &self.cache
    }

    /// Stops accepting new requests and joins the worker pool.
    ///
    /// Graceful by construction: requests already queued (or mid-batch) are
    /// still planned and their callers still receive replies, because the
    /// workers drain the channel's buffer before observing disconnection.
    /// `plan` calls that arrive after shutdown return
    /// [`MtmlfError::Service`]. Idempotent and safe to call concurrently
    /// with `plan` from any number of threads; the
    /// `service-shutdown`/`service-2client` models in `mtmlf-lint` explore
    /// every interleaving of this race for small thread counts.
    pub fn shutdown(&self) {
        // Take the sender inside a block so the write guard drops before
        // joining: a worker blocked on a reply to a client that is itself
        // blocked in `plan` must not deadlock against this lock.
        let sender = {
            let mut guard = self.tx.write().unwrap_or_else(PoisonError::into_inner);
            guard.take()
        };
        // Closing the channel lets each worker drain and exit its loop.
        drop(sender);
        let handles = {
            let mut guard = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        for handle in handles {
            let _ = handle.join();
        }
        // Workers are gone: nothing mutates the cache anymore, so a final
        // flush makes an orderly shutdown lose no write-behind records.
        self.cache.flush();
    }
}

impl Drop for PlannerService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl PlanClient for PlannerService {
    fn plan(&self, request: PlanRequest) -> Result<PlanResponse> {
        PlannerService::plan(self, request)
    }

    /// Submits every request before waiting on any reply, so concurrent
    /// misses from one batch call land in the same cross-query model
    /// forward instead of serializing through the worker pool.
    fn plan_batch(&self, requests: Vec<PlanRequest>) -> Vec<Result<PlanResponse>> {
        let pending: Vec<PendingPlan> = requests
            .into_iter()
            .map(|r| self.submit_request(r))
            .collect();
        pending.into_iter().map(|p| self.wait_for(p)).collect()
    }
}

/// The single-threaded facade speaks the same client vocabulary: no cache,
/// no workers, no breaker — every request runs one model forward inline on
/// the calling thread and reports [`PlanSource::Model`].
///
/// Deadlines are checked after the forward (the facade cannot interrupt a
/// running forward): a request whose budget was exceeded by the time the
/// plan is ready gets [`MtmlfError::Timeout`], keeping the [`PlanClient`]
/// deadline contract — a caller never receives a response later than it
/// agreed to wait.
impl PlanClient for MtmlfQo {
    fn plan(&self, request: PlanRequest) -> Result<PlanResponse> {
        let start = Instant::now();
        let (join_order, est_card, est_cost) = self.plan_with_estimates(&request.query)?;
        let latency = start.elapsed();
        if let Some(deadline) = request.deadline {
            if latency > deadline {
                return Err(MtmlfError::Timeout);
            }
        }
        Ok(PlanResponse::from_payload(
            PlanPayload::new(join_order, est_card, est_cost),
            PlanSource::Model,
            latency,
        ))
    }
}

fn worker_loop(ctx: &WorkerCtx, rx: &Receiver<Job>, config: &ServiceConfig) {
    while let Ok(first) = rx.recv() {
        ctx.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let mut batch = vec![first];
        if config.batching && config.max_batch > 1 {
            // Adaptive flush: sweep whatever is already queued without
            // blocking, then linger only while admitted work is still in
            // flight toward the channel. When the admission gauge reads
            // zero there is nothing left to wait for, and lingering the
            // full `batch_linger` would just add dead time to every
            // batch under light load.
            let deadline = Instant::now() + config.batch_linger;
            while batch.len() < config.max_batch {
                match rx.try_recv() {
                    Ok(job) => {
                        ctx.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        batch.push(job);
                        continue;
                    }
                    Err(_) => {}
                }
                if ctx.queue_depth.load(Ordering::Relaxed) == 0 {
                    break;
                }
                match rx.recv_deadline(deadline) {
                    Ok(job) => {
                        ctx.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        batch.push(job);
                    }
                    Err(_) => break,
                }
            }
        }
        process_batch(ctx, batch);
    }
}

/// Completes a job's trace on the worker side (cache re-hit, expiry, or the
/// planned outcome). Must run before the reply send, so a client that has
/// its answer is guaranteed to find the complete trace.
fn finish_job_trace(ctx: &WorkerCtx, job: &mut Job, outcome: TraceOutcome) {
    if let (Some(tracer), Some(tb)) = (&ctx.tracer, job.trace.take()) {
        tb.finish(tracer, outcome);
    }
}

fn process_batch(ctx: &WorkerCtx, batch: Vec<Job>) {
    // One clock read closes every member's queue span.
    let dequeued_at = ctx.tracer.as_ref().map(|t| t.now());

    // Re-check the cache: another client may have planned the same query
    // between this job's miss and now.
    let mut misses: Vec<Job> = Vec::with_capacity(batch.len());
    for mut job in batch {
        if let (Some(at), Some(tb)) = (dequeued_at, job.trace.as_mut()) {
            tb.close_queue(at);
        }
        match ctx.cache.get(&job.fp) {
            Some(hit) => {
                finish_job_trace(ctx, &mut job, TraceOutcome::Served(PlanSource::Cache));
                let _ = job.reply.send(Ok((hit, PlanSource::Cache)));
            }
            None => misses.push(job),
        }
    }

    // Drop work whose deadline already passed: the client's recv_deadline
    // has fired, so forwarding would spend a model pass on an answer nobody
    // is waiting for. The reply send keeps the one-reply invariant literal
    // (it is a no-op for a departed client).
    let now = Instant::now();
    let mut live: Vec<Job> = Vec::with_capacity(misses.len());
    for mut job in misses {
        match job.deadline {
            Some(d) if d <= now => {
                ctx.metrics.expired.fetch_add(1, Ordering::Relaxed);
                finish_job_trace(ctx, &mut job, TraceOutcome::Expired);
                let _ = job.reply.send(Err(MtmlfError::Timeout));
            }
            _ => live.push(job),
        }
    }
    if live.is_empty() {
        return;
    }

    // Deduplicate identical queries within the batch (cache-stampede
    // collapse): plan each distinct fingerprint once, fan the result out.
    let mut unique_queries: Vec<Query> = Vec::with_capacity(live.len());
    let mut slot_of: HashMap<QueryFingerprint, usize> = HashMap::with_capacity(live.len());
    for job in &live {
        slot_of.entry(job.fp).or_insert_with(|| {
            unique_queries.push(job.query.clone());
            unique_queries.len() - 1
        });
    }

    ctx.metrics.batches.fetch_add(1, Ordering::Relaxed);
    ctx.metrics
        .batched_queries
        .fetch_add(unique_queries.len() as u64, Ordering::Relaxed);

    // Batch-level stages (featurize/encode/forward/beam/retry) are
    // measured once and attributed to every request in the batch — they
    // share the packed forward, so its time is each member's time.
    let mut recorder = match &ctx.tracer {
        Some(tracer) => StageRecorder::new(tracer.clock()),
        None => StageRecorder::disabled(),
    };
    // Resolve the model exactly once for the whole batch: every member is
    // planned by the same version, so a concurrent hot swap can never
    // split a batch across models.
    let batch_model = ctx.slot.select();
    let (outcomes, slot_spans) = plan_unique(ctx, &batch_model, &unique_queries, &mut recorder);

    // Cache model output only: fallback plans are cheap to recompute and
    // must stop being served the moment the model path recovers. Canary
    // output is also never cached — the cache belongs to the active
    // version, and a rolled-back canary must leave no plans behind.
    if !batch_model.canary {
        for (slot, outcome) in outcomes.iter().enumerate() {
            if let Ok((plan, PlanSource::Model)) = outcome {
                let fp = fingerprint(&unique_queries[slot]);
                ctx.cache.insert(fp, plan.clone());
            }
        }
    }
    let batch_size = live.len();
    for mut job in live {
        let slot = slot_of[&job.fp];
        if job.trace.is_some() {
            let outcome = match &outcomes[slot] {
                Ok((_, source)) => TraceOutcome::Served(*source),
                Err(_) => TraceOutcome::Error,
            };
            if let Some(tb) = job.trace.as_mut() {
                tb.set_batch_size(batch_size);
                tb.extend(recorder.spans());
                tb.extend(&slot_spans[slot]);
                if let Ok((plan, PlanSource::Model)) = &outcomes[slot] {
                    tb.set_est_card(plan.est_card);
                }
            }
            finish_job_trace(ctx, &mut job, outcome);
        }
        let _ = job.reply.send(outcomes[slot].clone());
    }
}

/// Runs the degradation ladder for a batch of distinct queries: breaker
/// admission → batched model forward with bounded retry → classical
/// fallback for whatever the model path could not answer.
///
/// Returns the per-slot outcomes plus per-slot extra spans (fallback runs
/// per query, so its time is attributed only to the slots that degraded);
/// batch-shared stage spans accumulate in `recorder`.
fn plan_unique(
    ctx: &WorkerCtx,
    batch_model: &BatchModel,
    queries: &[Query],
    recorder: &mut StageRecorder,
) -> (Vec<Result<(PlanPayload, PlanSource)>>, Vec<Vec<StageSpan>>) {
    let n = queries.len();
    if batch_model.canary {
        ctx.metrics
            .canary_requests
            .fetch_add(n as u64, Ordering::Relaxed);
    }

    // Breaker admission per distinct query. Rejected slots skip the model
    // entirely and degrade straight to the fallback.
    let admissions: Vec<Admission> = queries.iter().map(|_| ctx.breaker.try_acquire()).collect();

    // Model path with bounded retry for transient errors. Every attempt's
    // outcome (success or failure) is reported to the breaker — a transient
    // failure that will be retried is still evidence the model path is
    // unhealthy.
    let mut model_results: Vec<Option<Result<PlanPayload>>> = (0..n).map(|_| None).collect();
    let mut pending: Vec<usize> = (0..n)
        .filter(|&slot| admissions[slot] != Admission::Rejected)
        .collect();
    let mut attempt: u32 = 0;
    while !pending.is_empty() {
        let forward_queries: Vec<Query> =
            pending.iter().map(|&slot| queries[slot].clone()).collect();
        let forwarded = forward(ctx, &batch_model.model, &forward_queries, recorder);
        let mut retry_slots: Vec<usize> = Vec::new();
        for (i, &slot) in pending.iter().enumerate() {
            match &forwarded[i] {
                Ok(planned) => {
                    ctx.breaker.on_success();
                    model_results[slot] = Some(Ok(PlanPayload {
                        join_order: planned.join_order.clone(),
                        est_card: planned.est_card,
                        est_cost: planned.est_cost,
                    }));
                }
                Err(e) => {
                    ctx.breaker.on_failure();
                    if is_transient(e) && attempt < ctx.retry.max_retries {
                        retry_slots.push(slot);
                    } else {
                        model_results[slot] = Some(Err(e.clone()));
                    }
                }
            }
        }
        if retry_slots.is_empty() {
            break;
        }
        ctx.metrics
            .retries
            .fetch_add(retry_slots.len() as u64, Ordering::Relaxed);
        recorder.timed(Stage::Retry, || {
            std::thread::sleep(ctx.retry.backoff(attempt))
        });
        attempt += 1;
        pending = retry_slots;
    }

    // Canary accounting happens before assembly consumes the results: a
    // slot the canary model failed to answer counts against it even when
    // the fallback rescues the request.
    if batch_model.canary {
        let failures = model_results
            .iter()
            .filter(|r| matches!(r, Some(Err(_))))
            .count();
        ctx.slot.record_canary_batch(n as u64, failures as u64);
    }

    // Final assembly: model success, else fallback, else a typed error.
    let mut slot_spans: Vec<Vec<StageSpan>> = (0..n).map(|_| Vec::new()).collect();
    let mut results: Vec<Result<(PlanPayload, PlanSource)>> = Vec::with_capacity(n);
    for slot in 0..n {
        let result = match model_results[slot].take() {
            Some(Ok(plan)) => Ok((plan, PlanSource::Model)),
            model_failure => {
                let model_err = match model_failure {
                    Some(Err(e)) => Some(e),
                    _ => None, // breaker-rejected: the model was never asked
                };
                match &ctx.fallback {
                    Some(fb) => {
                        let fb_start = recorder.now();
                        let planned = fb.plan(&queries[slot]);
                        // Fallback time belongs to this slot alone.
                        if recorder.enabled() {
                            slot_spans[slot].push(StageSpan {
                                stage: Stage::Fallback,
                                start: fb_start,
                                end: recorder.now(),
                            });
                        }
                        match planned {
                            Ok((join_order, est_card, est_cost)) => Ok((
                                PlanPayload {
                                    join_order,
                                    est_card,
                                    est_cost,
                                },
                                PlanSource::Fallback,
                            )),
                            // The ladder ran dry: surface the model's error
                            // when there is one (it names the primary path),
                            // otherwise the fallback's.
                            Err(fb_err) => Err(model_err.unwrap_or(fb_err)),
                        }
                    }
                    None => Err(model_err.unwrap_or_else(|| {
                        MtmlfError::Service(
                            "circuit breaker open and no fallback planner configured".into(),
                        )
                    })),
                }
            }
        };
        results.push(result);
    }
    (results, slot_spans)
}

/// One batched model forward, with the fault-injection hook ahead of it.
fn forward(
    ctx: &WorkerCtx,
    model: &Arc<MtmlfQo>,
    queries: &[Query],
    recorder: &mut StageRecorder,
) -> Vec<Result<crate::batch::PlannedQuery>> {
    #[cfg(any(test, feature = "fault-injection"))]
    if let Some(faults) = &ctx.faults {
        // `inject` sleeps through latency spikes, panics for worker-crash
        // simulation, and returns Err for an injected forward failure.
        if let Err(e) = faults.inject() {
            return queries.iter().map(|_| Err(e.clone())).collect();
        }
    }
    // Inference only: skip the autograd tape entirely.
    no_grad(|| plan_batch_traced(model, queries, recorder))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{BreakerConfig, Clock, ManualClock};
    use crate::MtmlfConfig;
    use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};
    use mtmlf_storage::Database;

    fn setup() -> (Arc<MtmlfQo>, Arc<Database>, Vec<Query>) {
        let mut db = imdb_lite(41, ImdbScale { scale: 0.02 }).unwrap();
        db.analyze_all(8, 4);
        let cfg = MtmlfConfig {
            enc_queries: 10,
            enc_epochs: 1,
            seed: 41,
            ..MtmlfConfig::tiny()
        };
        let queries = generate_queries(
            &db,
            &WorkloadConfig {
                count: 5,
                max_tables: 4,
                ..WorkloadConfig::default()
            },
            11,
        );
        let model = MtmlfQo::new(&db, cfg).expect("build model");
        (Arc::new(model), Arc::new(db), queries)
    }

    /// A breaker config on a manual clock so tests control the cool-down.
    fn manual_breaker(threshold: u32) -> (BreakerConfig, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (
            BreakerConfig {
                failure_threshold: threshold,
                cooldown: Duration::from_millis(100),
                clock: Arc::clone(&clock) as Arc<dyn Clock>,
            },
            clock,
        )
    }

    #[test]
    fn serves_plans_and_caches_repeats() {
        let (model, _db, queries) = setup();
        let service = PlannerService::builder(Arc::clone(&model))
            .config(ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            })
            .start()
            .expect("start service");
        for query in &queries {
            let cold = service.plan(query.clone()).expect("cold plan");
            assert_eq!(cold.source, PlanSource::Model);
            cold.join_order.validate(query).expect("legal order");
            let (order, card, cost) = model.plan_with_estimates(query).expect("direct");
            assert_eq!(cold.join_order, order);
            assert_eq!(cold.est_card.to_bits(), card.to_bits());
            assert_eq!(cold.est_cost.to_bits(), cost.to_bits());

            let warm = service.plan(query.clone()).expect("warm plan");
            assert_eq!(warm.source, PlanSource::Cache);
            assert_eq!(warm.join_order, cold.join_order);
            assert_eq!(warm.est_card.to_bits(), cold.est_card.to_bits());
        }
        let m = service.metrics();
        assert_eq!(m.requests, 2 * queries.len() as u64);
        assert_eq!(m.cache_hits, queries.len() as u64);
        assert_eq!(m.model_plans, queries.len() as u64);
        assert!(m.cache_latency.mean() > Duration::ZERO);
        assert!(m.model_latency.mean() >= m.cache_latency.mean());
        assert_eq!(service.cached_plans(), queries.len());
        assert_eq!(m.fallbacks, 0);
        assert_eq!(m.breaker_opens, 0);
        assert_eq!(service.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn fingerprint_equivalent_queries_share_a_cache_entry() {
        let (model, _db, queries) = setup();
        let service = PlannerService::builder(model)
            .start()
            .expect("start service");
        let query = &queries[0];
        // Same query object twice stands in for any fingerprint-equal pair;
        // fingerprint canonicalization itself is proptested in mtmlf-query.
        service.plan(query.clone()).expect("cold");
        let again = service.plan(query.clone()).expect("warm");
        assert_eq!(again.source, PlanSource::Cache);
        assert_eq!(service.cached_plans(), 1);
    }

    #[test]
    fn caching_can_be_disabled() {
        let (model, _db, queries) = setup();
        let service = PlannerService::builder(model)
            .config(ServiceConfig {
                cache_capacity: 0,
                ..ServiceConfig::default()
            })
            .start()
            .expect("start service");
        let query = &queries[0];
        let a = service.plan(query.clone()).expect("first");
        let b = service.plan(query.clone()).expect("second");
        assert_eq!(a.source, PlanSource::Model);
        assert_eq!(b.source, PlanSource::Model);
        assert_eq!(service.metrics().cache_hits, 0);
        assert_eq!(service.cached_plans(), 0);
    }

    #[test]
    fn rejects_invalid_service_config() {
        let (model, _db, _) = setup();
        let err = PlannerService::builder(Arc::clone(&model))
            .config(ServiceConfig {
                workers: 0,
                ..ServiceConfig::default()
            })
            .start();
        assert!(matches!(err, Err(MtmlfError::InvalidConfig(_))));
        let err = PlannerService::builder(model)
            .config(ServiceConfig {
                queue_capacity: 0,
                ..ServiceConfig::default()
            })
            .start();
        assert!(matches!(err, Err(MtmlfError::InvalidConfig(_))));
    }

    #[test]
    fn histogram_bucketing_and_quantiles() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 0);
        assert_eq!(LatencyHistogram::bucket(2), 1);
        assert_eq!(LatencyHistogram::bucket(1024), 10);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), 31);
        let mut h = LatencyHistogram::default();
        for nanos in [100u64, 200, 400, 100_000] {
            h.record_nanos(nanos);
        }
        assert_eq!(h.mean(), Duration::from_nanos(100_700 / 4));
        assert!(h.quantile(0.5) <= Duration::from_nanos(1 << 9));
        assert!(h.quantile(1.0) >= Duration::from_nanos(100_000));
    }

    /// Regression: `quantile(1.0)` used to return the power-of-two bucket
    /// edge above the largest sample (here 131072 ns for a 100000 ns max),
    /// overstating the worst case by up to 2x. It must return the true
    /// recorded maximum, and sub-1.0 quantile edges must be capped by it.
    #[test]
    fn quantile_at_one_returns_the_true_max_not_a_bucket_edge() {
        let mut h = LatencyHistogram::default();
        for nanos in [100u64, 200, 400, 100_000] {
            h.record_nanos(nanos);
        }
        assert_eq!(h.max_nanos, 100_000);
        assert_eq!(h.quantile(1.0), Duration::from_nanos(100_000));
        assert_eq!(h.quantile(2.0), Duration::from_nanos(100_000));
        // 0.99 of 4 samples lands in the top bucket; its edge estimate is
        // capped at the observed max instead of 2^17.
        assert_eq!(h.quantile(0.99), Duration::from_nanos(100_000));

        // A histogram assembled from buckets alone (no recorded max) keeps
        // the conservative bucket-edge behaviour.
        let mut edges_only = LatencyHistogram::default();
        edges_only.buckets[LatencyHistogram::bucket(100_000)] += 1;
        edges_only.count += 1;
        edges_only.total_nanos += 100_000;
        assert_eq!(edges_only.quantile(1.0), Duration::from_nanos(1 << 17));
    }

    /// Regression: an empty histogram used to fall through to a
    /// `u64::MAX`-nanosecond sentinel on some quantiles; empty must mean
    /// `None` from `try_quantile` and a plain zero from `quantile`, at
    /// every `q`.
    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::default();
        for q in [0.0, 0.5, 0.99, 1.0, 2.0, -1.0] {
            assert_eq!(h.try_quantile(q), None, "q={q}");
            assert_eq!(h.quantile(q), Duration::ZERO, "q={q}");
        }
        assert_eq!(h.mean(), Duration::ZERO);

        // One sample flips both surfaces to real values.
        let mut h = h;
        h.record_nanos(700);
        assert!(h.try_quantile(0.5).is_some());
        assert_eq!(h.quantile(1.0), Duration::from_nanos(700));

        // A malformed hand-assembled histogram (count exceeding the bucket
        // sum) answers with a sane bound, never a 584-year sentinel.
        let mut broken = LatencyHistogram {
            count: 5,
            ..LatencyHistogram::default()
        };
        assert!(broken.quantile(0.9) < Duration::from_secs(10));
        broken.max_nanos = 42;
        assert_eq!(broken.quantile(0.9), Duration::from_nanos(42));
    }

    #[test]
    fn retry_recovers_from_one_transient_fault() {
        let (model, _db, queries) = setup();
        let (breaker, _clock) = manual_breaker(100);
        let service = PlannerService::builder(model)
            .config(ServiceConfig {
                workers: 1,
                breaker,
                retry: RetryPolicy {
                    max_retries: 2,
                    base_backoff: Duration::from_micros(50),
                },
                ..ServiceConfig::default()
            })
            .faults(FaultPlan::new().fail_on(0))
            .start()
            .expect("start service");
        let resp = service.plan(queries[0].clone()).expect("retried plan");
        assert_eq!(resp.source, PlanSource::Model);
        let m = service.metrics();
        assert!(m.retries >= 1, "first forward failed, retry must show");
        assert_eq!(m.fallbacks, 0);
        assert_eq!(service.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn persistent_faults_trip_breaker_and_fallback_answers() {
        let (model, db, queries) = setup();
        let (breaker, _clock) = manual_breaker(2);
        let service = PlannerService::builder(Arc::clone(&model))
            .fallback(FallbackPlanner::new(Arc::clone(&db)))
            .config(ServiceConfig {
                workers: 1,
                retry: RetryPolicy {
                    max_retries: 0,
                    ..RetryPolicy::default()
                },
                breaker,
                ..ServiceConfig::default()
            })
            // Every forward fails, deterministically.
            .faults(FaultPlan::seeded(3, 1000))
            .start()
            .expect("start service");
        for query in &queries {
            let resp = service.plan(query.clone()).expect("fallback plan");
            assert_eq!(resp.source, PlanSource::Fallback);
            resp.join_order.validate(query).expect("legal order");
        }
        let m = service.metrics();
        assert_eq!(m.fallbacks, queries.len() as u64);
        assert_eq!(m.model_plans, 0);
        assert!(m.breaker_opens >= 1, "persistent failures must trip");
        assert_eq!(service.breaker_state(), BreakerState::Open);
        // Fallback plans are never cached.
        assert_eq!(service.cached_plans(), 0);
    }

    #[test]
    fn failing_model_without_fallback_returns_typed_errors_and_stays_up() {
        let (model, _db, queries) = setup();
        let (breaker, _clock) = manual_breaker(1);
        let service = PlannerService::builder(model)
            .config(ServiceConfig {
                workers: 1,
                retry: RetryPolicy {
                    max_retries: 0,
                    ..RetryPolicy::default()
                },
                breaker,
                ..ServiceConfig::default()
            })
            .faults(FaultPlan::seeded(4, 1000))
            .start()
            .expect("start service");
        // First request reaches the model and gets the injected error;
        // later ones are breaker-rejected with a clean Service error.
        let first = service.plan(queries[0].clone());
        assert!(matches!(first, Err(MtmlfError::Service(_))), "{first:?}");
        let second = service.plan(queries[1].clone());
        assert!(matches!(second, Err(MtmlfError::Service(_))), "{second:?}");
        let m = service.metrics();
        assert_eq!(m.errors, 2);
        assert_eq!(service.breaker_state(), BreakerState::Open);
    }

    #[test]
    fn overload_sheds_with_typed_error() {
        let (model, _db, queries) = setup();
        // One worker stalled by an injected latency spike + a queue of one:
        // the burst below must shed deterministically.
        let service = Arc::new(
            PlannerService::builder(model)
                .config(ServiceConfig {
                    workers: 1,
                    queue_capacity: 1,
                    batching: false,
                    ..ServiceConfig::default()
                })
                .faults(FaultPlan::new().delay_on(0, Duration::from_millis(300)))
                .start()
                .expect("start service"),
        );
        // Occupy the worker…
        let occupant = {
            let service = Arc::clone(&service);
            let query = queries[0].clone();
            std::thread::spawn(move || service.plan(query))
        };
        // …give it time to dequeue and hit the delay…
        std::thread::sleep(Duration::from_millis(100));
        // …then overfill the queue. Capacity 1 means at most one of these
        // is admitted; the rest must shed.
        let mut sheds = 0;
        let mut admitted = Vec::new();
        for query in queries.iter().skip(1).cycle().take(8) {
            match service.plan(PlanRequest::new(query.clone()).with_deadline(Duration::ZERO)) {
                Err(MtmlfError::Overloaded) => sheds += 1,
                other => admitted.push(other),
            }
        }
        assert!(sheds >= 1, "queue of 1 must shed an 8-request burst");
        let m = service.metrics();
        assert_eq!(m.sheds, sheds);
        assert!(m.errors >= sheds);
        assert!(occupant.join().expect("join occupant").is_ok());
    }

    #[test]
    fn worker_panic_yields_clean_error_and_service_survives() {
        let (model, _db, queries) = setup();
        // Two workers; the first forward panics its worker. The victim
        // client gets a clean Service error (dropped reply), and later
        // requests are served by the surviving worker.
        let service = PlannerService::builder(Arc::clone(&model))
            .config(ServiceConfig {
                workers: 2,
                batching: false,
                ..ServiceConfig::default()
            })
            .faults(FaultPlan::new().panic_on(0))
            .start()
            .expect("start service");
        let victim = service.plan(queries[0].clone());
        assert!(
            matches!(victim, Err(MtmlfError::Service(_))),
            "panicked worker must surface as a clean error, got {victim:?}"
        );
        for query in &queries[1..] {
            let resp = service.plan(query.clone()).expect("survivor serves");
            assert_eq!(resp.source, PlanSource::Model);
        }
        // Shutdown joins the panicked worker without propagating.
        service.shutdown();
    }

    #[test]
    fn traced_requests_decompose_into_monotonic_stage_spans() {
        let (model, _db, queries) = setup();
        let service = PlannerService::builder(model)
            .config(ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            })
            .tracing(TraceConfig {
                ring_capacity: 64,
                ..TraceConfig::default()
            })
            .start()
            .expect("start service");
        let cold = service.plan(queries[0].clone()).expect("cold");
        assert_eq!(cold.source, PlanSource::Model);
        let warm = service.plan(queries[0].clone()).expect("warm");
        assert_eq!(warm.source, PlanSource::Cache);
        service.shutdown();

        let traces = service.traces();
        assert_eq!(traces.len(), 2, "one complete trace per request");
        let m = service.metrics();
        assert!(m.tracing_enabled);
        assert_eq!(m.traces, 2);

        let model_trace = &traces[0];
        assert_eq!(model_trace.outcome, TraceOutcome::Served(PlanSource::Model));
        assert!(model_trace.is_monotonic(), "{model_trace:?}");
        assert_eq!(model_trace.batch_size, 1);
        for stage in [
            Stage::Fingerprint,
            Stage::CacheLookup,
            Stage::Queue,
            Stage::Featurize,
            Stage::Encode,
            Stage::Forward,
            Stage::Beam,
        ] {
            assert!(
                model_trace.spans.iter().any(|s| s.stage == stage),
                "model-path trace missing {stage:?}: {model_trace:?}"
            );
        }
        assert_eq!(model_trace.stage_total(Stage::Fallback), Duration::ZERO);

        let cache_trace = &traces[1];
        assert_eq!(cache_trace.outcome, TraceOutcome::Served(PlanSource::Cache));
        assert!(cache_trace.is_monotonic());
        assert_eq!(cache_trace.batch_size, 0, "cache hits never reach a batch");
        assert!(cache_trace.spans.iter().all(|s| s.stage != Stage::Queue));

        // Per-stage histograms: one sample per stage per traced request.
        assert_eq!(m.stage(Stage::CacheLookup).count, 2);
        assert_eq!(m.stage(Stage::Forward).count, 1);
        assert_eq!(m.stage(Stage::Beam).count, 1);
        assert!(m.stage(Stage::Encode).mean() > Duration::ZERO);
        assert_eq!(m.stage(Stage::Fallback).count, 0);

        // And the exposition carries them.
        let text = service.render_prometheus();
        assert!(text.contains("mtmlf_tracing_enabled 1"));
        assert!(text.contains("mtmlf_traces_total 2"));
        assert!(text.contains("mtmlf_stage_latency_seconds_count{stage=\"forward\"} 1"));
    }

    #[test]
    fn untraced_service_keeps_no_traces_and_empty_stage_histograms() {
        let (model, _db, queries) = setup();
        let service = PlannerService::builder(model).start().expect("start");
        service.plan(queries[0].clone()).expect("plan");
        assert!(service.traces().is_empty());
        let m = service.metrics();
        assert!(!m.tracing_enabled);
        assert_eq!(m.traces, 0);
        assert!(m.stage_latency.iter().all(|h| h.count == 0));
        let text = service.render_prometheus();
        assert!(text.contains("mtmlf_tracing_enabled 0"));
    }

    #[test]
    fn queue_depth_gauge_returns_to_zero_when_quiescent() {
        let (model, _db, queries) = setup();
        let service = PlannerService::builder(model)
            .tracing(TraceConfig::default())
            .start()
            .expect("start");
        for query in &queries {
            service.plan(query.clone()).expect("plan");
        }
        service.shutdown();
        let m = service.metrics();
        assert_eq!(m.queue_depth, 0, "all admitted jobs were dequeued");
        assert_eq!(m.cached_plans, queries.len() as u64);
        assert_eq!(m.breaker_state, BreakerState::Closed);
    }
}

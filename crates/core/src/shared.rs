//! The shared representation module (S): `Trans_Share`.

use crate::config::MtmlfConfig;
use crate::serialize::raw_width;
use mtmlf_nn::layers::{Linear, Module};
use mtmlf_nn::{Matrix, TransformerEncoder, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `Trans_Share`: projects raw node features to model width and runs the
/// shared transformer encoder. The output `(S_1, S_2, …)` has one row per
/// plan node, in one-to-one correspondence with the input `E(P)` (paper
/// Section 3.2 S). Trained jointly on all tasks; shared across databases
/// under meta-learning.
#[derive(Clone)]
pub struct SharedModule {
    input_proj: Linear,
    trans_share: TransformerEncoder,
}

impl SharedModule {
    /// Builds the module for a configuration.
    pub fn new(config: &MtmlfConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5AA5);
        Self {
            input_proj: Linear::new(raw_width(config), config.d_model, &mut rng),
            trans_share: TransformerEncoder::new(
                config.d_model,
                config.heads,
                config.share_blocks,
                &mut rng,
            ),
        }
    }

    /// Computes the shared representation `(nodes, d_model)` from raw node
    /// features.
    pub fn forward(&self, features: &Matrix) -> Var {
        let x = Var::constant(features.clone());
        self.trans_share.forward(&self.input_proj.forward(&x))
    }

    /// Batched forward over several plans' raw features: packs all node
    /// rows into one matrix so the projection and every transformer linear
    /// run as a single matmul, with a block-diagonal attention mask keeping
    /// each plan's nodes to themselves. Output rows are identical to
    /// per-plan [`SharedModule::forward`] calls.
    pub fn forward_batch(&self, features: &[&Matrix]) -> Vec<Var> {
        match features {
            [] => Vec::new(),
            [single] => vec![self.forward(single)],
            _ => {
                let lens: Vec<usize> = features.iter().map(|m| m.rows()).collect();
                let packed = Var::constant(Matrix::concat_rows(features));
                let projected = self.input_proj.forward(&packed);
                self.trans_share
                    .forward_packed(&projected, &lens)
                    .split_rows(&lens)
            }
        }
    }
}

impl Module for SharedModule {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.input_proj.parameters();
        p.extend(self.trans_share.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let cfg = MtmlfConfig::tiny();
        let module = SharedModule::new(&cfg);
        let features = Matrix::zeros(7, raw_width(&cfg));
        assert_eq!(module.forward(&features).shape(), (7, cfg.d_model));
    }

    #[test]
    fn forward_batch_matches_individual() {
        let cfg = MtmlfConfig::tiny();
        let module = SharedModule::new(&cfg);
        let a = Matrix::full(3, raw_width(&cfg), 0.2);
        let b = Matrix::full(5, raw_width(&cfg), -0.1);
        let batched = module.forward_batch(&[&a, &b]);
        assert_eq!(batched[0].to_matrix(), module.forward(&a).to_matrix());
        assert_eq!(batched[1].to_matrix(), module.forward(&b).to_matrix());
    }

    #[test]
    fn clone_shares_parameters() {
        let cfg = MtmlfConfig::tiny();
        let a = SharedModule::new(&cfg);
        let b = a.clone();
        let features = Matrix::full(2, raw_width(&cfg), 0.1);
        let loss = a.forward(&features).sum();
        loss.backward();
        // The clone's parameters see the same gradients (same nodes).
        let ga: f32 = a.parameters().iter().map(|p| p.grad().norm()).sum();
        let gb: f32 = b.parameters().iter().map(|p| p.grad().norm()).sum();
        assert!(ga > 0.0);
        assert_eq!(ga, gb);
    }
}

//! Joint multi-task training (paper Section 3.2 L).
//!
//! Every labelled query becomes a [`PreparedSample`]: the serialized
//! `E(P)` (computed once — the featurization module is frozen, matching
//! the paper's "the gradient ... will be backpropagated to update the
//! parameters of the (S) and (T) modules only"), per-node cardinality and
//! cost labels, and the optimal join order mapped to query-local slots.
//!
//! [`sample_loss`] assembles `L_QO = w_card·L_card + w_cost·L_cost +
//! w_jo·L_jo` (Eq. 1); [`run_training`] is the epoch loop shared by
//! single-DB training, the MLA meta-learner (which shuffles prepared
//! samples *across databases*), and fine-tuning.

use crate::config::MtmlfConfig;
use crate::error::MtmlfError;
use crate::featurize::FeaturizationModule;
use crate::joeu::sequence_level_loss;
use crate::serialize::serialize_plan;
use crate::shared::SharedModule;
use crate::tasks::TaskHeads;
use crate::transjo::TransJo;
use crate::Result;
use mtmlf_datagen::LabeledQuery;
use mtmlf_nn::layers::Module;
use mtmlf_nn::loss::{cross_entropy_rows, kl_div_rows, mse};
use mtmlf_nn::{Adam, Matrix, Var};
use mtmlf_query::JoinGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A model-ready training sample.
pub struct PreparedSample {
    /// Serialized node features `E(P)`.
    pub features: Matrix,
    /// Post-order index of each query table's scan node, slot order.
    pub scan_node_of_slot: Vec<usize>,
    /// Query-local join graph (vertex order == slot order).
    pub graph: JoinGraph,
    /// Per-node true cardinalities, post-order.
    pub node_cards: Vec<u64>,
    /// Per-node true cumulative costs, post-order.
    pub node_costs: Vec<f64>,
    /// Optimal join order in slot indices, when labelled.
    pub target_slots: Option<Vec<usize>>,
    /// Bushy mode: per-slot target distributions over the codec positions
    /// (normalized Section 4.1 decoding embeddings), when labelled and
    /// enabled.
    pub target_bushy: Option<Matrix>,
    /// Access-path advisor labels: `(post-order scan-node index, 1.0 if an
    /// index scan is truly cheaper than a sequential scan)`. Derived from
    /// true cardinalities and the shared cost coefficients.
    pub advisor_targets: Vec<(usize, f32)>,
}

/// Which join order supervises the `Trans_JO` task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoTarget {
    /// The exact-optimal order label (the expensive ECQO-style label).
    #[default]
    Optimal,
    /// The classical optimizer's initial-plan order — cheap, sub-optimal
    /// supervision for the first phase of two-phase training (the paper's
    /// Section 3.2 "research opportunities").
    InitialPlan,
}

/// Converts one labelled query using a featurization module.
pub fn prepare_sample(
    module: &FeaturizationModule,
    sample: &LabeledQuery,
    config: &MtmlfConfig,
) -> Result<PreparedSample> {
    prepare_sample_with(module, sample, config, JoTarget::Optimal)
}

/// [`prepare_sample`] with an explicit join-order supervision source.
pub fn prepare_sample_with(
    module: &FeaturizationModule,
    sample: &LabeledQuery,
    config: &MtmlfConfig,
    target: JoTarget,
) -> Result<PreparedSample> {
    let serialized = serialize_plan(module, &sample.query, &sample.plan, config)?;
    let order_label = match target {
        JoTarget::Optimal => sample.optimal_order.clone(),
        JoTarget::InitialPlan => Some(mtmlf_query::JoinOrder::LeftDeep(sample.plan.tables())),
    };
    let target_slots = match &order_label {
        Some(order) => Some(
            order
                .tables()
                .iter()
                .map(|t| {
                    serialized.table_slots.binary_search(t).map_err(|_| {
                        MtmlfError::Query(mtmlf_query::QueryError::OrderTableNotInQuery(*t))
                    })
                })
                .collect::<Result<Vec<usize>>>()?,
        ),
        None => None,
    };
    let target_bushy = if config.bushy {
        match &sample.optimal_bushy {
            Some(order) => Some(bushy_targets(order, &serialized.table_slots, config)?),
            None => None,
        }
    } else {
        None
    };
    // Access-path advisor labels from ground truth: for each scan node,
    // whether an index scan would have been cheaper than the sequential
    // scan given the filters' true cardinality.
    let coefficients = mtmlf_exec::cost::OperatorCost::default();
    let mut advisor_targets = Vec::new();
    for (i, node) in sample.plan.post_order().iter().enumerate() {
        if let mtmlf_query::PlanNode::Scan { table, .. } = node {
            let table_rows = module.table_rows(*table) as f64;
            let out_rows = sample.node_cards[i] as f64;
            let seq = mtmlf_exec::cost::CostTracker::scan_cost(
                &coefficients,
                mtmlf_query::ScanOp::SeqScan,
                table_rows,
                out_rows,
            );
            let index = mtmlf_exec::cost::CostTracker::scan_cost(
                &coefficients,
                mtmlf_query::ScanOp::IndexScan,
                table_rows,
                out_rows,
            );
            advisor_targets.push((i, if index < seq { 1.0 } else { 0.0 }));
        }
    }
    Ok(PreparedSample {
        features: serialized.features,
        scan_node_of_slot: serialized.scan_node_of_slot,
        graph: serialized.graph,
        node_cards: sample.node_cards.clone(),
        node_costs: sample.node_costs.clone(),
        target_slots,
        target_bushy,
        advisor_targets,
    })
}

/// Per-slot target distributions from a bushy optimal order: the Section
/// 4.1 decoding embeddings, re-indexed to query slots and normalized to
/// sum 1 per row (the KL-divergence targets of Section 4.1).
fn bushy_targets(
    order: &mtmlf_query::JoinOrder,
    table_slots: &[mtmlf_storage::TableId],
    config: &MtmlfConfig,
) -> Result<Matrix> {
    let tree = order.tree()?;
    let positions = crate::config::codec_positions(config);
    let embeddings = mtmlf_query::treecodec::encode(&tree, positions)?;
    let mut target = Matrix::zeros(table_slots.len(), positions);
    for e in &embeddings {
        let slot = table_slots.binary_search(&e.table).map_err(|_| {
            MtmlfError::Query(mtmlf_query::QueryError::OrderTableNotInQuery(e.table))
        })?;
        let mass: f32 = e.positions.iter().sum();
        for (c, &v) in e.positions.iter().enumerate() {
            target.set(slot, c, v / mass.max(1.0));
        }
    }
    Ok(target)
}

/// Gathers the table representations (slot order) from the shared output.
pub fn table_representations(shared_out: &Var, scan_node_of_slot: &[usize]) -> Var {
    let rows: Vec<Var> = scan_node_of_slot
        .iter()
        .map(|&i| shared_out.slice_rows(i, i + 1))
        .collect();
    Var::concat_rows(&rows)
}

/// The multi-task loss of one sample.
pub fn sample_loss(
    shared: &SharedModule,
    heads: &TaskHeads,
    jo: &TransJo,
    sample: &PreparedSample,
    config: &MtmlfConfig,
) -> Var {
    let s = shared.forward(&sample.features);
    let nodes = sample.node_cards.len();
    let w = &config.weights;
    let mut loss = Var::constant(Matrix::scalar(0.0));

    if w.card > 0.0 {
        let pred = heads.card(&s);
        let target = Var::constant(Matrix::from_vec(
            nodes,
            1,
            sample
                .node_cards
                .iter()
                .map(|&c| (c.max(1) as f32).ln())
                .collect(),
        ));
        loss = loss.add(&mse(&pred, &target).scale(w.card));
    }
    if w.cost > 0.0 {
        let pred = heads.cost(&s);
        let target = Var::constant(Matrix::from_vec(
            nodes,
            1,
            sample
                .node_costs
                .iter()
                .map(|&c| (c.max(1.0) as f32).ln())
                .collect(),
        ));
        loss = loss.add(&mse(&pred, &target).scale(w.cost));
    }
    if w.advisor > 0.0 && !sample.advisor_targets.is_empty() {
        // Binary cross-entropy on the scan nodes' index-vs-seq labels.
        let logits = heads.advisor(&s);
        let rows: Vec<Var> = sample
            .advisor_targets
            .iter()
            .map(|&(i, _)| logits.slice_rows(i, i + 1))
            .collect();
        let picked = Var::concat_rows(&rows);
        let p = picked.sigmoid();
        let targets = Var::constant(Matrix::from_vec(
            sample.advisor_targets.len(),
            1,
            sample.advisor_targets.iter().map(|&(_, t)| t).collect(),
        ));
        let one = Var::constant(Matrix::full(sample.advisor_targets.len(), 1, 1.0));
        let bce = targets
            .hadamard(&p.ln_eps(1e-6))
            .add(&one.sub(&targets).hadamard(&one.sub(&p).ln_eps(1e-6)))
            .mean()
            .scale(-1.0);
        loss = loss.add(&bce.scale(w.advisor));
    }
    if w.jo > 0.0 && config.bushy {
        if let Some(target) = &sample.target_bushy {
            let table_reps = table_representations(&s, &sample.scan_node_of_slot);
            let logits = jo.position_logits(&s, &table_reps);
            loss = loss.add(&kl_div_rows(&logits, target).scale(w.jo));
        }
    }
    if w.jo > 0.0 {
        if let Some(target) = &sample.target_slots {
            let table_reps = table_representations(&s, &sample.scan_node_of_slot);
            // Token-level CE is always on; the sequence-level criterion
            // (Eq. 3) is added on top when enabled — "to further enhance
            // the effectiveness of the model training" (Section 3.2 L).
            let logits = jo.teacher_forced_logits(&s, &table_reps, target);
            let mut jo_loss = cross_entropy_rows(&logits, target);
            if config.sequence_loss {
                let seq = sequence_level_loss(
                    jo,
                    &s,
                    &table_reps,
                    &sample.graph,
                    target,
                    &config.beam,
                    config.lambda_illegal,
                );
                jo_loss = jo_loss.add(&seq);
            }
            loss = loss.add(&jo_loss.scale(w.jo));
        }
    }
    loss
}

/// Runs `epochs` of shuffled per-sample Adam training over the (S) and (T)
/// parameters. Returns the mean loss of each epoch.
pub fn run_training(
    shared: &SharedModule,
    heads: &TaskHeads,
    jo: &TransJo,
    samples: &[PreparedSample],
    config: &MtmlfConfig,
    epochs: usize,
    lr: f32,
) -> Vec<f32> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut params = shared.parameters();
    params.extend(heads.parameters());
    params.extend(jo.parameters());
    let mut opt = Adam::new(params, lr);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x12A1);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut history = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        // Paper Algorithm 1 line 7: shuffle the training data — across
        // databases when samples come from several.
        order.shuffle(&mut rng);
        let mut total = 0.0;
        for &i in &order {
            let loss = sample_loss(shared, heads, jo, &samples[i], config);
            opt.zero_grad();
            loss.backward();
            opt.step();
            total += loss.item();
        }
        history.push(total / samples.len() as f32);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_datagen::{
        generate_queries, imdb::ImdbScale, imdb_lite, label_workload, LabelConfig, WorkloadConfig,
    };
    use mtmlf_storage::Database;

    fn setup(
        count: usize,
    ) -> (
        Database,
        Vec<LabeledQuery>,
        FeaturizationModule,
        MtmlfConfig,
    ) {
        let mut db = imdb_lite(1, ImdbScale { scale: 0.02 }).unwrap();
        db.analyze_all(8, 4);
        let cfg = MtmlfConfig::tiny();
        let module = FeaturizationModule::untrained(&db, &cfg).unwrap();
        let queries = generate_queries(
            &db,
            &WorkloadConfig {
                count,
                max_tables: 4,
                ..WorkloadConfig::default()
            },
            5,
        );
        let labeled = label_workload(&db, &queries, &LabelConfig::default()).unwrap();
        (db, labeled, module, cfg)
    }

    #[test]
    fn prepare_aligns_labels() {
        let (_, labeled, module, cfg) = setup(5);
        for l in &labeled {
            let p = prepare_sample(&module, l, &cfg).unwrap();
            assert_eq!(p.features.rows(), l.plan.node_count());
            assert_eq!(p.node_cards.len(), l.plan.node_count());
            let target = p.target_slots.as_ref().unwrap();
            assert_eq!(target.len(), l.query.table_count());
            // Targets form a permutation of slots.
            let mut sorted = target.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..target.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let (_, labeled, module, cfg) = setup(3);
        let shared = SharedModule::new(&cfg);
        let heads = TaskHeads::new(&cfg);
        let jo = TransJo::new(&cfg);
        for l in &labeled {
            let p = prepare_sample(&module, l, &cfg).unwrap();
            let loss = sample_loss(&shared, &heads, &jo, &p, &cfg);
            assert!(loss.item().is_finite());
            assert!(loss.item() > 0.0);
        }
    }

    #[test]
    fn training_reduces_loss() {
        let (_, labeled, module, cfg) = setup(8);
        let shared = SharedModule::new(&cfg);
        let heads = TaskHeads::new(&cfg);
        let jo = TransJo::new(&cfg);
        let samples: Vec<PreparedSample> = labeled
            .iter()
            .map(|l| prepare_sample(&module, l, &cfg).unwrap())
            .collect();
        let history = run_training(&shared, &heads, &jo, &samples, &cfg, 8, 2e-3);
        assert_eq!(history.len(), 8);
        assert!(
            history.last().unwrap() < &(history[0] * 0.7),
            "loss should drop: {history:?}"
        );
    }

    #[test]
    fn ablation_weights_remove_terms() {
        let (_, labeled, module, cfg) = setup(3);
        let shared = SharedModule::new(&cfg);
        let heads = TaskHeads::new(&cfg);
        let jo = TransJo::new(&cfg);
        let p = prepare_sample(&module, &labeled[0], &cfg).unwrap();
        let full = sample_loss(&shared, &heads, &jo, &p, &cfg).item();
        let mut card_cfg = cfg.clone();
        card_cfg.weights = crate::config::LossWeights::card_only();
        let card_only = sample_loss(&shared, &heads, &jo, &p, &card_cfg).item();
        assert!(card_only < full, "dropping terms lowers the total");
        assert!(card_only > 0.0);
    }

    #[test]
    fn sequence_loss_variant_runs() {
        let (_, labeled, module, mut cfg) = setup(3);
        cfg.sequence_loss = true;
        let shared = SharedModule::new(&cfg);
        let heads = TaskHeads::new(&cfg);
        let jo = TransJo::new(&cfg);
        let p = prepare_sample(&module, &labeled[0], &cfg).unwrap();
        let loss = sample_loss(&shared, &heads, &jo, &p, &cfg);
        assert!(loss.item().is_finite());
        loss.backward(); // gradients flow through the sequence loss
        let g: f32 = jo.parameters().iter().map(|v| v.grad().norm()).sum();
        assert!(g > 0.0);
    }
}

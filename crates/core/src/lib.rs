//! # mtmlf — A Unified Transferable Model for ML-Enhanced DBMS
//!
//! Rust reproduction of the CIDR 2022 paper's MTMLF framework and its
//! query-optimization case study **MTMLF-QO**.
//!
//! The model follows the paper's Figure 2 architecture:
//!
//! - **(F) Featurization & encoding** ([`featurize`], [`encoder`]) — the
//!   *database-specific* module: per-table transformer encoders `Enc_i`
//!   trained on single-table cardinality estimation summarize each table's
//!   distribution under a filter; a serializer ([`serialize`]) flattens the
//!   tree-structured plan into a node-embedding sequence `E(P)` with tree
//!   positional encodings.
//! - **(S) Shared representation** ([`shared`]) — `Trans_Share`, a
//!   transformer encoder producing one representation `S_i` per plan node,
//!   jointly trained on all tasks (the *task-shared* knowledge).
//! - **(T) Task-specific heads** ([`tasks`], [`transjo`]) — `M_CardEst`
//!   and `M_CostEst` MLPs read per-node cardinality/cost; `Trans_JO`, a
//!   transformer decoder with a pointer output over the query's table
//!   representations, generates the join order as a sequence (seq2seq with
//!   teacher forcing).
//! - **(L) Loss & training** ([`train`]) — the weighted multi-task loss
//!   `L_QO = w_card·L_card + w_cost·L_cost + w_jo·L_jo` (Eq. 1); join-order
//!   training supports both the token-level cross-entropy and the
//!   sequence-level JOEU loss of Section 5 ([`joeu()`]).
//! - **Beam search** ([`beam`]) — the legality-pruned beam decoding of
//!   Section 4.3: the query's join-graph adjacency masks candidates at
//!   every step, so emitted orders are guaranteed executable.
//! - **Meta-learning** ([`meta`]) — Algorithm 1 (MLA): per-DB (F) modules,
//!   cross-DB shuffled training of (S)+(T), and transfer to a new DB by
//!   training only its featurizer (plus optional fine-tuning).
//! - **Serving** ([`serve`], [`cache`], [`batch`]) — a thread-safe
//!   [`PlannerService`] over a trained model: a sharded plan cache keyed by
//!   canonical query fingerprints, cross-query batched inference, and a
//!   worker pool with latency/throughput metrics. Responses are bitwise
//!   identical to the single-threaded facade.
//! - **Fault tolerance** ([`resilience`]) — per-request deadlines, a
//!   circuit breaker over the model path, bounded deterministic retry,
//!   admission control, and a classical-optimizer [`FallbackPlanner`], so
//!   a model failure never becomes a query failure (DESIGN.md §9's
//!   degradation ladder).
//! - **Clustered serving** ([`cluster`], [`client`]) — N replica services
//!   behind a consistent-hash router ([`ClusterService`]): canonical query
//!   fingerprints shard onto a virtual-node [`HashRing`], plans gossip to
//!   peer caches with epoch-tombstoned invalidation, and per-replica
//!   circuit breakers fail requests over to ring survivors. Single-node and
//!   cluster modes share the [`PlanClient`] trait, so callers are
//!   mode-agnostic (DESIGN.md §12).
//! - **Observability** ([`trace`], [`metrics`]) — plan-lifecycle tracing
//!   (per-[`trace::Stage`] latency histograms plus a ring buffer of
//!   complete request traces, opt-in via
//!   `PlannerService::builder(..).tracing(..)`) and Prometheus text
//!   exposition of every service counter, histogram, and gauge
//!   ([`metrics::render_prometheus`]); DESIGN.md §10.
//! - **Model lifecycle** ([`lifecycle`]) — a versioned, checksummed
//!   [`ModelRegistry`] over the persist envelope, q-error/JOEU drift
//!   detection on a sliding window of traced production requests, shadow
//!   evaluation of candidate models with a regression gate, and atomic hot
//!   swap into a live service with canary fraction and one-level rollback
//!   (DESIGN.md §14).
//! - **Durability** ([`durable`]) — a write-behind persistent plan cache:
//!   an append-only checksummed record log with snapshot compaction
//!   behind [`PlanStore`], opened via
//!   `PlannerService::builder(..).durable(path)` so a rebooted service
//!   warm-starts its cache and serves the first pass of a repeated
//!   workload bitwise-identically with zero model forwards. Tombstone and
//!   epoch records flush eagerly, so invalidations and hot-swap clears
//!   survive any crash; recovery replays the longest valid log prefix and
//!   truncates torn tails (DESIGN.md §16).
//!
//! One deliberate implementation choice: the paper formulates `P̂_t` as a
//! fixed-length multinoulli over the database's `n` tables. This
//! reproduction computes the same distribution with a *pointer* layer
//! (decoder state dotted with each candidate table's shared
//! representation), which is size-agnostic across databases — required for
//! the cross-DB meta-learning experiment, where table counts differ — and
//! reduces to the paper's formulation on a single DB.

#![forbid(unsafe_code)]

pub mod batch;
pub mod beam;
pub mod cache;
pub mod client;
pub mod cluster;
pub mod config;
pub mod durable;
pub mod encoder;
pub mod error;
pub mod featurize;
pub mod joeu;
pub mod lifecycle;
pub mod meta;
pub mod metrics;
pub mod model;
pub mod persist;
pub mod resilience;
pub mod serialize;
pub mod serve;
pub mod shared;
pub mod tasks;
pub mod trace;
pub mod train;
pub mod transjo;

pub use batch::{plan_batch, plan_batch_traced, PlannedQuery};
pub use beam::{BeamConfig, Legality, TreeShape};
pub use cache::ShardedLruCache;
pub use client::{PlanClient, PlanPayload, PlanRequest, PlanResponse, PlanSource};
pub use cluster::{ClusterBuilder, ClusterConfig, ClusterService, HashRing, ReplicaId};
pub use config::{LossWeights, MtmlfConfig, MtmlfConfigBuilder};
pub use durable::{DurableConfig, DurableLog, LogRecord, PlanStore, RecoveryReport};
pub use error::MtmlfError;
/// The crate's unified error type, under its conventional short name.
pub use error::MtmlfError as Error;
pub use featurize::FeaturizationModule;
pub use joeu::joeu;
pub use lifecycle::{
    shadow_evaluate, CanaryPolicy, CanaryVerdict, DriftConfig, DriftDetector, DriftSample,
    DriftScore, ModelRegistry, ModelSlot, ModelVersion, ShadowConfig, ShadowReport, ShadowVerdict,
    SwapOutcome,
};
pub use meta::MetaLearner;
pub use metrics::{render_prometheus, MetricsSnapshot};
pub use model::MtmlfQo;
pub use resilience::{
    Admission, BreakerConfig, BreakerState, CircuitBreaker, Clock, FallbackPlanner, ManualClock,
    RetryPolicy, SystemClock,
};
pub use serve::{LatencyHistogram, PlannerService, ServiceBuilder, ServiceConfig};
pub use trace::{
    RequestTrace, Stage, StageRecorder, StageSpan, TraceConfig, TraceOutcome, Tracer,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MtmlfError>;

/// One-line imports for the common workflow: build a model, plan queries,
/// serve them concurrently.
///
/// ```no_run
/// use mtmlf::prelude::*;
/// ```
pub mod prelude {
    pub use crate::beam::{BeamConfig, Legality, TreeShape};
    pub use crate::config::{MtmlfConfig, MtmlfConfigBuilder};
    pub use crate::durable::{DurableConfig, PlanStore};
    pub use crate::error::MtmlfError;
    pub use crate::lifecycle::{
        shadow_evaluate, CanaryPolicy, CanaryVerdict, DriftConfig, DriftDetector, ModelRegistry,
        ModelVersion, ShadowConfig, ShadowReport, ShadowVerdict, SwapOutcome,
    };
    pub use crate::metrics::{render_prometheus, MetricsSnapshot};
    pub use crate::model::MtmlfQo;
    pub use crate::client::{PlanClient, PlanPayload, PlanRequest, PlanResponse, PlanSource};
    pub use crate::cluster::{ClusterBuilder, ClusterConfig, ClusterService, ReplicaId};
    pub use crate::resilience::{BreakerConfig, BreakerState, FallbackPlanner, RetryPolicy};
    pub use crate::serve::{PlannerService, ServiceBuilder, ServiceConfig};
    pub use crate::trace::{RequestTrace, Stage, StageSpan, TraceConfig, TraceOutcome};
    pub use crate::Result;
    pub use mtmlf_query::{JoinOrder, Query};
}

//! Fault-tolerance primitives for the serving path.
//!
//! The degradation ladder (DESIGN.md §9) is: plan cache → batched model →
//! bounded retry → classical fallback → load shedding. This module holds
//! the pieces the ladder is built from:
//!
//! * [`Clock`] — an injectable monotonic time source. Planning code is
//!   forbidden from reading the wall clock directly (lint rule L2); the
//!   breaker measures cool-downs through this trait so tests and the
//!   interleaving model can drive time deterministically.
//! * [`CircuitBreaker`] — Closed → Open → HalfOpen failure isolation for
//!   the model path, with a consecutive-failure threshold and a cool-down
//!   before a single half-open probe is admitted.
//! * [`RetryPolicy`] — bounded retry with deterministic exponential
//!   backoff for transient errors.
//! * [`FallbackPlanner`] — the classical `optd` PostgreSQL-style DP
//!   optimizer, answering when the model path errors, times out, or the
//!   breaker is open. A model failure must never become a query failure.
//! * [`FaultPlan`] (tests / `fault-injection` feature only) — a seeded,
//!   deterministic fault-injection harness threaded through the worker
//!   loop: error-on-nth-forward, latency spikes, and worker-panic
//!   (poisoned-lock) simulation, driving the chaos suite in
//!   `crates/core/tests/chaos.rs`.

use crate::error::MtmlfError;
use crate::Result;
use mtmlf_optd::PgOptimizer;
use mtmlf_query::{JoinOrder, Query};
use mtmlf_storage::Database;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A monotonic time source: elapsed time since an arbitrary fixed epoch.
///
/// The circuit breaker measures cool-downs through this trait instead of
/// calling `Instant::now` so that (a) lint rule L2's determinism holds for
/// planning code and (b) tests can step time manually ([`ManualClock`]).
pub trait Clock: fmt::Debug + Send + Sync {
    /// Time elapsed since the clock's epoch. Must be monotonic.
    fn now(&self) -> Duration;
}

/// The production [`Clock`]: monotonic time from `std::time::Instant`,
/// anchored at construction.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> Self {
        // The one sanctioned wall-clock read on the planning path: every
        // other component receives time through the Clock trait.
        let epoch = Instant::now(); // lint: allow(clock)
        Self { epoch }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A hand-cranked [`Clock`] for deterministic tests: time only moves when
/// [`ManualClock::advance`] is called.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `by`.
    pub fn advance(&self, by: Duration) {
        let nanos = u64::try_from(by.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

/// Circuit-breaker tuning. Part of `ServiceConfig`.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive model-path failures that trip the breaker open.
    /// `0` disables the breaker entirely (every request is admitted).
    pub failure_threshold: u32,
    /// How long an open breaker rejects before admitting one half-open
    /// probe. Also bounds how long a probe may stay unresolved before
    /// another request may take it over (worker-death recovery).
    pub cooldown: Duration,
    /// The time source cool-downs are measured with.
    pub clock: Arc<dyn Clock>,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 5,
            cooldown: Duration::from_millis(250),
            clock: Arc::new(SystemClock::new()),
        }
    }
}

/// The breaker's three states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all requests go to the model path.
    Closed,
    /// Tripped: model path is skipped until the cool-down elapses.
    Open,
    /// Probing: one request is testing whether the model path recovered.
    HalfOpen,
}

/// What [`CircuitBreaker::try_acquire`] decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: run the model path normally.
    Admitted,
    /// Breaker half-open and this request is the probe: run the model path
    /// and report the outcome — it decides whether the breaker closes.
    Probe,
    /// Breaker open (or another probe is in flight): skip the model path
    /// and degrade straight to the fallback.
    Rejected,
}

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Duration,
    probe_in_flight: bool,
    probe_started: Duration,
}

/// A Closed → Open → HalfOpen circuit breaker guarding the model path.
///
/// Every admitted or probing request must report its outcome with
/// [`CircuitBreaker::on_success`] / [`CircuitBreaker::on_failure`]. A probe
/// whose holder dies unreported is taken over by a later request once the
/// cool-down has elapsed again, so a crashed worker cannot wedge the
/// breaker half-open forever. The `breaker-*` models in `mtmlf-lint`
/// explore this protocol's interleavings exhaustively for small schedules.
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
    opened_total: AtomicU64,
}

impl fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("state", &self.state())
            .field("config", &self.config)
            .finish()
    }
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: Duration::ZERO,
                probe_in_flight: false,
                probe_started: Duration::ZERO,
            }),
            opened_total: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Decides whether one request may use the model path right now.
    pub fn try_acquire(&self) -> Admission {
        if self.config.failure_threshold == 0 {
            return Admission::Admitted;
        }
        let now = self.config.clock.now();
        let mut g = self.lock();
        match g.state {
            BreakerState::Closed => Admission::Admitted,
            BreakerState::Open => {
                if now.saturating_sub(g.opened_at) >= self.config.cooldown {
                    g.state = BreakerState::HalfOpen;
                    g.probe_in_flight = true;
                    g.probe_started = now;
                    Admission::Probe
                } else {
                    Admission::Rejected
                }
            }
            BreakerState::HalfOpen => {
                if g.probe_in_flight
                    && now.saturating_sub(g.probe_started) < self.config.cooldown
                {
                    Admission::Rejected
                } else {
                    // The previous probe never reported (its worker died):
                    // hand the probe to this request rather than wedging.
                    g.probe_in_flight = true;
                    g.probe_started = now;
                    Admission::Probe
                }
            }
        }
    }

    /// Reports a model-path success: closes the breaker and resets counts.
    pub fn on_success(&self) {
        if self.config.failure_threshold == 0 {
            return;
        }
        let mut g = self.lock();
        g.state = BreakerState::Closed;
        g.consecutive_failures = 0;
        g.probe_in_flight = false;
    }

    /// Reports a model-path failure. Counts toward the trip threshold when
    /// closed; re-opens immediately when it was the half-open probe.
    pub fn on_failure(&self) {
        if self.config.failure_threshold == 0 {
            return;
        }
        let now = self.config.clock.now();
        let mut g = self.lock();
        match g.state {
            BreakerState::HalfOpen => {
                g.state = BreakerState::Open;
                g.opened_at = now;
                g.probe_in_flight = false;
                self.opened_total.fetch_add(1, Ordering::Relaxed);
            }
            BreakerState::Closed => {
                g.consecutive_failures += 1;
                if g.consecutive_failures >= self.config.failure_threshold {
                    g.state = BreakerState::Open;
                    g.opened_at = now;
                    self.opened_total.fetch_add(1, Ordering::Relaxed);
                }
            }
            // A straggler that was admitted before the trip: the breaker
            // is already open, nothing more to record.
            BreakerState::Open => {}
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// How many times the breaker has transitioned to Open.
    pub fn times_opened(&self) -> u64 {
        self.opened_total.load(Ordering::Relaxed)
    }
}

/// Bounded retry with deterministic exponential backoff. Part of
/// `ServiceConfig`; applied only to [transient](is_transient) errors.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` disables retry).
    pub max_retries: u32,
    /// Backoff before retry `n` is `base_backoff * 2^n` — deterministic,
    /// no jitter, so replays and tests are exact.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 1,
            base_backoff: Duration::from_micros(100),
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff before retry number `retry` (0-based).
    pub fn backoff(&self, retry: u32) -> Duration {
        self.base_backoff.saturating_mul(1u32 << retry.min(16))
    }
}

/// Whether an error is worth retrying: infrastructure hiccups are, a
/// query the model structurally cannot plan (too many tables, missing
/// encoder, illegal graph) is not — it would fail identically every time.
pub fn is_transient(err: &MtmlfError) -> bool {
    matches!(err, MtmlfError::Service(_) | MtmlfError::Internal(_))
}

/// The classical-optimizer safety net: a PostgreSQL-style DP optimizer
/// (from `mtmlf-optd`) that answers when the learned path cannot.
///
/// Returns the same `(join order, root cardinality, cost)` shape as the
/// model path, so a degraded response is indistinguishable to callers
/// except for `PlanSource::Fallback`. Deterministic: same database and
/// query always produce the same plan.
#[derive(Clone)]
pub struct FallbackPlanner {
    db: Arc<Database>,
}

impl fmt::Debug for FallbackPlanner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FallbackPlanner").finish_non_exhaustive()
    }
}

impl FallbackPlanner {
    /// Creates a fallback planner over an analyzed database.
    pub fn new(db: Arc<Database>) -> Self {
        Self { db }
    }

    /// Plans `query` classically: `(order, est_card, est_cost)`.
    pub fn plan(&self, query: &Query) -> Result<(JoinOrder, f64, f64)> {
        let (planned, card) = PgOptimizer::new(&self.db).plan_with_estimates(query)?;
        Ok((planned.order, card, planned.estimated_cost))
    }
}

#[cfg(any(test, feature = "fault-injection"))]
mod fault {
    //! Deterministic fault injection for the worker loop. Compiled only
    //! into tests and the `fault-injection` feature; release builds carry
    //! no trace of it.

    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// One injected fault, applied to one model forward.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Fault {
        /// The forward fails with a transient `MtmlfError::Service`.
        Error,
        /// The forward stalls for this long before running (latency spike).
        Delay(Duration),
        /// The worker thread panics mid-batch — simulates a crashed worker
        /// and exercises poisoned-lock recovery end to end.
        Panic,
    }

    /// A deterministic schedule of faults, keyed by the global forward
    /// sequence number (0-based, incremented once per forward *attempt*,
    /// retries included). Optionally overlaid with seeded random errors so
    /// chaos tests can sweep many schedules reproducibly from one seed.
    #[derive(Debug, Default)]
    pub struct FaultPlan {
        scripted: HashMap<u64, Fault>,
        seeded: Option<(u64, u16)>,
        counter: AtomicU64,
    }

    /// SplitMix64: tiny, seedable, and good enough to scatter faults.
    fn splitmix64(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl FaultPlan {
        /// A plan that injects nothing (until faults are scripted onto it).
        pub fn new() -> Self {
            Self::default()
        }

        /// A plan that errors each forward independently with probability
        /// `error_permille`/1000, derived purely from `seed` and the
        /// forward sequence number. `1000` fails every forward.
        pub fn seeded(seed: u64, error_permille: u16) -> Self {
            Self {
                seeded: Some((seed, error_permille)),
                ..Self::default()
            }
        }

        /// Scripts a transient error on the `n`-th forward.
        pub fn fail_on(mut self, n: u64) -> Self {
            self.scripted.insert(n, Fault::Error);
            self
        }

        /// Scripts a latency spike on the `n`-th forward.
        pub fn delay_on(mut self, n: u64, by: Duration) -> Self {
            self.scripted.insert(n, Fault::Delay(by));
            self
        }

        /// Scripts a worker panic on the `n`-th forward.
        pub fn panic_on(mut self, n: u64) -> Self {
            self.scripted.insert(n, Fault::Panic);
            self
        }

        /// Consumes the next forward sequence number and returns the fault
        /// (if any) to apply to that forward.
        pub fn next_fault(&self) -> Option<Fault> {
            let seq = self.counter.fetch_add(1, Ordering::SeqCst);
            if let Some(f) = self.scripted.get(&seq) {
                return Some(*f);
            }
            let (seed, permille) = self.seeded?;
            if splitmix64(seed ^ seq) % 1000 < u64::from(permille) {
                Some(Fault::Error)
            } else {
                None
            }
        }

        /// Forward attempts observed so far.
        pub fn forwards(&self) -> u64 {
            self.counter.load(Ordering::SeqCst)
        }

        /// Applies the next scheduled fault at a forward site: sleeps
        /// through a latency spike, panics for a worker-crash simulation,
        /// or returns the transient error the forward should fail with.
        pub fn inject(&self) -> Result<(), crate::MtmlfError> {
            match self.next_fault() {
                Some(Fault::Error) => Err(crate::MtmlfError::Service(
                    "injected fault: model forward failed".into(),
                )),
                Some(Fault::Delay(by)) => {
                    std::thread::sleep(by);
                    Ok(())
                }
                Some(Fault::Panic) => panic!("injected fault: worker panic"),
                None => Ok(()),
            }
        }
    }
}

#[cfg(any(test, feature = "fault-injection"))]
pub use fault::{Fault, FaultPlan};

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_breaker(threshold: u32, cooldown_ms: u64) -> (CircuitBreaker, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
            clock: Arc::clone(&clock) as Arc<dyn Clock>,
        });
        (breaker, clock)
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_through_probe() {
        let (b, clock) = manual_breaker(2, 100);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.try_acquire(), Admission::Admitted);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 1);

        // Open + cool-down not elapsed: reject.
        assert_eq!(b.try_acquire(), Admission::Rejected);
        clock.advance(Duration::from_millis(99));
        assert_eq!(b.try_acquire(), Admission::Rejected);

        // Cool-down elapsed: exactly one probe, competitors rejected.
        clock.advance(Duration::from_millis(1));
        assert_eq!(b.try_acquire(), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.try_acquire(), Admission::Rejected);

        // Probe success closes; counts reset (two fresh failures re-trip).
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.try_acquire(), Admission::Admitted);
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 2);
    }

    #[test]
    fn failed_probe_reopens_and_restarts_cooldown() {
        let (b, clock) = manual_breaker(1, 50);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        clock.advance(Duration::from_millis(50));
        assert_eq!(b.try_acquire(), Admission::Probe);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 2);
        assert_eq!(b.try_acquire(), Admission::Rejected);
        clock.advance(Duration::from_millis(50));
        assert_eq!(b.try_acquire(), Admission::Probe);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn unresolved_probe_is_taken_over_after_cooldown() {
        let (b, clock) = manual_breaker(1, 50);
        b.on_failure();
        clock.advance(Duration::from_millis(50));
        assert_eq!(b.try_acquire(), Admission::Probe);
        // The probe holder dies without reporting. Within the cool-down the
        // breaker stays conservative...
        clock.advance(Duration::from_millis(49));
        assert_eq!(b.try_acquire(), Admission::Rejected);
        // ...but after it, a new request inherits the probe: no wedge.
        clock.advance(Duration::from_millis(1));
        assert_eq!(b.try_acquire(), Admission::Probe);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn zero_threshold_disables_breaker() {
        let (b, _clock) = manual_breaker(0, 50);
        for _ in 0..10 {
            b.on_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.try_acquire(), Admission::Admitted);
        assert_eq!(b.times_opened(), 0);
    }

    #[test]
    fn retry_backoff_is_deterministic_and_exponential() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(100),
        };
        assert_eq!(p.backoff(0), Duration::from_micros(100));
        assert_eq!(p.backoff(1), Duration::from_micros(200));
        assert_eq!(p.backoff(2), Duration::from_micros(400));
        // Saturates instead of overflowing for absurd retry counts.
        let huge = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff: Duration::from_secs(u64::MAX / 2),
        };
        let _ = huge.backoff(60);
    }

    #[test]
    fn transient_classification() {
        assert!(is_transient(&MtmlfError::Service("worker died".into())));
        assert!(is_transient(&MtmlfError::Internal("oops".into())));
        assert!(!is_transient(&MtmlfError::TooManyQueryTables {
            got: 9,
            max: 4
        }));
        assert!(!is_transient(&MtmlfError::NoLegalOrder));
        assert!(!is_transient(&MtmlfError::Timeout));
    }

    #[test]
    fn fault_plan_is_deterministic_by_sequence() {
        let plan = FaultPlan::new()
            .fail_on(1)
            .delay_on(2, Duration::from_millis(5))
            .panic_on(4);
        assert_eq!(plan.next_fault(), None);
        assert_eq!(plan.next_fault(), Some(Fault::Error));
        assert_eq!(plan.next_fault(), Some(Fault::Delay(Duration::from_millis(5))));
        assert_eq!(plan.next_fault(), None);
        assert_eq!(plan.next_fault(), Some(Fault::Panic));
        assert_eq!(plan.forwards(), 5);
    }

    #[test]
    fn seeded_fault_plan_replays_exactly() {
        let a = FaultPlan::seeded(42, 300);
        let b = FaultPlan::seeded(42, 300);
        let run_a: Vec<_> = (0..64).map(|_| a.next_fault()).collect();
        let run_b: Vec<_> = (0..64).map(|_| b.next_fault()).collect();
        assert_eq!(run_a, run_b);
        let errors = run_a.iter().filter(|f| f.is_some()).count();
        assert!(errors > 0 && errors < 64, "p=0.3 should hit some, not all");
        // permille=1000 fails every forward; 0 fails none.
        let always = FaultPlan::seeded(7, 1000);
        assert!((0..16).all(|_| always.next_fault() == Some(Fault::Error)));
        let never = FaultPlan::seeded(7, 0);
        assert!((0..16).all(|_| never.next_fault().is_none()));
    }
}

//! `Trans_JO` (T.iii): the join-order decoder.
//!
//! The join-order selection task is a seq2seq problem (paper Section 4.2):
//! `Trans_Share` is the encoder, `Trans_JO` a transformer decoder. At step
//! `t` the decoder consumes the representation of the table chosen at
//! `t − 1` (teacher-forced during training) and emits `P̂_t`, a
//! distribution over the query's candidate tables.
//!
//! `P̂_t` is computed with a *pointer* layer: the decoder state is dotted
//! with a learned projection of each candidate table's shared
//! representation. On one database this is exactly the paper's multinoulli
//! over tables; across databases it is size-agnostic, which the MLA
//! experiment requires (see crate docs).

use crate::config::MtmlfConfig;
use mtmlf_nn::layers::{Linear, Module};
use mtmlf_nn::{Matrix, TransformerDecoder, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-query state computed once and reused across every decode step of a
/// beam: the encoder memory, the table representations, and the two linear
/// projections of `table_reps` (`pointer` keys and `input_proj` rows) that
/// the sequential path recomputes at every step. Each row of `proj`/`keys`
/// is bitwise-identical to the corresponding one-row forward because both
/// projections are row-wise matmuls with fixed ascending-k accumulation.
#[derive(Clone)]
pub struct DecodeCache {
    /// The full shared representation `(nodes, d_model)`.
    pub memory: Var,
    /// `(m, d_model)` scan-node rows in slot order.
    pub table_reps: Var,
    /// Pointer keys: `pointer.forward(table_reps)`, computed once.
    keys: Var,
    /// Projected decoder inputs: `input_proj.forward(table_reps)`, once.
    proj: Var,
}

impl DecodeCache {
    /// Number of candidate tables (pointer-logit width).
    pub fn tables(&self) -> usize {
        self.table_reps.shape().0
    }
}

/// The join-order decoder.
#[derive(Clone)]
pub struct TransJo {
    decoder: TransformerDecoder,
    /// Learned start-of-sequence token.
    start: Var,
    /// Projects the chosen table's representation into the decoder input.
    input_proj: Linear,
    /// Projects table representations into pointer keys.
    pointer: Linear,
    /// Step positional embeddings (max_query_tables, d_model).
    step_pos: Var,
    /// Bushy mode: per-table logits over the complete-binary-tree leaf
    /// positions of the Section 4.1 codec (trained with KL divergence
    /// against the decoding embeddings).
    position_head: Linear,
    /// Width of the position head (codec dimension).
    positions: usize,
}

impl TransJo {
    /// Builds the decoder.
    pub fn new(config: &MtmlfConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x70A0);
        let positions = crate::config::codec_positions(config);
        Self {
            decoder: TransformerDecoder::new(
                config.d_model,
                config.heads,
                config.jo_blocks,
                &mut rng,
            ),
            start: Var::parameter(Matrix::xavier(1, config.d_model, &mut rng)),
            input_proj: Linear::new(config.d_model, config.d_model, &mut rng),
            pointer: Linear::new(config.d_model, config.d_model, &mut rng),
            step_pos: Var::parameter(Matrix::xavier(
                config.max_query_tables + 1,
                config.d_model,
                &mut rng,
            )),
            position_head: Linear::new(config.d_model, positions, &mut rng),
            positions,
        }
    }

    /// Width of the bushy position head (codec dimension).
    pub fn position_width(&self) -> usize {
        self.positions
    }

    /// Bushy mode (Section 4.1/4.2): per-table logits over the complete
    /// binary tree's leaf positions. The decoder runs one step per query
    /// table (slot order) — the input sequence is the tables' own
    /// representations, so no teacher forcing is needed — and the position
    /// head maps each step's state to `P̂_t` over the codec positions.
    /// Returns `(m, positions)` logits.
    pub fn position_logits(&self, memory: &Var, table_reps: &Var) -> Var {
        let (m, _) = table_reps.shape();
        let x = self
            .input_proj
            .forward(table_reps)
            .add(&self.step_pos.slice_rows(0, m));
        let decoded = self.decoder.forward(&x, memory);
        self.position_head.forward(&decoded)
    }

    /// Computes step logits given a (possibly empty) prefix of chosen table
    /// slots.
    ///
    /// - `memory`: the full shared representation `(nodes, d_model)`;
    /// - `table_reps`: the `(m, d_model)` rows of the query tables' scan
    ///   nodes, in slot order;
    /// - `prefix`: slots chosen so far (teacher-forced during training).
    ///
    /// Returns `(prefix.len() + 1, m)` logits: row `t` is `P̂_t` (before
    /// softmax) — the distribution over which table to join at step `t`
    /// given the prefix's first `t` choices.
    pub fn step_logits(&self, memory: &Var, table_reps: &Var, prefix: &[usize]) -> Var {
        let steps = prefix.len() + 1;
        // Decoder input: start token followed by the chosen tables'
        // projected representations, plus step positions.
        let mut inputs = Vec::with_capacity(steps);
        inputs.push(self.start.clone());
        for &slot in prefix {
            let rep = table_reps.slice_rows(slot, slot + 1);
            inputs.push(self.input_proj.forward(&rep));
        }
        let x = Var::concat_rows(&inputs).add(&self.step_pos.slice_rows(0, steps));
        let decoded = self.decoder.forward(&x, memory);
        // Pointer logits: decoded (steps, d) × keys (m, d)ᵀ → (steps, m).
        let keys = self.pointer.forward(table_reps);
        decoded.matmul_nt(&keys)
    }

    /// Teacher-forced logits for a full target sequence: returns
    /// `(m, m)` logits where row `t` predicts `target[t]`.
    pub fn teacher_forced_logits(&self, memory: &Var, table_reps: &Var, target: &[usize]) -> Var {
        debug_assert!(!target.is_empty());
        let prefix = &target[..target.len() - 1];
        self.step_logits(memory, table_reps, prefix)
    }

    /// Builds the per-query decode cache: encoder memory plus the pointer
    /// keys and projected decoder inputs computed once instead of once per
    /// beam step.
    pub fn decode_cache(&self, memory: &Var, table_reps: &Var) -> DecodeCache {
        DecodeCache {
            memory: memory.clone(),
            table_reps: table_reps.clone(),
            keys: self.pointer.forward(table_reps),
            proj: self.input_proj.forward(table_reps),
        }
    }

    /// Batched step logits: scores every live prefix of every query in one
    /// packed decoder forward.
    ///
    /// `entries` are `(cache_index, prefix)` pairs; the packed decoder input
    /// concatenates each prefix's `[start, proj[slot]...] + step_pos` rows,
    /// self-attention is block-causal per prefix, and cross-attention
    /// restricts each prefix to its own query's memory block. Returns one
    /// matrix per cache whose rows are the *next-step* pointer logits of
    /// that cache's entries, in `entries` order — bitwise-identical to row
    /// `prefix.len()` of [`TransJo::step_logits`] per entry.
    pub fn step_logits_batch(
        &self,
        caches: &[DecodeCache],
        entries: &[(usize, &[usize])],
    ) -> Vec<Matrix> {
        let widths: Vec<usize> = caches.iter().map(DecodeCache::tables).collect();
        if entries.is_empty() {
            return widths.iter().map(|&m| Matrix::zeros(0, m)).collect();
        }
        // Pack every prefix's decoder input rows into one matrix, written
        // row-at-a-time: row `t` of an entry is `(start | proj[slot]) +
        // step_pos[t]` — the same element-wise sums the per-entry
        // concat-and-add formulation produces, without one `Var` (and one
        // heap matrix) per entry per step. Beam scores never carry
        // gradients (candidates are plain floats), so a constant input
        // severs nothing the sequential path kept.
        let d = self.start.shape().1;
        let total: usize = entries.iter().map(|&(_, p)| p.len() + 1).sum();
        let mut x_lens = Vec::with_capacity(entries.len());
        let mut xm = Matrix::zeros(total, d);
        {
            // Concurrent read guards on *distinct* per-node RwLocks —
            // read-read on separate locks cannot deadlock; the analyzer
            // folds every `.value()` into one global tape identity.
            let start = self.start.value(); // lint: allow(lock-cycle)
            let pos = self.step_pos.value(); // lint: allow(lock-cycle)
            let mut r = 0;
            for &(ci, prefix) in entries {
                let proj = caches[ci].proj.value(); // lint: allow(lock-cycle)
                x_lens.push(prefix.len() + 1);
                for (t, src) in std::iter::once(start.row(0))
                    .chain(prefix.iter().map(|&slot| proj.row(slot)))
                    .enumerate()
                {
                    for ((o, &a), &b) in xm.row_mut(r).iter_mut().zip(src).zip(pos.row(t)) {
                        *o = a + b;
                    }
                    r += 1;
                }
            }
        }
        let x = Var::constant(xm);
        // Pack only the memories the entries actually reference, remapping
        // cache indices onto the compacted block list.
        let mut block_of = vec![usize::MAX; caches.len()];
        let mut memories = Vec::new();
        let mut mem_lens = Vec::new();
        let mut mem_of = Vec::with_capacity(entries.len());
        for &(ci, _) in entries {
            if block_of[ci] == usize::MAX {
                block_of[ci] = memories.len();
                memories.push(caches[ci].memory.clone());
                mem_lens.push(caches[ci].memory.shape().0);
            }
            mem_of.push(block_of[ci]);
        }
        let decoded = if let ([steps], [memory]) = (x_lens.as_slice(), memories.as_slice()) {
            debug_assert_eq!(*steps, x.shape().0);
            self.decoder.forward(&x, memory)
        } else {
            let memory = Var::concat_rows(&memories);
            self.decoder
                .forward_packed(&x, &memory, &x_lens, &mem_lens, &mem_of)
        };
        // Gather each entry's last decoded row and point it at its own
        // cache's keys: one `(count, d) × (m, d)ᵀ` product per query. The
        // gather copies rows straight out of the decoded value instead of
        // concatenating per-entry `Var` slices — same bytes, one
        // allocation per query.
        let mut last_row = Vec::with_capacity(entries.len());
        let mut off = 0;
        for &len in &x_lens {
            last_row.push(off + len - 1);
            off += len;
        }
        // Gather while the decoded-value guard is live, then release it
        // before the keys products: `matmul_nt` can park on the kernel
        // worker pool, and nothing should hold a tape guard across that.
        let gathers: Vec<Matrix> = {
            let dec = decoded.value();
            (0..caches.len())
                .map(|ci| {
                    let rows: Vec<usize> = entries
                        .iter()
                        .zip(&last_row)
                        .filter(|((c, _), _)| *c == ci)
                        .map(|(_, &r)| r)
                        .collect();
                    let mut g = Matrix::zeros(rows.len(), d);
                    for (i, &r) in rows.iter().enumerate() {
                        g.row_mut(i).copy_from_slice(dec.row(r));
                    }
                    g
                })
                .collect()
        };
        gathers
            .into_iter()
            .zip(caches)
            .enumerate()
            .map(|(ci, (g, cache))| {
                if g.shape().0 == 0 {
                    Matrix::zeros(0, widths[ci])
                } else {
                    g.matmul_nt(&cache.keys.value())
                }
            })
            .collect()
    }
}

impl Module for TransJo {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.decoder.parameters();
        p.push(self.start.clone());
        p.extend(self.input_proj.parameters());
        p.extend(self.pointer.parameters());
        p.push(self.step_pos.clone());
        p.extend(self.position_head.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_nn::loss::cross_entropy_rows;
    use mtmlf_nn::Adam;

    fn setup(cfg: &MtmlfConfig) -> (TransJo, Var, Var) {
        let jo = TransJo::new(cfg);
        let mut rng = StdRng::seed_from_u64(9);
        let memory = Var::constant(Matrix::xavier(7, cfg.d_model, &mut rng));
        let table_reps = Var::constant(Matrix::xavier(4, cfg.d_model, &mut rng));
        (jo, memory, table_reps)
    }

    #[test]
    fn logits_shapes() {
        let cfg = MtmlfConfig::tiny();
        let (jo, memory, table_reps) = setup(&cfg);
        assert_eq!(jo.step_logits(&memory, &table_reps, &[]).shape(), (1, 4));
        assert_eq!(
            jo.step_logits(&memory, &table_reps, &[2, 0]).shape(),
            (3, 4)
        );
        assert_eq!(
            jo.teacher_forced_logits(&memory, &table_reps, &[1, 3, 0, 2])
                .shape(),
            (4, 4)
        );
    }

    #[test]
    fn prefix_extension_is_consistent() {
        // Causality: logits for step t must not change when the prefix is
        // extended beyond t.
        let cfg = MtmlfConfig::tiny();
        let (jo, memory, table_reps) = setup(&cfg);
        let short = jo.step_logits(&memory, &table_reps, &[1]).to_matrix();
        let long = jo.step_logits(&memory, &table_reps, &[1, 2, 3]).to_matrix();
        for c in 0..4 {
            assert!((short.get(0, c) - long.get(0, c)).abs() < 1e-4);
            assert!((short.get(1, c) - long.get(1, c)).abs() < 1e-4);
        }
    }

    #[test]
    fn learns_a_fixed_order() {
        // The decoder can overfit one target order via teacher forcing.
        let cfg = MtmlfConfig::tiny();
        let (jo, memory, table_reps) = setup(&cfg);
        let target = [2usize, 0, 3, 1];
        let mut opt = Adam::new(jo.parameters(), 5e-3);
        let mut last = f32::INFINITY;
        for _ in 0..120 {
            let logits = jo.teacher_forced_logits(&memory, &table_reps, &target);
            let loss = cross_entropy_rows(&logits, &target);
            opt.zero_grad();
            loss.backward();
            opt.step();
            last = loss.item();
        }
        assert!(last < 0.1, "final CE {last}");
        // Greedy decode reproduces the target.
        let mut prefix: Vec<usize> = Vec::new();
        for t in 0..4 {
            let logits = jo.step_logits(&memory, &table_reps, &prefix).to_matrix();
            let row = logits.row(t);
            let best = (0..4)
                .filter(|s| !prefix.contains(s))
                .max_by(|&a, &b| row[a].total_cmp(&row[b]))
                .unwrap();
            prefix.push(best);
        }
        assert_eq!(prefix, target);
    }

    #[test]
    fn batched_step_logits_match_sequential_bitwise() {
        // The packed multi-prefix, multi-query forward must reproduce the
        // per-prefix sequential logits bit for bit.
        let cfg = MtmlfConfig::tiny();
        let jo = TransJo::new(&cfg);
        let mut rng = StdRng::seed_from_u64(31);
        let queries = [(7usize, 4usize), (5, 3)];
        let caches: Vec<DecodeCache> = queries
            .iter()
            .map(|&(nodes, m)| {
                let memory = Var::constant(Matrix::xavier(nodes, cfg.d_model, &mut rng));
                let reps = Var::constant(Matrix::xavier(m, cfg.d_model, &mut rng));
                jo.decode_cache(&memory, &reps)
            })
            .collect();
        let prefixes: [(usize, &[usize]); 5] =
            [(0, &[]), (1, &[2]), (0, &[1, 3]), (1, &[0, 2]), (0, &[2])];
        let batched = jo.step_logits_batch(&caches, &prefixes);
        let mut row_of = vec![0usize; caches.len()];
        for &(ci, prefix) in &prefixes {
            let cache = &caches[ci];
            let seq = jo.step_logits(&cache.memory, &cache.table_reps, prefix);
            let seq = seq.to_matrix();
            let got = &batched[ci];
            assert_eq!(got.row(row_of[ci]), seq.row(prefix.len()));
            row_of[ci] += 1;
        }
        // Single-entry batch exercises the unpacked fallback path.
        let one: [(usize, &[usize]); 1] = [(1, &[1, 0])];
        let single = jo.step_logits_batch(&caches, &one);
        let seq = jo
            .step_logits(&caches[1].memory, &caches[1].table_reps, &[1, 0])
            .to_matrix();
        assert_eq!(single[1].row(0), seq.row(2));
        assert_eq!(single[0].shape(), (0, 4));
    }

    #[test]
    fn clone_shares_parameters() {
        let cfg = MtmlfConfig::tiny();
        let (jo, memory, table_reps) = setup(&cfg);
        let jo2 = jo.clone();
        let loss = jo.step_logits(&memory, &table_reps, &[0]).sum();
        loss.backward();
        let g: f32 = jo2.parameters().iter().map(|p| p.grad().norm()).sum();
        assert!(g > 0.0, "clone sees the original's gradients");
    }
}

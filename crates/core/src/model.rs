//! The `MtmlfQo` facade: build, train, and query the full model.

use crate::beam::beam_search;
use crate::config::MtmlfConfig;
use crate::error::MtmlfError;
use crate::featurize::FeaturizationModule;
use crate::serialize::serialize_plan;
use crate::shared::SharedModule;
use crate::tasks::TaskHeads;
use crate::train::{prepare_sample, run_training, table_representations};
use crate::transjo::TransJo;
use crate::Result;
use mtmlf_datagen::LabeledQuery;
use mtmlf_nn::kernel;
use mtmlf_nn::loss::log_pred_to_estimate;
use mtmlf_query::{JoinOrder, PlanNode, Query};
use mtmlf_storage::Database;

/// The MTMLF-QO model: a per-database featurization module (F) plus the
/// shared representation (S) and task heads (T) that are jointly trained —
/// and, under meta-learning, shared across databases.
pub struct MtmlfQo {
    featurization: FeaturizationModule,
    shared: SharedModule,
    heads: TaskHeads,
    jo: TransJo,
    config: MtmlfConfig,
}

impl MtmlfQo {
    /// Builds a fresh model for one database: fits (pre-trains) the
    /// per-table encoders and initializes (S) and (T).
    pub fn new(db: &Database, config: MtmlfConfig) -> Result<Self> {
        let featurization =
            kernel::scoped(config.kernel, || FeaturizationModule::fit(db, &config))?;
        Ok(Self {
            shared: SharedModule::new(&config),
            heads: TaskHeads::new(&config),
            jo: TransJo::new(&config),
            featurization,
            config,
        })
    }

    /// Assembles a model from existing modules — how the meta-learner
    /// attaches pre-trained (S)/(T) modules to a new database's featurizer.
    pub fn from_modules(
        featurization: FeaturizationModule,
        shared: SharedModule,
        heads: TaskHeads,
        jo: TransJo,
        config: MtmlfConfig,
    ) -> Self {
        Self {
            featurization,
            shared,
            heads,
            jo,
            config,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &MtmlfConfig {
        &self.config
    }

    /// The featurization module (F).
    pub fn featurization(&self) -> &FeaturizationModule {
        &self.featurization
    }

    /// Re-fits the featurization module against (possibly changed) data,
    /// leaving (S) and (T) untouched — the paper's Section 2.3 evolution
    /// story: "when the data or query workload distribution in this DB
    /// shifts, only the featurization and encoding module of MTMLF needs
    /// to be updated without affecting the other two modules".
    pub fn refresh_featurization(&mut self, db: &Database) -> Result<()> {
        self.featurization = kernel::scoped(self.config.kernel, || {
            FeaturizationModule::fit(db, &self.config)
        })?;
        Ok(())
    }

    /// Parameter-sharing clones of the transferable modules `(S, T)` —
    /// what the cloud provider ships to users in the paper's workflow.
    pub fn transferable_modules(&self) -> (SharedModule, TaskHeads, TransJo) {
        (self.shared.clone(), self.heads.clone(), self.jo.clone())
    }

    /// Jointly trains (S) and (T) on labelled queries with the configured
    /// loss weights (Eq. 1). Returns per-epoch mean losses.
    pub fn train(&mut self, data: &[LabeledQuery]) -> Result<Vec<f32>> {
        kernel::scoped(self.config.kernel, || {
            let samples = data
                .iter()
                .map(|l| prepare_sample(&self.featurization, l, &self.config))
                .collect::<Result<Vec<_>>>()?;
            Ok(run_training(
                &self.shared,
                &self.heads,
                &self.jo,
                &samples,
                &self.config,
                self.config.epochs,
                self.config.lr,
            ))
        })
    }

    /// Two-phase training (the paper's Section 3.2 "research
    /// opportunities"): optimal join orders are exponential to label, so
    /// phase 1 trains on a large workload supervised by the *classical
    /// optimizer's* (cheap, sub-optimal) orders, and phase 2 fine-tunes on
    /// the small, precious exact-optimal set. Returns both loss histories.
    pub fn train_two_phase(
        &mut self,
        cheap: &[LabeledQuery],
        precious: &[LabeledQuery],
        phase1_epochs: usize,
    ) -> Result<(Vec<f32>, Vec<f32>)> {
        let h1 = kernel::scoped(self.config.kernel, || -> Result<Vec<f32>> {
            let phase1 = cheap
                .iter()
                .map(|l| {
                    crate::train::prepare_sample_with(
                        &self.featurization,
                        l,
                        &self.config,
                        crate::train::JoTarget::InitialPlan,
                    )
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(run_training(
                &self.shared,
                &self.heads,
                &self.jo,
                &phase1,
                &self.config,
                phase1_epochs,
                self.config.lr,
            ))
        })?;
        let h2 = self.train(precious)?;
        Ok((h1, h2))
    }

    /// Fine-tunes (S) and (T) on a small set of queries from this model's
    /// database (the user-side step of the pre-train/fine-tune workflow).
    pub fn fine_tune(&mut self, data: &[LabeledQuery], epochs: usize, lr: f32) -> Result<Vec<f32>> {
        kernel::scoped(self.config.kernel, || {
            let samples = data
                .iter()
                .map(|l| prepare_sample(&self.featurization, l, &self.config))
                .collect::<Result<Vec<_>>>()?;
            Ok(run_training(
                &self.shared,
                &self.heads,
                &self.jo,
                &samples,
                &self.config,
                epochs,
                lr,
            ))
        })
    }

    /// Predicts `(cardinality, cost)` for the sub-plan rooted at every node
    /// of `plan`, in post-order (the modified CardEst/CostEst tasks of
    /// Section 3.2 I).
    pub fn predict_nodes(&self, query: &Query, plan: &PlanNode) -> Result<Vec<(f64, f64)>> {
        kernel::scoped(self.config.kernel, || {
            let serialized = serialize_plan(&self.featurization, query, plan, &self.config)?;
            let s = self.shared.forward(&serialized.features);
            let cards = self.heads.card(&s).to_matrix();
            let costs = self.heads.cost(&s).to_matrix();
            Ok((0..cards.rows())
                .map(|r| {
                    (
                        log_pred_to_estimate(cards.get(r, 0)),
                        log_pred_to_estimate(costs.get(r, 0)),
                    )
                })
                .collect())
        })
    }

    /// Recommends the access path for each query table — the
    /// physical-design task of the paper's Section 2.2, served by the
    /// advisor head (train with [`crate::LossWeights::with_advisor`]).
    /// Returns `(table, recommended scan operator)` per query table.
    pub fn recommend_access_paths(
        &self,
        query: &Query,
        plan: &PlanNode,
    ) -> Result<Vec<(mtmlf_storage::TableId, mtmlf_query::ScanOp)>> {
        let (serialized, logits) = kernel::scoped(self.config.kernel, || {
            let serialized = serialize_plan(&self.featurization, query, plan, &self.config)?;
            let s = self.shared.forward(&serialized.features);
            let logits = self.heads.advisor(&s).to_matrix();
            Ok::<_, MtmlfError>((serialized, logits))
        })?;
        Ok(serialized
            .table_slots
            .iter()
            .zip(&serialized.scan_node_of_slot)
            .map(|(&table, &node)| {
                let op = if logits.get(node, 0) > 0.0 {
                    mtmlf_query::ScanOp::IndexScan
                } else {
                    mtmlf_query::ScanOp::SeqScan
                };
                (table, op)
            })
            .collect())
    }

    /// Predicts a *bushy* join order (Section 4.1's extension): the
    /// position head's distributions are decoded by a block-assignment
    /// beam search and reverted through the tree codec. Falls back to the
    /// left-deep search when no legal bushy candidate survives (e.g. on an
    /// untrained head).
    pub fn predict_bushy_join_order(&self, query: &Query, plan: &PlanNode) -> Result<JoinOrder> {
        let (serialized, candidates) = kernel::scoped(self.config.kernel, || {
            let serialized = serialize_plan(&self.featurization, query, plan, &self.config)?;
            let s = self.shared.forward(&serialized.features);
            let table_reps = table_representations(&s, &serialized.scan_node_of_slot);
            let candidates = crate::beam::beam_search_bushy(
                &self.jo,
                &s,
                &table_reps,
                &serialized.graph,
                &self.config.beam.bushy(),
            );
            Ok::<_, MtmlfError>((serialized, candidates))
        })?;
        match candidates.first() {
            Some(best) => {
                // Re-index leaves from slots to global table ids.
                fn relabel(
                    tree: &mtmlf_query::JoinTree,
                    slots: &[mtmlf_storage::TableId],
                ) -> mtmlf_query::JoinTree {
                    match tree {
                        mtmlf_query::JoinTree::Leaf(t) => {
                            mtmlf_query::JoinTree::Leaf(slots[t.index()])
                        }
                        mtmlf_query::JoinTree::Node(l, r) => {
                            mtmlf_query::JoinTree::join(relabel(l, slots), relabel(r, slots))
                        }
                    }
                }
                let order = JoinOrder::Bushy(relabel(&best.tree, &serialized.table_slots));
                order.validate(query)?;
                Ok(order)
            }
            None => self.predict_join_order(query, plan),
        }
    }

    /// Predicts the join order for a query given its initial plan, using
    /// the legality-constrained beam search (Section 4.3). The result is
    /// guaranteed executable.
    pub fn predict_join_order(&self, query: &Query, plan: &PlanNode) -> Result<JoinOrder> {
        self.beam_orders(query, plan)?
            .into_iter()
            .next()
            .ok_or(MtmlfError::NoLegalOrder)
    }

    /// The legality-constrained beam's candidate orders, best-first.
    fn beam_orders(&self, query: &Query, plan: &PlanNode) -> Result<Vec<JoinOrder>> {
        kernel::scoped(self.config.kernel, || {
            let serialized = serialize_plan(&self.featurization, query, plan, &self.config)?;
            let s = self.shared.forward(&serialized.features);
            let table_reps = table_representations(&s, &serialized.scan_node_of_slot);
            // Serving must emit an executable order: legality pruning is
            // forced on regardless of the configured default.
            let candidates = beam_search(
                &self.jo,
                &s,
                &table_reps,
                &serialized.graph,
                &self.config.beam.constrained().left_deep(),
            );
            if candidates.is_empty() {
                return Err(MtmlfError::NoLegalOrder);
            }
            Ok(candidates
                .into_iter()
                .map(|c| {
                    JoinOrder::LeftDeep(
                        c.slots
                            .iter()
                            .map(|&slot| serialized.table_slots[slot])
                            .collect(),
                    )
                })
                .collect())
        })
    }

    /// Multi-task consistent inference (the paper's Section 2.3: "the
    /// inference of each task can effectively take others into
    /// consideration, guaranteed to make consistent decisions"): the beam's
    /// candidate orders are re-ranked by the model's *own* CostEst head —
    /// each candidate becomes a plan, and the predicted root cost picks the
    /// winner. Joint training makes this possible; the single-task
    /// MTMLF-JoinSel ablation has no trained cost head and cannot veto a
    /// catastrophic candidate, which is one mechanism behind Table 2's
    /// joint ≻ single-task gap.
    pub fn predict_join_order_costed(&self, query: &Query, plan: &PlanNode) -> Result<JoinOrder> {
        let candidates = self.beam_orders(query, plan)?;
        let mut best: Option<(f64, JoinOrder)> = None;
        for order in candidates {
            let candidate_plan = order.to_plan()?;
            let predicted = self.predict_nodes(query, &candidate_plan)?;
            let root_cost = predicted.last().map(|&(_, cost)| cost).unwrap_or(f64::MAX);
            if best.as_ref().is_none_or(|(c, _)| root_cost < *c) {
                best = Some((root_cost, order));
            }
        }
        best.map(|(_, order)| order).ok_or(MtmlfError::NoLegalOrder)
    }

    /// Derives the deterministic initial left-deep plan the model's
    /// serializer expects: a greedy legal order over the query's join graph
    /// (the same construction the training pipeline uses). Callers that
    /// only have a [`Query`] never need to build a [`PlanNode`] themselves.
    pub fn initial_plan(&self, query: &Query) -> Result<PlanNode> {
        let order = mtmlf_exec::executor::greedy_legal_order(query)?;
        Ok(PlanNode::left_deep(&order)?)
    }

    /// Plans a query end to end: derives the initial plan internally and
    /// runs the legality-constrained beam search. This is the one-call
    /// facade used by [`crate::serve::PlannerService`] and external
    /// consumers; `predict_join_order` remains available when a caller
    /// wants to supply its own starting plan.
    pub fn plan(&self, query: &Query) -> Result<JoinOrder> {
        let initial = self.initial_plan(query)?;
        match self.config.beam.shape {
            crate::beam::TreeShape::LeftDeep => self.predict_join_order(query, &initial),
            crate::beam::TreeShape::Bushy => self.predict_bushy_join_order(query, &initial),
        }
    }

    /// Plans a query and returns the predicted join order together with the
    /// model's root cardinality and cost estimates for the chosen plan —
    /// exactly the payload a [`crate::serve::PlanResponse`] carries.
    pub fn plan_with_estimates(&self, query: &Query) -> Result<(JoinOrder, f64, f64)> {
        let order = self.plan(query)?;
        let chosen = order.to_plan()?;
        let nodes = self.predict_nodes(query, &chosen)?;
        let &(card, cost) = nodes
            .last()
            .ok_or_else(|| MtmlfError::Internal("predicted plan has no nodes".into()))?;
        Ok((order, card, cost))
    }

    pub(crate) fn shared_module(&self) -> &SharedModule {
        &self.shared
    }

    pub(crate) fn heads_module(&self) -> &TaskHeads {
        &self.heads
    }

    pub(crate) fn jo_module(&self) -> &TransJo {
        &self.jo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_datagen::{
        generate_queries, imdb::ImdbScale, imdb_lite, label_workload, LabelConfig, WorkloadConfig,
    };
    use mtmlf_optd::q_error;

    fn setup(count: usize) -> (Database, Vec<LabeledQuery>) {
        let mut db = imdb_lite(1, ImdbScale { scale: 0.02 }).unwrap();
        db.analyze_all(8, 4);
        let queries = generate_queries(
            &db,
            &WorkloadConfig {
                count,
                max_tables: 4,
                ..WorkloadConfig::default()
            },
            5,
        );
        let labeled = label_workload(&db, &queries, &LabelConfig::default()).unwrap();
        (db, labeled)
    }

    #[test]
    fn end_to_end_predictions_valid() {
        let (db, labeled) = setup(6);
        let mut cfg = MtmlfConfig::tiny();
        cfg.enc_queries = 20;
        cfg.enc_epochs = 2;
        cfg.epochs = 2;
        let mut model = MtmlfQo::new(&db, cfg).unwrap();
        model.train(&labeled).unwrap();
        for l in &labeled {
            let preds = model.predict_nodes(&l.query, &l.plan).unwrap();
            assert_eq!(preds.len(), l.plan.node_count());
            for (card, cost) in preds {
                assert!(card >= 1.0 && card.is_finite());
                assert!(cost >= 1.0 && cost.is_finite());
            }
            let order = model.predict_join_order(&l.query, &l.plan).unwrap();
            order.validate(&l.query).unwrap();
        }
    }

    #[test]
    fn training_improves_card_estimates() {
        let (db, labeled) = setup(24);
        let (train, test) = labeled.split_at(18);
        let mut cfg = MtmlfConfig::tiny();
        cfg.enc_queries = 60;
        cfg.enc_epochs = 15;
        cfg.epochs = 10;
        let geo_mean_qerr = |model: &MtmlfQo| -> f64 {
            let mut total = 0.0;
            let mut n = 0;
            for l in test {
                let preds = model.predict_nodes(&l.query, &l.plan).unwrap();
                for (i, (card, _)) in preds.iter().enumerate() {
                    total += q_error(*card, l.node_cards[i] as f64).ln();
                    n += 1;
                }
            }
            (total / n as f64).exp()
        };
        let mut model = MtmlfQo::new(&db, cfg).unwrap();
        let before = geo_mean_qerr(&model);
        model.train(train).unwrap();
        let after = geo_mean_qerr(&model);
        assert!(after < before, "q-error improves: {before} -> {after}");
    }

    #[test]
    fn transferable_modules_share_parameters() {
        let (db, labeled) = setup(4);
        let mut cfg = MtmlfConfig::tiny();
        cfg.enc_queries = 10;
        cfg.enc_epochs = 1;
        cfg.epochs = 1;
        let mut model = MtmlfQo::new(&db, cfg.clone()).unwrap();
        let (shared, heads, jo) = model.transferable_modules();
        // Training the model mutates the shared modules' parameters too.
        let before: f32 = mtmlf_nn::layers::Module::parameters(&shared)
            .iter()
            .map(|p| p.to_matrix().norm())
            .sum();
        model.train(&labeled).unwrap();
        let after: f32 = mtmlf_nn::layers::Module::parameters(&shared)
            .iter()
            .map(|p| p.to_matrix().norm())
            .sum();
        assert_ne!(before, after);
        // And the clones can be attached to a new featurizer.
        let f2 = FeaturizationModule::untrained(&db, &cfg).unwrap();
        let model2 = MtmlfQo::from_modules(f2, shared, heads, jo, cfg);
        let l = &labeled[0];
        let order = model2.predict_join_order(&l.query, &l.plan).unwrap();
        order.validate(&l.query).unwrap();
    }
}

#[cfg(test)]
mod two_phase_tests {
    use super::*;
    use mtmlf_datagen::{
        generate_queries, imdb::ImdbScale, imdb_lite, label_workload, LabelConfig, WorkloadConfig,
    };

    #[test]
    fn two_phase_training_runs_and_stays_finite() {
        let mut db = imdb_lite(13, ImdbScale { scale: 0.02 }).unwrap();
        db.analyze_all(8, 4);
        let queries = generate_queries(
            &db,
            &WorkloadConfig {
                count: 12,
                max_tables: 4,
                ..WorkloadConfig::default()
            },
            6,
        );
        let labeled = label_workload(&db, &queries, &LabelConfig::default()).unwrap();
        let (cheap, precious) = labeled.split_at(8);
        let cfg = MtmlfConfig {
            enc_queries: 15,
            enc_epochs: 2,
            epochs: 2,
            seed: 13,
            ..MtmlfConfig::tiny()
        };
        let mut model = MtmlfQo::new(&db, cfg).unwrap();
        let (h1, h2) = model.train_two_phase(cheap, precious, 2).unwrap();
        assert_eq!(h1.len(), 2);
        assert_eq!(h2.len(), 2);
        assert!(h1.iter().chain(&h2).all(|l| l.is_finite()));
        // The model still produces legal orders afterwards.
        for l in &labeled {
            model
                .predict_join_order(&l.query, &l.plan)
                .unwrap()
                .validate(&l.query)
                .unwrap();
        }
    }
}

#[cfg(test)]
mod costed_inference_tests {
    use super::*;
    use mtmlf_datagen::{
        generate_queries, imdb::ImdbScale, imdb_lite, label_workload, LabelConfig, WorkloadConfig,
    };

    #[test]
    fn costed_order_legal_and_never_worse_under_own_cost_model() {
        let mut db = imdb_lite(15, ImdbScale { scale: 0.02 }).unwrap();
        db.analyze_all(8, 4);
        let queries = generate_queries(
            &db,
            &WorkloadConfig {
                count: 10,
                min_tables: 3,
                max_tables: 4,
                ..WorkloadConfig::default()
            },
            8,
        );
        let labeled = label_workload(&db, &queries, &LabelConfig::default()).unwrap();
        let cfg = MtmlfConfig {
            enc_queries: 20,
            enc_epochs: 3,
            epochs: 4,
            seed: 15,
            ..MtmlfConfig::tiny()
        };
        let mut model = MtmlfQo::new(&db, cfg).unwrap();
        model.train(&labeled).unwrap();
        for l in &labeled {
            let plain = model.predict_join_order(&l.query, &l.plan).unwrap();
            let costed = model.predict_join_order_costed(&l.query, &l.plan).unwrap();
            plain.validate(&l.query).unwrap();
            costed.validate(&l.query).unwrap();
            // The costed pick has predicted root cost ≤ the plain pick's.
            let cost_of = |o: &JoinOrder| -> f64 {
                let plan = o.to_plan().unwrap();
                model
                    .predict_nodes(&l.query, &plan)
                    .unwrap()
                    .last()
                    .unwrap()
                    .1
            };
            assert!(cost_of(&costed) <= cost_of(&plain) + 1e-9);
        }
    }
}

#[cfg(test)]
mod advisor_tests {
    use super::*;
    use crate::config::LossWeights;
    use mtmlf_datagen::{
        generate_queries, imdb::ImdbScale, imdb_lite, label_workload, LabelConfig, WorkloadConfig,
    };

    #[test]
    fn advisor_learns_access_path_selection() {
        let mut db = imdb_lite(17, ImdbScale { scale: 0.03 }).unwrap();
        db.analyze_all(16, 8);
        let queries = generate_queries(
            &db,
            &WorkloadConfig {
                count: 60,
                min_tables: 2,
                max_tables: 4,
                filter_prob: 1.0,
                ..WorkloadConfig::default()
            },
            14,
        );
        let labeled = label_workload(&db, &queries, &LabelConfig::default()).unwrap();
        let (train, test) = labeled.split_at(labeled.len() - 12);
        let cfg = MtmlfConfig {
            weights: LossWeights::with_advisor(),
            enc_queries: 60,
            enc_epochs: 10,
            epochs: 10,
            seed: 17,
            ..MtmlfConfig::tiny()
        };
        let mut model = MtmlfQo::new(&db, cfg).unwrap();
        model.train(train).unwrap();
        // Compare recommendations against the true cheaper access path.
        let coefficients = mtmlf_exec::cost::OperatorCost::default();
        let mut correct = 0usize;
        let mut total = 0usize;
        for l in test {
            let recs = model.recommend_access_paths(&l.query, &l.plan).unwrap();
            for (i, node) in l.plan.post_order().iter().enumerate() {
                if let mtmlf_query::PlanNode::Scan { table, .. } = node {
                    let rows = db.table(*table).unwrap().rows() as f64;
                    let out = l.node_cards[i] as f64;
                    let seq = mtmlf_exec::cost::CostTracker::scan_cost(
                        &coefficients,
                        mtmlf_query::ScanOp::SeqScan,
                        rows,
                        out,
                    );
                    let idx = mtmlf_exec::cost::CostTracker::scan_cost(
                        &coefficients,
                        mtmlf_query::ScanOp::IndexScan,
                        rows,
                        out,
                    );
                    let truth = if idx < seq {
                        mtmlf_query::ScanOp::IndexScan
                    } else {
                        mtmlf_query::ScanOp::SeqScan
                    };
                    let rec = recs
                        .iter()
                        .find(|(t, _)| t == table)
                        .map(|(_, op)| *op)
                        .unwrap();
                    if rec == truth {
                        correct += 1;
                    }
                    total += 1;
                }
            }
        }
        let accuracy = correct as f64 / total.max(1) as f64;
        assert!(
            accuracy > 0.6,
            "advisor should beat coin flips: {correct}/{total}"
        );
    }
}

//! Model persistence: save and load MTMLF-QO weights.
//!
//! The weight file carries the parameter values of the featurization
//! module (per-table encoders) and of the transferable (S)/(T) modules, in
//! a stable order. The architecture (widths, depths, table count) is *not*
//! stored — it comes from the [`crate::MtmlfConfig`] and database used to
//! rebuild the model, and every shape is validated at load time.
//!
//! # On-disk format
//!
//! An integrity envelope wraps the raw parameter payload produced by
//! [`mtmlf_nn::serialize::save_parameters`]:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"MTMLFQO\x01"
//!      8     8  payload length, u64 LE
//!     16     8  FNV-1a 64 checksum of the payload, u64 LE
//!     24     n  payload (mtmlf-nn matrix format)
//! ```
//!
//! A truncated, bit-flipped, or foreign file fails with a descriptive
//! [`MtmlfError::Corrupt`] before any parameter is touched, instead of
//! surfacing as a confusing shape error — or worse, loading garbage.
//! Headerless files written before the envelope existed are recognized by
//! their inner `mtmlf-nn` magic and must be loaded through the explicit
//! [`MtmlfQo::load_weights_legacy`] opt-in (they carry no checksum, so
//! corruption in them is undetectable).
//!
//! This realizes the paper's deployment story: the provider trains and
//! ships the (S)/(T) weights; the user instantiates the architecture
//! locally and loads them.

use crate::featurize::FeaturizationModule;
use crate::model::MtmlfQo;
use crate::MtmlfError;
use crate::Result;
use mtmlf_nn::layers::Module;
use mtmlf_nn::serialize::{load_parameters, save_parameters, PAYLOAD_MAGIC};
use mtmlf_nn::Var;
use std::fs;
use std::path::Path;

/// Magic + format version of the enveloped weight file.
const WEIGHTS_MAGIC: &[u8; 8] = b"MTMLFQO\x01";
/// Envelope bytes before the payload: magic + length + checksum.
const HEADER_LEN: usize = 24;

/// FNV-1a 64-bit over the payload: dependency-free, deterministic, and
/// plenty to catch truncation and bit rot (this is an integrity check, not
/// an authenticity one).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl FeaturizationModule {
    /// All encoder parameters, in table order.
    pub fn parameters(&self) -> Vec<Var> {
        (0..self.table_count())
            .flat_map(|t| {
                self.encoder(mtmlf_storage::TableId(t as u32))
                    .map(|e| e.parameters())
                    .unwrap_or_default()
            })
            .collect()
    }
}

impl MtmlfQo {
    /// All parameters (featurization + shared + task modules), stable order.
    pub fn all_parameters(&self) -> Vec<Var> {
        let mut p = self.featurization().parameters();
        let (shared, heads, jo) = self.transferable_modules();
        p.extend(shared.parameters());
        p.extend(heads.parameters());
        p.extend(jo.parameters());
        p
    }

    /// Saves all weights to a file, wrapped in the checksummed envelope
    /// described in the [module docs](self).
    pub fn save_weights(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut payload = Vec::new();
        save_parameters(&mut payload, &self.all_parameters()).map_err(MtmlfError::from)?;
        let mut file = Vec::with_capacity(HEADER_LEN + payload.len());
        file.extend_from_slice(WEIGHTS_MAGIC);
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        file.extend_from_slice(&payload);
        fs::write(path, file).map_err(MtmlfError::from)
    }

    /// Loads weights saved by [`MtmlfQo::save_weights`] into this model.
    ///
    /// The envelope's magic, length, and checksum are validated before any
    /// parameter is touched; failures return [`MtmlfError::Corrupt`]. The
    /// model must have been built with the same configuration and database
    /// shape; mismatches are rejected.
    pub fn load_weights(&mut self, path: impl AsRef<Path>) -> Result<()> {
        let bytes = fs::read(path).map_err(MtmlfError::from)?;
        let payload = validate_envelope(&bytes)?;
        load_parameters(payload, &self.all_parameters()).map_err(MtmlfError::from)?;
        // The encoder parameters just changed under the featurizer's memo
        // cache; drop it so no stale embedding survives the swap.
        self.featurization().invalidate_embedding_cache();
        Ok(())
    }

    /// Loads a legacy headerless weight file (raw `mtmlf-nn` payload with
    /// no envelope, as written before the checksummed format). Such files
    /// carry no integrity information, so prefer re-saving them with
    /// [`MtmlfQo::save_weights`] once loaded.
    pub fn load_weights_legacy(&mut self, path: impl AsRef<Path>) -> Result<()> {
        let bytes = fs::read(path).map_err(MtmlfError::from)?;
        if !bytes.starts_with(PAYLOAD_MAGIC) {
            return Err(MtmlfError::Corrupt(
                "not a legacy mtmlf weight payload (bad magic)".into(),
            ));
        }
        load_parameters(&bytes[..], &self.all_parameters()).map_err(MtmlfError::from)?;
        self.featurization().invalidate_embedding_cache();
        Ok(())
    }
}

/// Checks the envelope and returns the validated payload slice.
fn validate_envelope(bytes: &[u8]) -> Result<&[u8]> {
    if bytes.starts_with(PAYLOAD_MAGIC) {
        return Err(MtmlfError::Corrupt(
            "legacy headerless weight file (no length/checksum envelope); \
             load it explicitly with load_weights_legacy, then re-save"
                .into(),
        ));
    }
    if bytes.len() < HEADER_LEN || &bytes[..8] != WEIGHTS_MAGIC {
        return Err(MtmlfError::Corrupt(
            "not an mtmlf weight file (bad or truncated magic header)".into(),
        ));
    }
    let declared = u64::from_le_bytes(
        bytes[8..16]
            .try_into()
            .map_err(|_| MtmlfError::Corrupt("unreadable length field".into()))?,
    );
    let checksum = u64::from_le_bytes(
        bytes[16..24]
            .try_into()
            .map_err(|_| MtmlfError::Corrupt("unreadable checksum field".into()))?,
    );
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != declared {
        return Err(MtmlfError::Corrupt(format!(
            "truncated weight file: header declares {declared} payload bytes, found {}",
            payload.len()
        )));
    }
    let actual = fnv1a64(payload);
    if actual != checksum {
        return Err(MtmlfError::Corrupt(format!(
            "weight payload checksum mismatch: header {checksum:#018x}, computed {actual:#018x}"
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MtmlfConfig;
    use mtmlf_datagen::{
        generate_queries, imdb::ImdbScale, imdb_lite, label_workload, LabelConfig, WorkloadConfig,
    };

    #[test]
    fn weights_roundtrip_preserves_predictions() {
        let mut db = imdb_lite(9, ImdbScale { scale: 0.02 }).unwrap();
        db.analyze_all(8, 4);
        let queries = generate_queries(
            &db,
            &WorkloadConfig {
                count: 6,
                max_tables: 4,
                ..WorkloadConfig::default()
            },
            5,
        );
        let labeled = label_workload(&db, &queries, &LabelConfig::default()).unwrap();
        let cfg = MtmlfConfig {
            enc_queries: 15,
            enc_epochs: 2,
            epochs: 2,
            seed: 9,
            ..MtmlfConfig::tiny()
        };
        let mut trained = MtmlfQo::new(&db, cfg.clone()).unwrap();
        trained.train(&labeled).unwrap();
        let dir = std::env::temp_dir().join("mtmlf_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.bin");
        trained.save_weights(&path).unwrap();

        // A fresh model with the same config but different seed-derived
        // weights; after loading it must agree exactly.
        let mut fresh = MtmlfQo::new(&db, MtmlfConfig { seed: 77, ..cfg }).unwrap();
        let l = &labeled[0];
        let before = fresh.predict_nodes(&l.query, &l.plan).unwrap();
        fresh.load_weights(&path).unwrap();
        let after = fresh.predict_nodes(&l.query, &l.plan).unwrap();
        let reference = trained.predict_nodes(&l.query, &l.plan).unwrap();
        assert_ne!(before, reference, "different init predicts differently");
        assert_eq!(after, reference, "loaded weights reproduce predictions");
        let order_a = fresh.predict_join_order(&l.query, &l.plan).unwrap();
        let order_b = trained.predict_join_order(&l.query, &l.plan).unwrap();
        assert_eq!(order_a, order_b);
        std::fs::remove_file(&path).ok();
    }

    fn tiny_model(seed: u64) -> (MtmlfQo, std::path::PathBuf) {
        let mut db = imdb_lite(10, ImdbScale { scale: 0.02 }).unwrap();
        db.analyze_all(8, 4);
        let cfg = MtmlfConfig {
            enc_queries: 5,
            enc_epochs: 1,
            seed,
            ..MtmlfConfig::tiny()
        };
        let model = MtmlfQo::new(&db, cfg).unwrap();
        let dir = std::env::temp_dir().join(format!("mtmlf_persist_{seed}"));
        std::fs::create_dir_all(&dir).unwrap();
        (model, dir)
    }

    #[test]
    fn wrong_architecture_rejected() {
        let mut db = imdb_lite(10, ImdbScale { scale: 0.02 }).unwrap();
        db.analyze_all(8, 4);
        let small = MtmlfConfig {
            enc_queries: 5,
            enc_epochs: 1,
            seed: 1,
            ..MtmlfConfig::tiny()
        };
        let big = MtmlfConfig {
            d_model: 32,
            ..small.clone()
        };
        let a = MtmlfQo::new(&db, small).unwrap();
        let mut b = MtmlfQo::new(&db, big).unwrap();
        let dir = std::env::temp_dir().join("mtmlf_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.bin");
        a.save_weights(&path).unwrap();
        assert!(b.load_weights(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_corrupt_not_shape_error() {
        let (mut model, dir) = tiny_model(21);
        let path = dir.join("weights.bin");
        model.save_weights(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut mid-payload: the length check must fire before parsing.
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        match model.load_weights(&path) {
            Err(MtmlfError::Corrupt(msg)) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Header alone cut short: bad-magic path.
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(
            model.load_weights(&path),
            Err(MtmlfError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_fails_checksum() {
        let (mut model, dir) = tiny_model(22);
        let path = dir.join("weights.bin");
        model.save_weights(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = super::HEADER_LEN + (bytes.len() - super::HEADER_LEN) / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match model.load_weights(&path) {
            Err(MtmlfError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_headerless_file_rejected_with_pointer_then_loads_via_optin() {
        let (mut model, dir) = tiny_model(23);
        let path = dir.join("legacy.bin");
        // Write a headerless payload exactly as the pre-envelope format did.
        let mut payload = Vec::new();
        save_parameters(&mut payload, &model.all_parameters()).unwrap();
        std::fs::write(&path, &payload).unwrap();
        match model.load_weights(&path) {
            Err(MtmlfError::Corrupt(msg)) => {
                assert!(msg.contains("load_weights_legacy"), "{msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        model.load_weights_legacy(&path).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let (mut model, dir) = tiny_model(24);
        let path = dir.join("does_not_exist.bin");
        assert!(matches!(
            model.load_weights(&path),
            Err(MtmlfError::Io(_))
        ));
        assert!(matches!(
            model.load_weights_legacy(&path),
            Err(MtmlfError::Io(_))
        ));
    }

    #[test]
    fn fnv_vectors() {
        // Known FNV-1a 64 vectors.
        assert_eq!(super::fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(super::fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}

//! Model persistence: save and load MTMLF-QO weights.
//!
//! The weight file carries the parameter values of the featurization
//! module (per-table encoders) and of the transferable (S)/(T) modules, in
//! a stable order. The architecture (widths, depths, table count) is *not*
//! stored — it comes from the [`crate::MtmlfConfig`] and database used to
//! rebuild the model, and every shape is validated at load time.
//!
//! This realizes the paper's deployment story: the provider trains and
//! ships the (S)/(T) weights; the user instantiates the architecture
//! locally and loads them.

use crate::featurize::FeaturizationModule;
use crate::model::MtmlfQo;
use crate::Result;
use mtmlf_nn::layers::Module;
use mtmlf_nn::serialize::{load_parameters, save_parameters};
use mtmlf_nn::Var;
use std::fs::File;
use std::io::{self, BufReader, BufWriter};
use std::path::Path;

impl FeaturizationModule {
    /// All encoder parameters, in table order.
    pub fn parameters(&self) -> Vec<Var> {
        (0..self.table_count())
            .flat_map(|t| {
                self.encoder(mtmlf_storage::TableId(t as u32))
                    .map(|e| e.parameters())
                    .unwrap_or_default()
            })
            .collect()
    }
}

impl MtmlfQo {
    /// All parameters (featurization + shared + task modules), stable order.
    pub fn all_parameters(&self) -> Vec<Var> {
        let mut p = self.featurization().parameters();
        let (shared, heads, jo) = self.transferable_modules();
        p.extend(shared.parameters());
        p.extend(heads.parameters());
        p.extend(jo.parameters());
        p
    }

    /// Saves all weights to a file.
    pub fn save_weights(&self, path: impl AsRef<Path>) -> Result<()> {
        let file = File::create(path).map_err(io_err)?;
        save_parameters(BufWriter::new(file), &self.all_parameters()).map_err(io_err)
    }

    /// Loads weights saved by [`MtmlfQo::save_weights`] into this model.
    /// The model must have been built with the same configuration and
    /// database shape; mismatches are rejected.
    pub fn load_weights(&mut self, path: impl AsRef<Path>) -> Result<()> {
        let file = File::open(path).map_err(io_err)?;
        load_parameters(BufReader::new(file), &self.all_parameters()).map_err(io_err)
    }
}

fn io_err(e: io::Error) -> crate::MtmlfError {
    crate::MtmlfError::Opt(format!("weight file I/O: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MtmlfConfig;
    use mtmlf_datagen::{
        generate_queries, imdb::ImdbScale, imdb_lite, label_workload, LabelConfig, WorkloadConfig,
    };

    #[test]
    fn weights_roundtrip_preserves_predictions() {
        let mut db = imdb_lite(9, ImdbScale { scale: 0.02 });
        db.analyze_all(8, 4);
        let queries = generate_queries(
            &db,
            &WorkloadConfig {
                count: 6,
                max_tables: 4,
                ..WorkloadConfig::default()
            },
            5,
        );
        let labeled = label_workload(&db, &queries, &LabelConfig::default()).unwrap();
        let cfg = MtmlfConfig {
            enc_queries: 15,
            enc_epochs: 2,
            epochs: 2,
            seed: 9,
            ..MtmlfConfig::tiny()
        };
        let mut trained = MtmlfQo::new(&db, cfg.clone()).unwrap();
        trained.train(&labeled).unwrap();
        let dir = std::env::temp_dir().join("mtmlf_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.bin");
        trained.save_weights(&path).unwrap();

        // A fresh model with the same config but different seed-derived
        // weights; after loading it must agree exactly.
        let mut fresh = MtmlfQo::new(&db, MtmlfConfig { seed: 77, ..cfg }).unwrap();
        let l = &labeled[0];
        let before = fresh.predict_nodes(&l.query, &l.plan).unwrap();
        fresh.load_weights(&path).unwrap();
        let after = fresh.predict_nodes(&l.query, &l.plan).unwrap();
        let reference = trained.predict_nodes(&l.query, &l.plan).unwrap();
        assert_ne!(before, reference, "different init predicts differently");
        assert_eq!(after, reference, "loaded weights reproduce predictions");
        let order_a = fresh.predict_join_order(&l.query, &l.plan).unwrap();
        let order_b = trained.predict_join_order(&l.query, &l.plan).unwrap();
        assert_eq!(order_a, order_b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_architecture_rejected() {
        let mut db = imdb_lite(10, ImdbScale { scale: 0.02 });
        db.analyze_all(8, 4);
        let small = MtmlfConfig {
            enc_queries: 5,
            enc_epochs: 1,
            seed: 1,
            ..MtmlfConfig::tiny()
        };
        let big = MtmlfConfig {
            d_model: 32,
            ..small.clone()
        };
        let a = MtmlfQo::new(&db, small).unwrap();
        let mut b = MtmlfQo::new(&db, big).unwrap();
        let dir = std::env::temp_dir().join("mtmlf_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.bin");
        a.save_weights(&path).unwrap();
        assert!(b.load_weights(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}

//! Plan-lifecycle tracing: where each request's time went.
//!
//! [`MetricsSnapshot`](crate::metrics::MetricsSnapshot) counters say how
//! *often* things happen; this module says *where the time went* and *what
//! happened to request X*. Every request admitted by a tracing-enabled
//! [`PlannerService`](crate::serve::PlannerService) is decomposed into
//! [`Stage`] spans — fingerprinting, cache lookup, queueing, featurization,
//! the packed transformer forwards, beam decode, retry backoff, classical
//! fallback — aggregated into per-stage latency histograms plus a bounded
//! ring buffer of the last N complete [`RequestTrace`]s.
//!
//! Determinism (lint rule L2): this module never reads the wall clock.
//! Every timestamp flows through the injectable [`Clock`] carried by
//! [`TraceConfig`], so tests can drive trace time with a
//! [`ManualClock`](crate::resilience::ManualClock) and replay exactly. The
//! L2 checker enforces this shape: in `trace.rs`/`metrics.rs` even naming a
//! std clock type is a violation.
//!
//! Cost model: tracing is opt-in per service
//! (`PlannerService::builder(..).tracing(cfg)`). When it is off the service
//! holds no `Tracer` at all and the per-request cost is one `Option`
//! discriminant check — no clock reads, no allocation. When on, each
//! request performs a handful of monotonic clock reads and one small `Vec`
//! of spans; the measured end-to-end overhead is recorded in
//! `BENCH_serve.json` (see DESIGN.md §10).

use crate::resilience::{BreakerState, Clock};
use crate::serve::{LatencyHistogram, PlanSource};
use mtmlf_query::Query;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// A lifecycle stage of one planning request.
///
/// Batch-level stages (`Featurize` … `Beam`) are measured once per worker
/// batch and attributed to every request in that batch: requests in one
/// batch *share* the packed forward, so the batch's stage time is each
/// member's stage time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Canonical fingerprinting of the query (client thread).
    Fingerprint = 0,
    /// Plan-cache probe (client thread; re-probes on the worker are folded
    /// into the same stage).
    CacheLookup = 1,
    /// Time between admission to the request queue and a worker dequeuing
    /// the job (includes batch linger).
    Queue = 2,
    /// Plan serialization into node-embedding sequences (both the initial
    /// plan and the chosen plan's re-serialization).
    Featurize = 3,
    /// The packed `Trans_Share` forward over the initial plans.
    Encode = 4,
    /// The packed estimation forward over the chosen plans plus the
    /// card/cost heads.
    Forward = 5,
    /// Legality-pruned beam decode of the join orders.
    Beam = 6,
    /// Deterministic backoff sleeps between retried forwards.
    Retry = 7,
    /// The classical fallback planner (per request, not per batch).
    Fallback = 8,
}

impl Stage {
    /// Number of stages (array dimension for per-stage aggregates).
    pub const COUNT: usize = 9;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Fingerprint,
        Stage::CacheLookup,
        Stage::Queue,
        Stage::Featurize,
        Stage::Encode,
        Stage::Forward,
        Stage::Beam,
        Stage::Retry,
        Stage::Fallback,
    ];

    /// Stable snake_case name, used as the Prometheus `stage` label.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Fingerprint => "fingerprint",
            Stage::CacheLookup => "cache_lookup",
            Stage::Queue => "queue",
            Stage::Featurize => "featurize",
            Stage::Encode => "encode",
            Stage::Forward => "forward",
            Stage::Beam => "beam",
            Stage::Retry => "retry",
            Stage::Fallback => "fallback",
        }
    }

    /// Index into [`Stage::COUNT`]-sized arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One timed stage within a request trace. `start`/`end` are offsets from
/// the tracing [`Clock`]'s epoch, not wall-clock times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpan {
    /// Which stage this span measures.
    pub stage: Stage,
    /// Stage entry, as clock offset.
    pub start: Duration,
    /// Stage exit, as clock offset (`>= start`).
    pub end: Duration,
}

impl StageSpan {
    /// The span's duration.
    pub fn duration(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }
}

/// How a traced request left the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Answered with a plan from this source.
    Served(PlanSource),
    /// Shed at admission (queue full).
    Shed,
    /// Dequeued after its deadline had passed; dropped before the forward.
    Expired,
    /// Returned a typed error (model failure with no fallback, shutdown
    /// refusal, …).
    Error,
}

/// One complete request trace, as kept in the [`Tracer`]'s ring buffer.
///
/// The trace is completed by whichever thread finished the request — the
/// client thread for cache hits and sheds, a worker for everything queued —
/// so `completed_at` marks when the service *produced* the response, not
/// when the client woke up from its reply channel (a few microseconds
/// later). A client that times out leaves its trace to the worker, which
/// completes it with the service-side outcome once it processes the job.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// Monotonically increasing per-service request id.
    pub id: u64,
    /// When `plan` accepted the request (clock offset).
    pub accepted_at: Duration,
    /// When the trace was completed (clock offset).
    pub completed_at: Duration,
    /// How the request left the service.
    pub outcome: TraceOutcome,
    /// Circuit-breaker state observed at admission.
    pub breaker: BreakerState,
    /// Request-queue depth observed at admission.
    pub queue_depth: usize,
    /// Size of the worker batch that planned this request (`0` for
    /// requests that never reached a batch: cache hits, sheds, expiries).
    pub batch_size: usize,
    /// Stage spans in the order they were recorded.
    pub spans: Vec<StageSpan>,
    /// The planned query, captured for requests that took the model path so
    /// the lifecycle layer can replay the recent-request window against a
    /// candidate model ([`crate::lifecycle`]). `None` for cache hits, sheds,
    /// and untraced paths — those carry no replayable input. Stored behind
    /// an `Arc` so capture is one pointer clone per request.
    pub query: Option<Arc<Query>>,
    /// The model's cardinality estimate for the served plan, when the
    /// request was answered by the model. Paired with an executed actual
    /// cardinality this yields the q-error samples the drift detector
    /// consumes.
    pub est_card: Option<f64>,
}

impl RequestTrace {
    /// Total time attributed to `stage` (a stage may have several spans,
    /// e.g. `Featurize` runs once per serialization pass).
    pub fn stage_total(&self, stage: Stage) -> Duration {
        self.spans
            .iter()
            .filter(|s| s.stage == stage)
            .map(StageSpan::duration)
            .fold(Duration::ZERO, |a, d| a.saturating_add(d))
    }

    /// Whether the recorded spans are well-formed: starts are
    /// monotonically non-decreasing in recording order, every span ends at
    /// or after it starts, and all spans lie within
    /// `[accepted_at, completed_at]`.
    pub fn is_monotonic(&self) -> bool {
        let mut prev_start = self.accepted_at;
        for span in &self.spans {
            if span.start < prev_start || span.end < span.start || span.end > self.completed_at {
                return false;
            }
            prev_start = span.start;
        }
        self.completed_at >= self.accepted_at
    }

    /// End-to-end service-side duration.
    pub fn total(&self) -> Duration {
        self.completed_at.saturating_sub(self.accepted_at)
    }
}

/// Tracing configuration for `PlannerService::builder(..).tracing(..)`.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// How many complete [`RequestTrace`]s the ring buffer retains.
    pub ring_capacity: usize,
    /// The monotonic time source spans are stamped with. Defaults to
    /// [`SystemClock`](crate::resilience::SystemClock); tests inject a
    /// [`ManualClock`](crate::resilience::ManualClock).
    pub clock: Arc<dyn Clock>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            ring_capacity: 128,
            clock: Arc::new(crate::resilience::SystemClock::new()),
        }
    }
}

/// Per-stage aggregate mirror (atomics, updated by `TraceBuilder::finish`).
struct StageAgg {
    buckets: [AtomicU64; 32],
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl StageAgg {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    fn record(&self, nanos: u64) {
        self.buckets[LatencyHistogram::bucket(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            total_nanos: self.total_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// The per-service trace sink: per-stage histograms plus a bounded ring
/// buffer of complete request traces. Shared between client threads and
/// workers; all methods are thread-safe.
pub struct Tracer {
    clock: Arc<dyn Clock>,
    next_id: AtomicU64,
    completed: AtomicU64,
    stages: [StageAgg; Stage::COUNT],
    ring_capacity: usize,
    ring: Mutex<VecDeque<RequestTrace>>,
}

impl Tracer {
    /// Builds a tracer from its config.
    pub fn new(config: &TraceConfig) -> Self {
        Self {
            clock: Arc::clone(&config.clock),
            next_id: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            stages: std::array::from_fn(|_| StageAgg::new()),
            ring_capacity: config.ring_capacity,
            ring: Mutex::new(VecDeque::with_capacity(config.ring_capacity.min(1024))),
        }
    }

    /// Current clock offset.
    pub fn now(&self) -> Duration {
        self.clock.now()
    }

    /// A handle to the tracer's clock (for stamping spans off-thread).
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Opens a trace for one accepted request, stamping the admission-time
    /// breaker state and queue depth.
    pub fn begin(&self, breaker: BreakerState, queue_depth: usize) -> TraceBuilder {
        TraceBuilder {
            clock: Arc::clone(&self.clock),
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            accepted_at: self.clock.now(),
            breaker,
            queue_depth,
            queued_at: None,
            batch_size: 0,
            spans: Vec::new(),
            query: None,
            est_card: None,
        }
    }

    /// Traces completed so far (sheds and errors included). Unlike the ring
    /// buffer this never forgets, so tests can audit "every accepted
    /// request produced exactly one complete trace" without sizing the ring
    /// to the workload.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// The last N complete traces, oldest first.
    pub fn recent(&self) -> Vec<RequestTrace> {
        let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.iter().cloned().collect()
    }

    /// Point-in-time per-stage latency histograms, indexed by
    /// [`Stage::index`]. Each completed trace contributes at most one
    /// sample per stage: the total across that trace's spans of the stage.
    pub fn stage_histograms(&self) -> [LatencyHistogram; Stage::COUNT] {
        std::array::from_fn(|i| self.stages[i].snapshot())
    }

    fn complete(&self, trace: RequestTrace) {
        for stage in Stage::ALL {
            let mut total: u64 = 0;
            let mut present = false;
            for span in trace.spans.iter().filter(|s| s.stage == stage) {
                present = true;
                total = total.saturating_add(
                    u64::try_from(span.duration().as_nanos()).unwrap_or(u64::MAX),
                );
            }
            if present {
                self.stages[stage.index()].record(total);
            }
        }
        self.completed.fetch_add(1, Ordering::Relaxed);
        if self.ring_capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() >= self.ring_capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("completed", &self.completed())
            .field("ring_capacity", &self.ring_capacity)
            .finish_non_exhaustive()
    }
}

/// An in-flight request trace. Created by [`Tracer::begin`] on the client
/// thread; for queued requests it travels inside the job to the worker,
/// which appends the batch-stage spans and completes it.
#[derive(Debug)]
pub struct TraceBuilder {
    clock: Arc<dyn Clock>,
    id: u64,
    accepted_at: Duration,
    breaker: BreakerState,
    queue_depth: usize,
    queued_at: Option<Duration>,
    batch_size: usize,
    spans: Vec<StageSpan>,
    query: Option<Arc<Query>>,
    est_card: Option<f64>,
}

impl TraceBuilder {
    /// Current clock offset (same clock the spans are stamped with).
    pub fn now(&self) -> Duration {
        self.clock.now()
    }

    /// Runs `f` as one `stage` span.
    pub fn timed<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = self.clock.now();
        let out = f();
        let end = self.clock.now();
        self.spans.push(StageSpan { stage, start, end });
        out
    }

    /// Records a pre-measured span.
    pub fn record(&mut self, stage: Stage, start: Duration, end: Duration) {
        self.spans.push(StageSpan { stage, start, end });
    }

    /// Marks the request as entering the queue; [`TraceBuilder::close_queue`]
    /// later turns the pair into a [`Stage::Queue`] span.
    pub fn mark_queued(&mut self) {
        self.queued_at = Some(self.clock.now());
    }

    /// Closes the queue span opened by [`TraceBuilder::mark_queued`] at
    /// `dequeued_at`. No-op if the request never queued.
    pub fn close_queue(&mut self, dequeued_at: Duration) {
        if let Some(queued_at) = self.queued_at.take() {
            self.spans.push(StageSpan {
                stage: Stage::Queue,
                start: queued_at,
                end: dequeued_at.max(queued_at),
            });
        }
    }

    /// Records how many requests shared this request's worker batch.
    pub fn set_batch_size(&mut self, batch_size: usize) {
        self.batch_size = batch_size;
    }

    /// Attaches the request's query so the completed trace is replayable by
    /// the lifecycle layer's shadow evaluator. Called on the model path
    /// (cache miss) only; one `Arc` clone, no deep copy.
    pub fn attach_query(&mut self, query: Arc<Query>) {
        self.query = Some(query);
    }

    /// Records the model's cardinality estimate for the served plan.
    pub fn set_est_card(&mut self, est_card: f64) {
        self.est_card = Some(est_card);
    }

    /// Appends pre-measured spans (the batch-level stage spans).
    pub fn extend(&mut self, spans: &[StageSpan]) {
        self.spans.extend_from_slice(spans);
    }

    /// Completes the trace into `tracer` with its final outcome.
    pub fn finish(mut self, tracer: &Tracer, outcome: TraceOutcome) {
        // A trace abandoned mid-queue (shed after mark_queued) still closes
        // its span so the invariant "every complete trace is monotonic"
        // holds on every path.
        let now = self.clock.now();
        self.close_queue(now);
        tracer.complete(RequestTrace {
            id: self.id,
            accepted_at: self.accepted_at,
            completed_at: now,
            outcome,
            breaker: self.breaker,
            queue_depth: self.queue_depth,
            batch_size: self.batch_size,
            spans: self.spans,
            query: self.query,
            est_card: self.est_card,
        });
    }
}

/// A span collector for batch-level work shared by several requests
/// ([`crate::batch::plan_batch_traced`], retry backoff, fallback calls).
/// When disabled it performs no clock reads and keeps no spans, so the
/// untraced planning path pays nothing.
#[derive(Debug)]
pub struct StageRecorder {
    clock: Option<Arc<dyn Clock>>,
    spans: Vec<StageSpan>,
}

impl StageRecorder {
    /// A recorder that measures nothing (zero clock reads).
    pub fn disabled() -> Self {
        Self {
            clock: None,
            spans: Vec::new(),
        }
    }

    /// A recorder stamping spans with `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock: Some(clock),
            spans: Vec::new(),
        }
    }

    /// Whether spans are being collected.
    pub fn enabled(&self) -> bool {
        self.clock.is_some()
    }

    /// Current clock offset ([`Duration::ZERO`] when disabled).
    pub fn now(&self) -> Duration {
        match &self.clock {
            Some(clock) => clock.now(),
            None => Duration::ZERO,
        }
    }

    /// Runs `f`, recording it as one `stage` span when enabled.
    pub fn timed<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        match &self.clock {
            Some(clock) => {
                let clock = Arc::clone(clock);
                let start = clock.now();
                let out = f();
                let end = clock.now();
                self.spans.push(StageSpan { stage, start, end });
                out
            }
            None => f(),
        }
    }

    /// Records a pre-measured span (only when enabled).
    pub fn record(&mut self, stage: Stage, start: Duration, end: Duration) {
        if self.enabled() {
            self.spans.push(StageSpan { stage, start, end });
        }
    }

    /// The collected spans, in recording order.
    pub fn spans(&self) -> &[StageSpan] {
        &self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::ManualClock;

    fn manual_tracer(ring: usize) -> (Tracer, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::new(&TraceConfig {
            ring_capacity: ring,
            clock: Arc::clone(&clock) as Arc<dyn Clock>,
        });
        (tracer, clock)
    }

    #[test]
    fn spans_aggregate_per_stage_and_land_in_the_ring() {
        let (tracer, clock) = manual_tracer(8);
        let mut tb = tracer.begin(BreakerState::Closed, 3);
        tb.timed(Stage::Fingerprint, || clock.advance(Duration::from_nanos(100)));
        tb.timed(Stage::CacheLookup, || clock.advance(Duration::from_nanos(50)));
        tb.mark_queued();
        clock.advance(Duration::from_nanos(200));
        tb.close_queue(clock.now());
        // Two Featurize spans fold into one histogram sample.
        tb.timed(Stage::Featurize, || clock.advance(Duration::from_nanos(30)));
        tb.timed(Stage::Featurize, || clock.advance(Duration::from_nanos(20)));
        tb.set_batch_size(2);
        tb.finish(&tracer, TraceOutcome::Served(PlanSource::Model));

        assert_eq!(tracer.completed(), 1);
        let traces = tracer.recent();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.id, 0);
        assert_eq!(t.queue_depth, 3);
        assert_eq!(t.batch_size, 2);
        assert_eq!(t.outcome, TraceOutcome::Served(PlanSource::Model));
        assert!(t.is_monotonic(), "{t:?}");
        assert_eq!(t.stage_total(Stage::Fingerprint), Duration::from_nanos(100));
        assert_eq!(t.stage_total(Stage::Queue), Duration::from_nanos(200));
        assert_eq!(t.stage_total(Stage::Featurize), Duration::from_nanos(50));

        let hists = tracer.stage_histograms();
        assert_eq!(hists[Stage::Featurize.index()].count, 1);
        assert_eq!(hists[Stage::Featurize.index()].total_nanos, 50);
        assert_eq!(hists[Stage::Featurize.index()].max_nanos, 50);
        assert_eq!(hists[Stage::Queue.index()].count, 1);
        assert_eq!(hists[Stage::Fallback.index()].count, 0);
    }

    #[test]
    fn ring_buffer_is_bounded_and_completed_counter_is_not() {
        let (tracer, _clock) = manual_tracer(2);
        for _ in 0..5 {
            let tb = tracer.begin(BreakerState::Closed, 0);
            tb.finish(&tracer, TraceOutcome::Shed);
        }
        assert_eq!(tracer.completed(), 5);
        let traces = tracer.recent();
        assert_eq!(traces.len(), 2, "ring keeps only the last N");
        assert_eq!(traces[0].id, 3);
        assert_eq!(traces[1].id, 4);
    }

    #[test]
    fn disabled_recorder_reads_no_clock_and_keeps_no_spans() {
        let mut rec = StageRecorder::disabled();
        assert!(!rec.enabled());
        assert_eq!(rec.now(), Duration::ZERO);
        let v = rec.timed(Stage::Forward, || 42);
        assert_eq!(v, 42);
        rec.record(Stage::Beam, Duration::ZERO, Duration::from_nanos(5));
        assert!(rec.spans().is_empty());
    }

    #[test]
    fn enabled_recorder_stamps_spans_with_the_injected_clock() {
        let clock = Arc::new(ManualClock::new());
        let mut rec = StageRecorder::new(Arc::clone(&clock) as Arc<dyn Clock>);
        clock.advance(Duration::from_nanos(10));
        rec.timed(Stage::Encode, || clock.advance(Duration::from_nanos(7)));
        assert_eq!(rec.spans().len(), 1);
        let span = rec.spans()[0];
        assert_eq!(span.stage, Stage::Encode);
        assert_eq!(span.start, Duration::from_nanos(10));
        assert_eq!(span.end, Duration::from_nanos(17));
        assert_eq!(span.duration(), Duration::from_nanos(7));
    }

    #[test]
    fn finish_closes_a_dangling_queue_span() {
        let (tracer, clock) = manual_tracer(4);
        let mut tb = tracer.begin(BreakerState::Open, 1);
        tb.mark_queued();
        clock.advance(Duration::from_nanos(90));
        tb.finish(&tracer, TraceOutcome::Shed);
        let t = &tracer.recent()[0];
        assert_eq!(t.stage_total(Stage::Queue), Duration::from_nanos(90));
        assert!(t.is_monotonic());
        assert_eq!(t.breaker, BreakerState::Open);
    }
}

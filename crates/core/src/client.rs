//! The unified client surface for plan serving.
//!
//! Every way of getting a plan out of this crate — the single-threaded
//! [`MtmlfQo`](crate::model::MtmlfQo) facade, a single-node
//! [`PlannerService`](crate::serve::PlannerService), or a sharded
//! [`ClusterService`](crate::cluster::ClusterService) — speaks the same
//! request/response shape and implements the same object-safe
//! [`PlanClient`] trait. Benches, tests, and examples written against
//! `&dyn PlanClient` are mode-agnostic: swapping a facade for a cluster is
//! a constructor change, not a call-site change.
//!
//! The shapes live here (not in [`crate::serve`]) so the client vocabulary
//! has no dependency on any particular serving implementation; `serve`
//! re-exports them for path stability.

use crate::Result;
use mtmlf_query::{JoinOrder, Query};
use std::time::Duration;

/// A planning request. Convertible from a bare [`Query`]; a struct so the
/// API can grow fields without breaking callers.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// The query to plan.
    pub query: Query,
    /// Time budget for this request, measured from the `plan` call. When it
    /// expires the caller gets [`MtmlfError::Timeout`](crate::MtmlfError::Timeout)
    /// and any work still queued for it is dropped before the forward.
    /// `None` falls back to the serving side's default deadline.
    pub deadline: Option<Duration>,
    /// Per-request trace opt-in/out. `None` follows the serving side's
    /// configuration (traced whenever the service was built with
    /// `.tracing(..)`); `Some(false)` opts this request out of tracing even
    /// on a tracing service; `Some(true)` requests a trace (a no-op when
    /// the service holds no tracer).
    pub trace: Option<bool>,
}

impl PlanRequest {
    /// A request with no per-request deadline or trace override.
    pub fn new(query: Query) -> Self {
        Self {
            query,
            deadline: None,
            trace: None,
        }
    }

    /// Sets this request's deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets this request's trace opt-in (`true`) or opt-out (`false`).
    pub fn with_tracing(mut self, trace: bool) -> Self {
        self.trace = Some(trace);
        self
    }
}

impl From<Query> for PlanRequest {
    fn from(query: Query) -> Self {
        Self::new(query)
    }
}

/// Where a response came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// Replayed from the plan cache without running the model.
    Cache,
    /// Computed by a (possibly batched) model forward.
    Model,
    /// Computed by the classical
    /// [`FallbackPlanner`](crate::resilience::FallbackPlanner) because the
    /// model path failed or the circuit breaker rejected it.
    Fallback,
}

/// The durable payload of a planned query: what the plan cache stores and
/// what cluster replicas exchange when warming each other.
///
/// A [`PlanResponse`] is a `PlanPayload` plus per-call context (source,
/// latency); the payload is context-free and safe to replay.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanPayload {
    /// The chosen join order (always legal for the query).
    pub join_order: JoinOrder,
    /// Predicted root cardinality of the chosen plan.
    pub est_card: f64,
    /// Predicted total cost of the chosen plan.
    pub est_cost: f64,
}

impl PlanPayload {
    /// Assembles a payload from the `(order, card, cost)` triple the model
    /// and fallback planners return.
    pub fn new(join_order: JoinOrder, est_card: f64, est_cost: f64) -> Self {
        Self {
            join_order,
            est_card,
            est_cost,
        }
    }
}

/// A planned query as returned by any [`PlanClient`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanResponse {
    /// The chosen join order (always legal for the query).
    pub join_order: JoinOrder,
    /// Predicted root cardinality of the chosen plan.
    pub est_card: f64,
    /// Predicted total cost of the chosen plan.
    pub est_cost: f64,
    /// Whether the answer was cached, freshly computed, or degraded.
    pub source: PlanSource,
    /// End-to-end latency observed by the calling thread, including any
    /// queueing and batching delay.
    pub latency: Duration,
}

impl PlanResponse {
    /// Builds a response from a stored payload plus call context.
    pub fn from_payload(payload: PlanPayload, source: PlanSource, latency: Duration) -> Self {
        Self {
            join_order: payload.join_order,
            est_card: payload.est_card,
            est_cost: payload.est_cost,
            source,
            latency,
        }
    }

    /// The context-free payload of this response (what a cache would store).
    pub fn payload(&self) -> PlanPayload {
        PlanPayload {
            join_order: self.join_order.clone(),
            est_card: self.est_card,
            est_cost: self.est_cost,
        }
    }
}

/// The mode-agnostic planning interface.
///
/// Implemented by [`MtmlfQo`](crate::model::MtmlfQo) (single-threaded
/// facade), [`PlannerService`](crate::serve::PlannerService) (single node),
/// and [`ClusterService`](crate::cluster::ClusterService) (sharded
/// replicas). Object-safe: callers can hold `Arc<dyn PlanClient>` and stay
/// oblivious to the serving topology.
///
/// Contract shared by every implementation:
///
/// * **Exactly one result per request** — a call returns one
///   [`PlanResponse`] or one typed error, never hangs, never double-answers.
/// * **Deadlines are honored** — a request whose deadline expires gets
///   [`MtmlfError::Timeout`](crate::MtmlfError::Timeout).
/// * **Payload fidelity** — for a given query, model-path responses carry
///   the same `(join_order, est_card, est_cost)` the facade would produce.
pub trait PlanClient: Send + Sync {
    /// Plans one query.
    fn plan(&self, request: PlanRequest) -> Result<PlanResponse>;

    /// Plans a batch of queries, one result per request in order.
    ///
    /// The default implementation loops over [`PlanClient::plan`];
    /// implementations with a batched fast path (the service's cross-query
    /// batching, the cluster's per-shard fan-out) override it.
    fn plan_batch(&self, requests: Vec<PlanRequest>) -> Vec<Result<PlanResponse>> {
        requests.into_iter().map(|r| self.plan(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::MtmlfError;
    use mtmlf_storage::TableId;
    use std::collections::BTreeMap;

    fn query() -> Query {
        Query::new(vec![TableId(0)], vec![], BTreeMap::new()).expect("query")
    }

    #[test]
    fn request_builders_compose() {
        let r = PlanRequest::new(query())
            .with_deadline(Duration::from_millis(5))
            .with_tracing(false);
        assert_eq!(r.deadline, Some(Duration::from_millis(5)));
        assert_eq!(r.trace, Some(false));
        let bare: PlanRequest = query().into();
        assert_eq!(bare.deadline, None);
        assert_eq!(bare.trace, None);
    }

    #[test]
    fn payload_roundtrips_through_response() {
        let payload = PlanPayload::new(JoinOrder::LeftDeep(vec![TableId(0)]), 10.0, 3.5);
        let resp = PlanResponse::from_payload(
            payload.clone(),
            PlanSource::Model,
            Duration::from_micros(7),
        );
        assert_eq!(resp.est_card, 10.0);
        assert_eq!(resp.source, PlanSource::Model);
        assert_eq!(resp.payload(), payload);
    }

    #[test]
    fn plan_client_is_object_safe_and_batch_defaults_to_loop() {
        struct Fixed(PlanPayload);
        impl PlanClient for Fixed {
            fn plan(&self, _request: PlanRequest) -> Result<PlanResponse> {
                Ok(PlanResponse::from_payload(
                    self.0.clone(),
                    PlanSource::Model,
                    Duration::ZERO,
                ))
            }
        }
        let client: Box<dyn PlanClient> = Box::new(Fixed(PlanPayload::new(
            JoinOrder::LeftDeep(vec![TableId(0)]),
            1.0,
            2.0,
        )));
        let out = client.plan_batch(vec![query().into(), query().into()]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.is_ok()));

        struct Failing;
        impl PlanClient for Failing {
            fn plan(&self, _request: PlanRequest) -> Result<PlanResponse> {
                Err(MtmlfError::Timeout)
            }
        }
        let failing: &dyn PlanClient = &Failing;
        let out = failing.plan_batch(vec![query().into()]);
        assert!(matches!(out[0], Err(MtmlfError::Timeout)));
    }
}

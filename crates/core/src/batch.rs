//! Cross-query batched planning.
//!
//! [`plan_batch`] plans several queries through one packed model forward per
//! stage instead of one forward per query: every query's plan nodes are
//! concatenated row-wise and pushed through `Trans_Share` under a
//! block-diagonal attention mask, so the projection and every transformer
//! linear run as a single large matmul. The mask keeps each query's nodes
//! attending only to themselves, which makes every output row bitwise
//! identical to the sequential [`MtmlfQo::plan_with_estimates`] path — the
//! property the serving layer's concurrency tests pin down.
//!
//! Failures are per-query: one query with no legal order (or too many
//! tables) yields an `Err` in its slot without poisoning the rest of the
//! batch.

use crate::beam::beam_search;
use crate::model::MtmlfQo;
use crate::serialize::{serialize_plan, SerializedPlan};
use crate::trace::{Stage, StageRecorder};
use crate::train::table_representations;
use crate::{MtmlfError, Result};
use mtmlf_nn::loss::log_pred_to_estimate;
use mtmlf_nn::{Matrix, Var};
use mtmlf_query::{JoinOrder, Query};

/// The outcome of planning one query: the chosen join order plus the
/// model's root cardinality and cost estimates for that plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedQuery {
    /// The legality-constrained beam search's best join order.
    pub join_order: JoinOrder,
    /// Predicted result cardinality of the chosen plan's root.
    pub est_card: f64,
    /// Predicted total cost of the chosen plan.
    pub est_cost: f64,
}

/// Plans every query in `queries`, batching the model forwards.
///
/// The result vector is index-aligned with the input; each slot is exactly
/// what [`MtmlfQo::plan_with_estimates`] would return (bitwise, including
/// the `f64` estimates) for that query alone.
pub fn plan_batch(model: &MtmlfQo, queries: &[Query]) -> Vec<Result<PlannedQuery>> {
    let mut recorder = StageRecorder::disabled();
    plan_batch_traced(model, queries, &mut recorder)
}

/// [`plan_batch`], with each pipeline stage recorded into `recorder`
/// ([`Stage::Featurize`] for both serialization passes, [`Stage::Encode`]
/// for the first packed forward, [`Stage::Beam`] for the decode, and
/// [`Stage::Forward`] for the estimation forward plus heads). With a
/// disabled recorder this *is* `plan_batch`: the stage closures run
/// unchanged and no clock is read.
pub fn plan_batch_traced(
    model: &MtmlfQo,
    queries: &[Query],
    recorder: &mut StageRecorder,
) -> Vec<Result<PlannedQuery>> {
    // The whole batched pipeline runs under the model's kernel config; the
    // kernels are bitwise-equivalent across configs, so the batched ==
    // sequential guarantee below is unaffected by tuning.
    mtmlf_nn::kernel::scoped(model.config().kernel, || {
        plan_batch_inner(model, queries, recorder)
    })
}

fn plan_batch_inner(
    model: &MtmlfQo,
    queries: &[Query],
    recorder: &mut StageRecorder,
) -> Vec<Result<PlannedQuery>> {
    let config = model.config();
    let mut results: Vec<Option<Result<PlannedQuery>>> = Vec::with_capacity(queries.len());

    // Stage A: serialize each query's deterministic initial plan. Pure CPU
    // work; a failure here retires that query from the batch.
    let mut serialized: Vec<Option<SerializedPlan>> = Vec::with_capacity(queries.len());
    recorder.timed(Stage::Featurize, || {
        for query in queries {
            match model
                .initial_plan(query)
                .and_then(|plan| serialize_plan(model.featurization(), query, &plan, config))
            {
                Ok(s) => {
                    serialized.push(Some(s));
                    results.push(None);
                }
                Err(e) => {
                    serialized.push(None);
                    results.push(Some(Err(e)));
                }
            }
        }
    });

    // One packed forward through (S) for all live queries, then a per-query
    // beam decode over each query's slice of the output.
    let live: Vec<usize> = (0..queries.len())
        .filter(|&i| serialized[i].is_some())
        .collect();
    let features: Vec<&Matrix> = live
        .iter()
        .filter_map(|&i| serialized[i].as_ref().map(|s| &s.features))
        .collect();
    let shared_a = recorder.timed(Stage::Encode, || {
        model.shared_module().forward_batch(&features)
    });

    let mut chosen: Vec<(usize, JoinOrder)> = Vec::with_capacity(live.len());
    recorder.timed(Stage::Beam, || {
        // Serving must emit executable left-deep orders: legality pruning
        // is forced on regardless of the configured default. With
        // `beam.batch` every step of every live query's beam is scored in
        // ONE packed decoder forward (`beam_search_multi`); otherwise the
        // queries decode one at a time. Both are bitwise-identical.
        let beam_config = config.beam.constrained().left_deep();
        let jo = model.jo_module();
        let mut decoded: Vec<(usize, &SerializedPlan, Vec<crate::beam::BeamCandidate>)> =
            Vec::with_capacity(live.len());
        if beam_config.batch {
            let mut plans: Vec<(usize, &SerializedPlan)> = Vec::with_capacity(live.len());
            let mut caches = Vec::with_capacity(live.len());
            let mut graphs = Vec::with_capacity(live.len());
            for (&i, s_out) in live.iter().zip(&shared_a) {
                let Some(s) = serialized[i].as_ref() else {
                    continue;
                };
                let table_reps = table_representations(s_out, &s.scan_node_of_slot);
                caches.push(jo.decode_cache(s_out, &table_reps));
                graphs.push(&s.graph);
                plans.push((i, s));
            }
            let all = crate::beam::beam_search_multi(jo, &caches, &graphs, &beam_config);
            for ((i, s), candidates) in plans.into_iter().zip(all) {
                decoded.push((i, s, candidates));
            }
        } else {
            for (&i, s_out) in live.iter().zip(&shared_a) {
                let Some(s) = serialized[i].as_ref() else {
                    continue;
                };
                let table_reps = table_representations(s_out, &s.scan_node_of_slot);
                let candidates =
                    beam_search(jo, s_out, &table_reps, &s.graph, &beam_config);
                decoded.push((i, s, candidates));
            }
        }
        for (i, s, candidates) in decoded {
            match candidates.first() {
                Some(best) => chosen.push((
                    i,
                    JoinOrder::LeftDeep(
                        best.slots.iter().map(|&slot| s.table_slots[slot]).collect(),
                    ),
                )),
                None => results[i] = Some(Err(MtmlfError::NoLegalOrder)),
            }
        }
    });

    // Stage B: serialize the *chosen* plans and estimate them with one more
    // packed forward; the row-wise heads run once over all plans' rows and
    // each plan's root estimate is the last row of its segment.
    let mut stage_b: Vec<(usize, JoinOrder, SerializedPlan)> = Vec::with_capacity(chosen.len());
    recorder.timed(Stage::Featurize, || {
        for (i, order) in chosen {
            let step = (|| -> Result<SerializedPlan> {
                let plan = order.to_plan()?;
                serialize_plan(model.featurization(), &queries[i], &plan, config)
            })();
            match step {
                Ok(s) => stage_b.push((i, order, s)),
                Err(e) => results[i] = Some(Err(e)),
            }
        }
    });

    recorder.timed(Stage::Forward, || {
        let features_b: Vec<&Matrix> = stage_b.iter().map(|(_, _, s)| &s.features).collect();
        let shared_b = model.shared_module().forward_batch(&features_b);
        if !shared_b.is_empty() {
            let lens: Vec<usize> = shared_b.iter().map(|v| v.shape().0).collect();
            let packed = Var::concat_rows(&shared_b);
            let cards = model.heads_module().card(&packed).to_matrix();
            let costs = model.heads_module().cost(&packed).to_matrix();
            let mut offset = 0;
            for ((i, order, _), len) in stage_b.into_iter().zip(lens) {
                let root = offset + len - 1;
                offset += len;
                results[i] = Some(Ok(PlannedQuery {
                    join_order: order,
                    est_card: log_pred_to_estimate(cards.get(root, 0)),
                    est_cost: log_pred_to_estimate(costs.get(root, 0)),
                }));
            }
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                Err(MtmlfError::Internal(
                    "batched planner left a query slot unresolved".into(),
                ))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MtmlfConfig;
    use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};

    fn setup() -> (MtmlfQo, Vec<Query>) {
        let mut db = imdb_lite(31, ImdbScale { scale: 0.02 }).unwrap();
        db.analyze_all(8, 4);
        let cfg = MtmlfConfig {
            enc_queries: 10,
            enc_epochs: 1,
            seed: 31,
            ..MtmlfConfig::tiny()
        };
        let queries = generate_queries(
            &db,
            &WorkloadConfig {
                count: 6,
                max_tables: 4,
                ..WorkloadConfig::default()
            },
            9,
        );
        let model = MtmlfQo::new(&db, cfg).expect("build model");
        (model, queries)
    }

    #[test]
    fn batch_matches_sequential_bitwise() {
        let (model, queries) = setup();
        let batched = plan_batch(&model, &queries);
        assert_eq!(batched.len(), queries.len());
        for (query, planned) in queries.iter().zip(batched) {
            let planned = planned.expect("plans a generated query");
            let (order, card, cost) = model.plan_with_estimates(query).expect("sequential path");
            assert_eq!(planned.join_order, order);
            assert_eq!(planned.est_card.to_bits(), card.to_bits());
            assert_eq!(planned.est_cost.to_bits(), cost.to_bits());
            planned.join_order.validate(query).expect("legal order");
        }
    }

    #[test]
    fn tuned_kernels_keep_batch_and_sequential_bitwise_identical() {
        // Two models with identical seeds — one on the reference kernels,
        // one blocked+parallel — must produce bit-identical plans and
        // estimates on both the sequential and the batched path. d_model is
        // widened so the packed forwards actually cross the blocked-kernel
        // engagement threshold.
        use mtmlf_nn::KernelConfig;
        let mut db = imdb_lite(31, ImdbScale { scale: 0.02 }).unwrap();
        db.analyze_all(8, 4);
        let base = MtmlfConfig {
            d_model: 32,
            heads: 4,
            enc_queries: 10,
            enc_epochs: 1,
            seed: 31,
            ..MtmlfConfig::tiny()
        };
        let tuned_cfg = MtmlfConfig {
            kernel: KernelConfig {
                threads: 4,
                block_size: 8,
            },
            ..base.clone()
        };
        let queries = generate_queries(
            &db,
            &WorkloadConfig {
                count: 6,
                max_tables: 4,
                ..WorkloadConfig::default()
            },
            9,
        );
        let reference = MtmlfQo::new(&db, base).expect("reference model");
        let tuned = MtmlfQo::new(&db, tuned_cfg).expect("tuned model");
        for query in &queries {
            let (ro, rc, rk) = reference.plan_with_estimates(query).expect("reference");
            let (to, tc, tk) = tuned.plan_with_estimates(query).expect("tuned");
            assert_eq!(ro, to);
            assert_eq!(rc.to_bits(), tc.to_bits());
            assert_eq!(rk.to_bits(), tk.to_bits());
        }
        for (r, t) in plan_batch(&reference, &queries)
            .into_iter()
            .zip(plan_batch(&tuned, &queries))
        {
            let r = r.expect("reference batch");
            let t = t.expect("tuned batch");
            assert_eq!(r.join_order, t.join_order);
            assert_eq!(r.est_card.to_bits(), t.est_card.to_bits());
            assert_eq!(r.est_cost.to_bits(), t.est_cost.to_bits());
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let (model, queries) = setup();
        assert!(plan_batch(&model, &[]).is_empty());
        let one = plan_batch(&model, &queries[..1]);
        assert_eq!(one.len(), 1);
        let planned = one.into_iter().next().unwrap().expect("plans");
        planned.join_order.validate(&queries[0]).expect("legal");
    }

    #[test]
    fn traced_batch_records_every_stage_and_matches_untraced() {
        use crate::resilience::{Clock, SystemClock};
        use std::sync::Arc;
        let (model, queries) = setup();
        let untraced = plan_batch(&model, &queries);
        let mut recorder = StageRecorder::new(Arc::new(SystemClock::new()) as Arc<dyn Clock>);
        let traced = plan_batch_traced(&model, &queries, &mut recorder);
        for (a, b) in untraced.iter().zip(&traced) {
            let a = a.as_ref().expect("untraced plans");
            let b = b.as_ref().expect("traced plans");
            assert_eq!(a.join_order, b.join_order);
            assert_eq!(a.est_card.to_bits(), b.est_card.to_bits());
            assert_eq!(a.est_cost.to_bits(), b.est_cost.to_bits());
        }
        let count = |stage: Stage| recorder.spans().iter().filter(|s| s.stage == stage).count();
        assert_eq!(count(Stage::Featurize), 2, "both serialization passes");
        assert_eq!(count(Stage::Encode), 1);
        assert_eq!(count(Stage::Beam), 1);
        assert_eq!(count(Stage::Forward), 1);
        assert_eq!(count(Stage::Fallback), 0);
    }
}

//! Legality-pruned beam search over join orders (paper Section 4.3).
//!
//! The query's join-graph adjacency matrix restricts candidates at every
//! step to tables joinable with the already-joined prefix (the paper's
//! "pruning strategy based on beam search ... we only choose candidates
//! from tables having join key with current joined table"), so every
//! emitted order is executable. An *unconstrained* mode searches the
//! model's raw preferences and marks each candidate's legality — the
//! candidate source for the sequence-level loss of Section 5, whose `λ`
//! term penalizes illegal mass.

use crate::transjo::{DecodeCache, TransJo};
use mtmlf_nn::Var;
use mtmlf_query::JoinGraph;

/// Which candidate extensions a beam step may propose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Legality {
    /// Only frontier tables (joinable with the prefix) — every emitted
    /// order is executable.
    Constrained,
    /// The model's raw preferences; legality is recorded per candidate
    /// (the candidate source for the Section 5 sequence-level loss).
    Unconstrained,
}

/// The plan space the decoder searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeShape {
    /// Left-deep join orders (pointer decoding, Section 4.3).
    LeftDeep,
    /// Bushy trees via the Section 4.1 codec's position head.
    Bushy,
}

/// How a beam search is decoded: its width, legality pruning, plan shape,
/// and whether each step scores all live prefixes in one packed forward
/// (`batch`) or one decoder call per prefix. The batched path is
/// bitwise-identical to the sequential one (pinned by
/// `tests/beam_equivalence.rs`) — `batch: false` exists for differential
/// testing and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeamConfig {
    /// Beam width (≥ 1).
    pub width: usize,
    /// Extension pruning mode.
    pub legality: Legality,
    /// Searched plan shape.
    pub shape: TreeShape,
    /// Score all live prefixes per step in one packed decoder forward.
    pub batch: bool,
}

impl Default for BeamConfig {
    fn default() -> Self {
        Self::new(8)
    }
}

impl BeamConfig {
    /// Constrained, left-deep, batched decoding at `width`.
    pub fn new(width: usize) -> Self {
        Self {
            width,
            legality: Legality::Constrained,
            shape: TreeShape::LeftDeep,
            batch: true,
        }
    }

    /// Sets the beam width.
    pub fn width(mut self, width: usize) -> Self {
        self.width = width;
        self
    }

    /// Only propose executable extensions.
    pub fn constrained(mut self) -> Self {
        self.legality = Legality::Constrained;
        self
    }

    /// Keep the model's raw top-k and record legality per candidate.
    pub fn unconstrained(mut self) -> Self {
        self.legality = Legality::Unconstrained;
        self
    }

    /// Search left-deep join orders.
    pub fn left_deep(mut self) -> Self {
        self.shape = TreeShape::LeftDeep;
        self
    }

    /// Search bushy join trees.
    pub fn bushy(mut self) -> Self {
        self.shape = TreeShape::Bushy;
        self
    }

    /// One packed decoder forward per step (the default).
    pub fn batched(mut self) -> Self {
        self.batch = true;
        self
    }

    /// One decoder call per live prefix per step.
    pub fn sequential(mut self) -> Self {
        self.batch = false;
        self
    }
}

/// One beam-search candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct BeamCandidate {
    /// Chosen table slots, in join order.
    pub slots: Vec<usize>,
    /// Cumulative log-probability under the model.
    pub log_prob: f32,
    /// Whether the order is executable under the join graph.
    pub legal: bool,
}

/// One proposed extension of a live prefix: `beams[parent]` extended by
/// `slot`. Candidates stay `Copy` so a beam step never clones prefix
/// vectors — only the `width` survivors of the sort are materialized.
#[derive(Clone, Copy)]
struct Extension {
    parent: u32,
    slot: u32,
    log_prob: f32,
}

/// Proposes every allowed extension of one live prefix, renormalizing the
/// step's probability mass over the available tables. Candidate order —
/// ascending slot within a prefix, prefixes in beam order — is part of the
/// bitwise-equivalence contract with the sequential path: the final stable
/// sort breaks ties by this insertion order.
// lint: hot-path
fn extend_prefix(
    row: &[f32],
    prefix: &[usize],
    parent: u32,
    log_prob: f32,
    graph: &JoinGraph,
    legality: Legality,
    next: &mut Vec<Extension>,
) {
    let m = graph.len();
    let chosen: u64 = prefix.iter().fold(0, |b, &s| b | (1 << s));
    let frontier = graph.frontier(chosen);
    let allowed = |s: usize| {
        chosen & (1 << s) == 0
            && (legality == Legality::Unconstrained || frontier & (1 << s) != 0)
    };
    // Log-softmax over the available tables, accumulated in ascending slot
    // order (the same order the sequential path used).
    let mut max = f32::NEG_INFINITY;
    for (s, &v) in row.iter().enumerate().take(m) {
        if allowed(s) {
            max = max.max(v);
        }
    }
    if max == f32::NEG_INFINITY {
        return; // no available extension
    }
    let mut sum = 0.0f32;
    for (s, &v) in row.iter().enumerate().take(m) {
        if allowed(s) {
            sum += (v - max).exp();
        }
    }
    let lse = max + sum.ln();
    for (s, &v) in row.iter().enumerate().take(m) {
        if allowed(s) {
            next.push(Extension {
                parent,
                slot: s as u32,
                log_prob: log_prob + v - lse,
            });
        }
    }
}

/// Per-query beam state shared by the sequential and batched drivers.
struct BeamState<'a> {
    graph: &'a JoinGraph,
    /// Live prefixes with cumulative log-probabilities.
    beams: Vec<(Vec<usize>, f32)>,
    /// Extension scratch, reused across steps.
    next: Vec<Extension>,
    done: bool,
}

impl<'a> BeamState<'a> {
    fn new(graph: &'a JoinGraph) -> Self {
        Self {
            graph,
            beams: vec![(Vec::new(), 0.0)],
            next: Vec::new(),
            done: false,
        }
    }

    /// Applies one step's logits rows (one row per live prefix, in beam
    /// order): proposes extensions, keeps the top `width` by stable sort,
    /// and materializes the surviving prefixes.
    fn advance(&mut self, rows: &[&[f32]], legality: Legality, width: usize) {
        debug_assert_eq!(rows.len(), self.beams.len());
        self.next.clear();
        for (i, ((prefix, lp), row)) in self.beams.iter().zip(rows).enumerate() {
            extend_prefix(row, prefix, i as u32, *lp, self.graph, legality, &mut self.next);
        }
        self.next.sort_by(|a, b| b.log_prob.total_cmp(&a.log_prob));
        self.next.truncate(width);
        if self.next.is_empty() {
            self.done = true;
            return;
        }
        let survivors: Vec<(Vec<usize>, f32)> = self
            .next
            .iter()
            .map(|e| {
                let parent = &self.beams[e.parent as usize].0;
                let mut slots = Vec::with_capacity(parent.len() + 1);
                slots.extend_from_slice(parent);
                slots.push(e.slot as usize);
                (slots, e.log_prob)
            })
            .collect();
        self.beams = survivors;
    }

    /// Full-length candidates, legality-checked and sorted by descending
    /// log-probability.
    fn finish(self) -> Vec<BeamCandidate> {
        let m = self.graph.len();
        let graph = self.graph;
        let mut out: Vec<BeamCandidate> = self
            .beams
            .into_iter()
            .filter(|(slots, _)| slots.len() == m)
            .map(|(slots, log_prob)| {
                let legal = graph.check_left_deep(&slots).is_ok();
                BeamCandidate {
                    slots,
                    log_prob,
                    legal,
                }
            })
            .collect();
        out.sort_by(|a, b| b.log_prob.total_cmp(&a.log_prob));
        out
    }
}

/// Runs left-deep beam search for one query under `config`.
///
/// With `config.batch` every step scores all live prefixes in one packed
/// decoder forward against a per-query [`DecodeCache`]; otherwise the
/// decoder runs once per prefix. Both paths are bitwise-identical.
/// Candidates are returned sorted by descending log-probability.
pub fn beam_search(
    jo: &TransJo,
    memory: &Var,
    table_reps: &Var,
    graph: &JoinGraph,
    config: &BeamConfig,
) -> Vec<BeamCandidate> {
    if config.batch {
        let cache = jo.decode_cache(memory, table_reps);
        return beam_search_multi(jo, &[cache], &[graph], config)
            .pop()
            .unwrap_or_default();
    }
    let m = graph.len();
    debug_assert!(m >= 1);
    let width = config.width.max(1);
    let mut state = BeamState::new(graph);
    for _step in 0..m {
        let logits: Vec<mtmlf_nn::Matrix> = state
            .beams
            .iter()
            .map(|(prefix, _)| jo.step_logits(memory, table_reps, prefix).to_matrix())
            .collect();
        let rows: Vec<&[f32]> = logits
            .iter()
            .zip(&state.beams)
            .map(|(l, (prefix, _))| l.row(prefix.len()))
            .collect();
        state.advance(&rows, config.legality, width);
        if state.done {
            break;
        }
    }
    state.finish()
}

/// Runs left-deep beam search for several queries at once: every step
/// scores all live prefixes of all queries in **one** packed decoder
/// forward ([`TransJo::step_logits_batch`]). Returns per-query candidate
/// lists in input order, each bitwise-identical to a per-query
/// [`beam_search`].
pub fn beam_search_multi(
    jo: &TransJo,
    caches: &[DecodeCache],
    graphs: &[&JoinGraph],
    config: &BeamConfig,
) -> Vec<Vec<BeamCandidate>> {
    debug_assert_eq!(caches.len(), graphs.len());
    let width = config.width.max(1);
    let mut states: Vec<BeamState> = graphs.iter().map(|g| BeamState::new(g)).collect();
    let max_steps = graphs.iter().map(|g| g.len()).max().unwrap_or(0);
    for step in 0..max_steps {
        let mut entries: Vec<(usize, &[usize])> = Vec::new();
        for (qi, state) in states.iter().enumerate() {
            if state.done || step >= state.graph.len() {
                continue;
            }
            for (prefix, _) in &state.beams {
                entries.push((qi, prefix.as_slice()));
            }
        }
        if entries.is_empty() {
            break;
        }
        let logits = jo.step_logits_batch(caches, &entries);
        for (qi, state) in states.iter_mut().enumerate() {
            if state.done || step >= state.graph.len() {
                continue;
            }
            let per_query = &logits[qi];
            let rows: Vec<&[f32]> = (0..state.beams.len()).map(|r| per_query.row(r)).collect();
            state.advance(&rows, config.legality, width);
        }
    }
    states.into_iter().map(BeamState::finish).collect()
}

/// A bushy beam-search candidate: a full join tree over query slots.
#[derive(Debug, Clone, PartialEq)]
pub struct BushyCandidate {
    /// The decoded join tree; leaves are slot indices encoded as
    /// `TableId(slot)`.
    pub tree: mtmlf_query::JoinTree,
    /// Cumulative length-normalized log-score.
    pub score: f32,
}

/// Bushy decoding (paper Sections 4.1–4.2): the position head emits, for
/// each query table, a distribution over the complete-binary-tree leaf
/// positions; the beam assigns each table a power-of-two-aligned leaf
/// *block* (disjoint from previous assignments), and complete assignments
/// decode through the tree codec. Candidates whose trees are not
/// executable under the join graph are dropped; the caller falls back to
/// left-deep search when none survive.
pub fn beam_search_bushy(
    jo: &TransJo,
    memory: &Var,
    table_reps: &Var,
    graph: &JoinGraph,
    config: &BeamConfig,
) -> Vec<BushyCandidate> {
    use mtmlf_query::treecodec::{decode, DecodingEmbedding};

    let width = config.width.max(1);
    let m = graph.len();
    let dim = jo.position_width();
    // Active codec width for m tables: 2^(m-1), capped by the head width.
    let active = (1usize << m.saturating_sub(1)).min(dim);
    let logits = jo.position_logits(memory, table_reps).to_matrix();
    // Row-wise log-softmax over the active positions.
    let mut logp = vec![vec![0.0f32; active]; m];
    for (t, row_logp) in logp.iter_mut().enumerate() {
        let row = &logits.row(t)[..active];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
        for (d, &v) in row_logp.iter_mut().zip(row) {
            *d = v - lse;
        }
    }

    // Candidate blocks: aligned ranges [k·2^j, (k+1)·2^j) within `active`.
    let mut blocks: Vec<(usize, usize)> = Vec::new();
    let mut size = 1usize;
    while size <= active {
        let mut k = 0;
        while (k + 1) * size <= active {
            blocks.push((k * size, (k + 1) * size));
            k += 1;
        }
        size *= 2;
    }

    // Beam over per-table block assignments.
    #[derive(Clone)]
    struct State {
        assigned: Vec<(usize, usize)>,
        used: u128, // occupancy bitset over positions (active ≤ 128)
        score: f32,
    }
    let block_mask = |lo: usize, hi: usize| -> u128 {
        if hi - lo >= 128 {
            u128::MAX
        } else {
            ((1u128 << (hi - lo)) - 1) << lo
        }
    };
    let mut beams = vec![State {
        assigned: Vec::new(),
        used: 0,
        score: 0.0,
    }];
    for (t, logp_row) in logp.iter().enumerate() {
        let remaining = m - t - 1;
        let mut next: Vec<State> = Vec::new();
        for state in &beams {
            for &(lo, hi) in &blocks {
                let mask = block_mask(lo, hi);
                if state.used & mask != 0 {
                    continue;
                }
                let used = state.used | mask;
                // Prune assignments that cannot complete into a gapless
                // complete-binary-tree partition with the remaining tables.
                if !can_finish(used, remaining, active) {
                    continue;
                }
                // Length-normalized block score: mean log-prob of its
                // positions.
                let block_score: f32 = logp_row[lo..hi].iter().sum::<f32>() / (hi - lo) as f32;
                let mut s = state.clone();
                s.assigned.push((lo, hi));
                s.used = used;
                s.score += block_score;
                next.push(s);
            }
        }
        next.sort_by(|a, b| b.score.total_cmp(&a.score));
        next.truncate((width * 4).max(width)); // wider interior beam
        beams = next;
        if beams.is_empty() {
            return Vec::new();
        }
    }

    let mut out = Vec::new();
    for state in beams {
        // Build decoding embeddings over the active width and decode.
        let embeddings: Vec<DecodingEmbedding> = state
            .assigned
            .iter()
            .enumerate()
            .map(|(slot, &(lo, hi))| {
                let mut positions = vec![0.0f32; active];
                for p in positions.iter_mut().take(hi).skip(lo) {
                    *p = 1.0;
                }
                DecodingEmbedding {
                    table: mtmlf_storage::TableId(slot as u32),
                    positions,
                }
            })
            .collect();
        let Ok(tree) = decode(&embeddings) else {
            continue;
        };
        if !bushy_legal(&tree, graph) {
            continue;
        }
        out.push(BushyCandidate {
            tree,
            score: state.score,
        });
        if out.len() >= width {
            break;
        }
    }
    out.sort_by(|a, b| b.score.total_cmp(&a.score));
    out
}

/// Feasibility of completing a partial block assignment: there must exist
/// a power-of-two width `W` covering the used positions such that the free
/// space in `[0, W)` decomposes into maximal aligned blocks numbering at
/// most `remaining` (each needs ≥ 1 table) while offering at least
/// `remaining` leaf positions (each table needs ≥ 1 leaf). Any maximal
/// aligned block of size `2^j` can be split into between 1 and `2^j`
/// aligned sub-blocks, so the bound is exact.
fn can_finish(used: u128, remaining: usize, active: usize) -> bool {
    let highest = 128 - used.leading_zeros() as usize; // 0 if used == 0
    let mut w = highest.next_power_of_two().max(1);
    while w <= active {
        let free_count = w - used.count_ones() as usize;
        if free_count >= remaining {
            let maximal = maximal_free_blocks(used, w);
            if (remaining == 0 && free_count == 0) || (remaining > 0 && maximal <= remaining) {
                return true;
            }
        }
        w *= 2;
    }
    false
}

/// Number of maximal aligned free blocks in `[0, w)` given `used`.
fn maximal_free_blocks(used: u128, w: usize) -> usize {
    let mut count = 0;
    let mut p = 0;
    while p < w {
        if used & (1u128 << p) != 0 {
            p += 1;
            continue;
        }
        // Largest aligned free block starting at p.
        let mut size = 1usize;
        loop {
            let next = size * 2;
            if p % next != 0 || p + next > w {
                break;
            }
            let mask = (((1u128 << next) - 1) << p) & !(((1u128 << size) - 1) << p);
            if used & mask != 0 {
                break;
            }
            size = next;
        }
        count += 1;
        p += size;
    }
    count
}

/// Checks executability of a slot-indexed join tree under the join graph.
fn bushy_legal(tree: &mtmlf_query::JoinTree, graph: &JoinGraph) -> bool {
    fn walk(tree: &mtmlf_query::JoinTree, graph: &JoinGraph) -> Option<u64> {
        match tree {
            mtmlf_query::JoinTree::Leaf(t) => {
                let slot = t.index();
                (slot < graph.len()).then(|| 1u64 << slot)
            }
            mtmlf_query::JoinTree::Node(l, r) => {
                let lb = walk(l, graph)?;
                let rb = walk(r, graph)?;
                (graph.frontier(lb) & rb != 0).then_some(lb | rb)
            }
        }
    }
    walk(tree, graph).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MtmlfConfig;
    use mtmlf_nn::Matrix;
    use mtmlf_storage::TableId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(m: usize) -> (TransJo, Var, Var, MtmlfConfig) {
        let cfg = MtmlfConfig::tiny();
        let jo = TransJo::new(&cfg);
        let mut rng = StdRng::seed_from_u64(11);
        let memory = Var::constant(Matrix::xavier(2 * m - 1, cfg.d_model, &mut rng));
        let table_reps = Var::constant(Matrix::xavier(m, cfg.d_model, &mut rng));
        (jo, memory, table_reps, cfg)
    }

    fn chain(m: usize) -> JoinGraph {
        let vertices = (0..m as u32).map(TableId).collect();
        let edges: Vec<(usize, usize)> = (0..m - 1).map(|i| (i, i + 1)).collect();
        JoinGraph::from_edges(vertices, &edges).unwrap()
    }

    #[test]
    fn constrained_candidates_all_legal() {
        let (jo, memory, table_reps, _) = setup(4);
        let g = chain(4);
        let out = beam_search(&jo, &memory, &table_reps, &g, &BeamConfig::new(4));
        assert!(!out.is_empty());
        for c in &out {
            assert!(c.legal);
            assert_eq!(c.slots.len(), 4);
            g.check_left_deep(&c.slots).unwrap();
        }
        // Sorted by descending log-prob.
        for w in out.windows(2) {
            assert!(w[0].log_prob >= w[1].log_prob);
        }
    }

    #[test]
    fn unconstrained_may_contain_illegal_and_marks_them() {
        let (jo, memory, table_reps, _) = setup(4);
        let g = chain(4);
        let out = beam_search(
            &jo,
            &memory,
            &table_reps,
            &g,
            &BeamConfig::new(8).unconstrained(),
        );
        assert!(!out.is_empty());
        for c in &out {
            assert_eq!(c.legal, g.check_left_deep(&c.slots).is_ok());
        }
        // With width 8 on 4 tables of an untrained model, at least one
        // explored permutation of a chain is typically illegal; at minimum
        // the count of candidates exceeds the number of legal chain orders
        // found by the constrained search with the same width.
        let constrained = beam_search(&jo, &memory, &table_reps, &g, &BeamConfig::new(8));
        assert!(out.len() >= constrained.len());
    }

    #[test]
    fn candidates_are_permutations() {
        let (jo, memory, table_reps, _) = setup(5);
        let g = chain(5);
        for c in beam_search(&jo, &memory, &table_reps, &g, &BeamConfig::new(3)) {
            let mut sorted = c.slots.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn single_table_query() {
        let (jo, memory, table_reps, _) = setup(1);
        let g = JoinGraph::from_edges(vec![TableId(0)], &[]).unwrap();
        let single_rep = table_reps.slice_rows(0, 1);
        let out = beam_search(&jo, &memory, &single_rep, &g, &BeamConfig::new(4));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].slots, vec![0]);
    }

    #[test]
    fn batched_matches_sequential_bitwise() {
        let (jo, memory, table_reps, _) = setup(4);
        for g in [chain(4), {
            let vertices = (0..4u32).map(TableId).collect();
            JoinGraph::from_edges(vertices, &[(0, 1), (0, 2), (0, 3)]).unwrap()
        }] {
            for width in [1usize, 2, 4, 8] {
                for legality in [Legality::Constrained, Legality::Unconstrained] {
                    let cfg = BeamConfig {
                        width,
                        legality,
                        shape: TreeShape::LeftDeep,
                        batch: false,
                    };
                    let seq = beam_search(&jo, &memory, &table_reps, &g, &cfg);
                    let bat = beam_search(&jo, &memory, &table_reps, &g, &cfg.batched());
                    assert_eq!(seq, bat, "width {width} legality {legality:?}");
                }
            }
        }
    }

    #[test]
    fn multi_query_matches_per_query() {
        let (jo, memory, table_reps, _) = setup(4);
        let g1 = chain(4);
        let g2 = chain(3);
        let reps2 = table_reps.slice_rows(0, 3);
        let config = BeamConfig::new(4);
        let caches = [
            jo.decode_cache(&memory, &table_reps),
            jo.decode_cache(&memory, &reps2),
        ];
        let multi = beam_search_multi(&jo, &caches, &[&g1, &g2], &config);
        let one = beam_search(&jo, &memory, &table_reps, &g1, &config);
        let two = beam_search(&jo, &memory, &reps2, &g2, &config);
        assert_eq!(multi, vec![one, two]);
    }

    #[test]
    fn star_graph_legality() {
        // Star: every order must place the hub (slot 0) first or second.
        let (jo, memory, table_reps, _) = setup(4);
        let vertices = (0..4u32).map(TableId).collect();
        let g = JoinGraph::from_edges(vertices, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        for c in beam_search(&jo, &memory, &table_reps, &g, &BeamConfig::new(6)) {
            let hub_pos = c.slots.iter().position(|&s| s == 0).unwrap();
            assert!(hub_pos <= 1, "hub at {hub_pos} in {:?}", c.slots);
        }
    }
}

#[cfg(test)]
mod bushy_tests {
    use super::*;
    use crate::config::MtmlfConfig;
    use mtmlf_nn::Matrix;
    use mtmlf_storage::TableId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(m: usize) -> (TransJo, Var, Var) {
        let cfg = MtmlfConfig::tiny();
        let jo = TransJo::new(&cfg);
        let mut rng = StdRng::seed_from_u64(23);
        let memory = Var::constant(Matrix::xavier(2 * m - 1, cfg.d_model, &mut rng));
        let table_reps = Var::constant(Matrix::xavier(m, cfg.d_model, &mut rng));
        (jo, memory, table_reps)
    }

    fn clique(m: usize) -> JoinGraph {
        let vertices = (0..m as u32).map(TableId).collect();
        let edges: Vec<(usize, usize)> = (0..m)
            .flat_map(|a| ((a + 1)..m).map(move |b| (a, b)))
            .collect();
        JoinGraph::from_edges(vertices, &edges).unwrap()
    }

    fn chain(m: usize) -> JoinGraph {
        let vertices = (0..m as u32).map(TableId).collect();
        let edges: Vec<(usize, usize)> = (0..m - 1).map(|i| (i, i + 1)).collect();
        JoinGraph::from_edges(vertices, &edges).unwrap()
    }

    #[test]
    fn bushy_candidates_are_valid_trees() {
        let (jo, memory, table_reps) = setup(4);
        let g = clique(4);
        let out = beam_search_bushy(&jo, &memory, &table_reps, &g, &BeamConfig::new(4).bushy());
        assert!(!out.is_empty(), "clique accepts any tree shape");
        for c in &out {
            assert_eq!(c.tree.leaf_count(), 4);
            let mut leaves: Vec<usize> = c.tree.leaves().iter().map(|t| t.index()).collect();
            leaves.sort_unstable();
            assert_eq!(leaves, vec![0, 1, 2, 3]);
        }
        // Sorted by score.
        for w in out.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn bushy_candidates_respect_chain_legality() {
        let (jo, memory, table_reps) = setup(4);
        let g = chain(4);
        for c in beam_search_bushy(&jo, &memory, &table_reps, &g, &BeamConfig::new(8).bushy()) {
            // Every join node must connect its sides in the chain; e.g. a
            // (0⋈2) node would be illegal. Re-check with the local checker.
            let leaves = c.tree.leaves();
            assert_eq!(leaves.len(), 4);
            // Recompute legality explicitly.
            fn legal(tree: &mtmlf_query::JoinTree, g: &JoinGraph) -> Option<u64> {
                match tree {
                    mtmlf_query::JoinTree::Leaf(t) => Some(1 << t.index()),
                    mtmlf_query::JoinTree::Node(l, r) => {
                        let lb = legal(l, g)?;
                        let rb = legal(r, g)?;
                        (g.frontier(lb) & rb != 0).then_some(lb | rb)
                    }
                }
            }
            assert!(legal(&c.tree, &g).is_some());
        }
    }

    #[test]
    fn single_table_bushy() {
        let (jo, memory, table_reps) = setup(1);
        let g = JoinGraph::from_edges(vec![TableId(0)], &[]).unwrap();
        let reps = table_reps.slice_rows(0, 1);
        let out = beam_search_bushy(&jo, &memory, &reps, &g, &BeamConfig::new(4).bushy());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tree, mtmlf_query::JoinTree::Leaf(TableId(0)));
    }
}

//! Cross-DB meta-learning (paper Section 3.3, Algorithm 1 — "MLA").
//!
//! The meta-learner owns one set of (S) and (T) modules. `pretrain`:
//!
//! 1. for each database, fits a featurization module — training every
//!    per-table encoder `Enc_j` on single-table CardEst (line 4);
//! 2. serializes every labelled query into `E(P)` with its labels
//!    (lines 5–6);
//! 3. shuffles the pooled training data *across databases* (line 7) and
//!    trains (S) and (T) on it (line 8).
//!
//! `transfer` then deploys on an unseen database by fitting only its
//! featurization module and attaching the pre-trained (S)/(T) — the
//! paper's claim being that the shuffled multi-DB training forces those
//! modules to carry *database-agnostic meta knowledge* (e.g. how to
//! compose join distributions from single-table distributions, Eq. 2)
//! rather than memorizing one database.

use crate::config::MtmlfConfig;
use crate::featurize::FeaturizationModule;
use crate::model::MtmlfQo;
use crate::shared::SharedModule;
use crate::tasks::TaskHeads;
use crate::train::{prepare_sample, run_training, PreparedSample};
use crate::transjo::TransJo;
use crate::Result;
use mtmlf_datagen::LabeledQuery;
use mtmlf_storage::Database;

/// The MLA driver.
pub struct MetaLearner {
    shared: SharedModule,
    heads: TaskHeads,
    jo: TransJo,
    config: MtmlfConfig,
    /// Featurization modules of the training databases, by input order.
    featurizers: Vec<FeaturizationModule>,
}

impl MetaLearner {
    /// Initializes fresh (S) and (T) modules.
    pub fn new(config: MtmlfConfig) -> Self {
        Self {
            shared: SharedModule::new(&config),
            heads: TaskHeads::new(&config),
            jo: TransJo::new(&config),
            config,
            featurizers: Vec::new(),
        }
    }

    /// Runs Algorithm 1 over `n` databases with their labelled workloads.
    /// Returns per-epoch mean losses over the pooled, cross-DB-shuffled
    /// training data.
    pub fn pretrain(&mut self, databases: &[(&Database, &[LabeledQuery])]) -> Result<Vec<f32>> {
        let mut pooled: Vec<PreparedSample> = Vec::new();
        self.featurizers.clear();
        for (db, workload) in databases {
            // Line 4: train Enc_j for each table of this database.
            let featurizer = FeaturizationModule::fit(db, &self.config)?;
            // Lines 5-6: featurize each query, attach labels.
            for labeled in workload.iter() {
                pooled.push(prepare_sample(&featurizer, labeled, &self.config)?);
            }
            self.featurizers.push(featurizer);
        }
        // Lines 7-8: shuffle across databases (run_training shuffles every
        // epoch) and train (S) + (T).
        Ok(run_training(
            &self.shared,
            &self.heads,
            &self.jo,
            &pooled,
            &self.config,
            self.config.epochs,
            self.config.lr,
        ))
    }

    /// Federated pre-training (the paper's future research direction #2:
    /// "design a federated learning algorithm to protect the DB users'
    /// data privacy and simultaneously ensure effective training of
    /// MTMLF"). FedAvg over the (S)/(T) parameters: each round, every
    /// database trains a *local copy* of the shared modules on its own
    /// labelled queries — raw data never leaves the site — and the
    /// provider averages the parameter deltas into the global modules.
    /// Returns the mean local loss per round.
    pub fn pretrain_federated(
        &mut self,
        databases: &[(&Database, &[LabeledQuery])],
        rounds: usize,
        local_epochs: usize,
    ) -> Result<Vec<f32>> {
        use mtmlf_nn::Matrix;

        // Site-local featurizers and prepared samples (computed once).
        self.featurizers.clear();
        let mut site_samples: Vec<Vec<PreparedSample>> = Vec::with_capacity(databases.len());
        for (db, workload) in databases {
            let featurizer = FeaturizationModule::fit(db, &self.config)?;
            let samples = workload
                .iter()
                .map(|l| prepare_sample(&featurizer, l, &self.config))
                .collect::<Result<Vec<_>>>()?;
            site_samples.push(samples);
            self.featurizers.push(featurizer);
        }

        let mut params = mtmlf_nn::layers::Module::parameters(&self.shared);
        params.extend(mtmlf_nn::layers::Module::parameters(&self.heads));
        params.extend(mtmlf_nn::layers::Module::parameters(&self.jo));

        let mut history = Vec::with_capacity(rounds);
        for _round in 0..rounds {
            let snapshot: Vec<Matrix> = params.iter().map(|p| p.to_matrix()).collect();
            let mut deltas: Vec<Matrix> = snapshot
                .iter()
                .map(|m| Matrix::zeros(m.shape().0, m.shape().1))
                .collect();
            let mut round_loss = 0.0;
            for samples in &site_samples {
                // Local training starts from the global snapshot.
                for (p, s) in params.iter().zip(&snapshot) {
                    p.set_value(s.clone());
                }
                let local = run_training(
                    &self.shared,
                    &self.heads,
                    &self.jo,
                    samples,
                    &self.config,
                    local_epochs,
                    self.config.lr,
                );
                round_loss += local.last().copied().unwrap_or(0.0);
                // Only the parameter deltas are "transmitted".
                for ((p, s), d) in params.iter().zip(&snapshot).zip(&mut deltas) {
                    d.add_assign(&p.to_matrix().sub(s));
                }
            }
            // FedAvg: global = snapshot + mean(deltas).
            let k = site_samples.len().max(1) as f32;
            for ((p, s), d) in params.iter().zip(&snapshot).zip(&deltas) {
                p.set_value(s.add(&d.scale(1.0 / k)));
            }
            history.push(round_loss / k);
        }
        Ok(history)
    }

    /// Deploys on a new database: fits only its featurization module and
    /// attaches parameter-sharing clones of the pre-trained (S)/(T). The
    /// returned model can be used zero-shot or [`MtmlfQo::fine_tune`]d on a
    /// small number of example queries.
    pub fn transfer(&self, db: &Database) -> Result<MtmlfQo> {
        let featurizer = FeaturizationModule::fit(db, &self.config)?;
        Ok(MtmlfQo::from_modules(
            featurizer,
            self.shared.clone(),
            self.heads.clone(),
            self.jo.clone(),
            self.config.clone(),
        ))
    }

    /// The meta-learner's configuration.
    pub fn config(&self) -> &MtmlfConfig {
        &self.config
    }

    /// Featurization modules fitted during pre-training (index-aligned with
    /// the `pretrain` input).
    pub fn featurizers(&self) -> &[FeaturizationModule] {
        &self.featurizers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_datagen::{
        generate_database, generate_queries, label_workload, LabelConfig, PipelineConfig,
        WorkloadConfig,
    };

    fn make_db(seed: u64) -> (Database, Vec<LabeledQuery>) {
        let mut cfg = PipelineConfig::tiny();
        cfg.min_rows = 150;
        cfg.max_rows = 500;
        let mut db = generate_database(&format!("meta{seed}"), seed, &cfg).unwrap();
        db.analyze_all(8, 4);
        let queries = generate_queries(
            &db,
            &WorkloadConfig {
                count: 6,
                max_tables: 4,
                ..WorkloadConfig::default()
            },
            seed ^ 0xBEEF,
        );
        let labeled = label_workload(&db, &queries, &LabelConfig::default()).unwrap();
        (db, labeled)
    }

    fn tiny_meta_config() -> MtmlfConfig {
        let mut cfg = MtmlfConfig::tiny();
        cfg.enc_queries = 15;
        cfg.enc_epochs = 2;
        cfg.epochs = 2;
        cfg
    }

    #[test]
    fn pretrain_pools_across_databases() {
        let (db1, w1) = make_db(1);
        let (db2, w2) = make_db(2);
        let mut meta = MetaLearner::new(tiny_meta_config());
        let history = meta
            .pretrain(&[(&db1, w1.as_slice()), (&db2, w2.as_slice())])
            .unwrap();
        assert_eq!(history.len(), 2);
        assert!(history.iter().all(|l| l.is_finite()));
        assert_eq!(meta.featurizers().len(), 2);
    }

    #[test]
    fn transfer_produces_working_model() {
        let (db1, w1) = make_db(3);
        let (db_new, w_new) = make_db(4);
        let mut meta = MetaLearner::new(tiny_meta_config());
        meta.pretrain(&[(&db1, w1.as_slice())]).unwrap();
        let model = meta.transfer(&db_new).unwrap();
        for l in &w_new {
            let order = model.predict_join_order(&l.query, &l.plan).unwrap();
            order.validate(&l.query).unwrap();
            let preds = model.predict_nodes(&l.query, &l.plan).unwrap();
            assert_eq!(preds.len(), l.plan.node_count());
        }
    }

    #[test]
    fn transferred_model_fine_tunes() {
        let (db1, w1) = make_db(5);
        let (db_new, w_new) = make_db(6);
        let mut meta = MetaLearner::new(tiny_meta_config());
        meta.pretrain(&[(&db1, w1.as_slice())]).unwrap();
        let mut model = meta.transfer(&db_new).unwrap();
        let history = model.fine_tune(&w_new, 3, 5e-4).unwrap();
        assert_eq!(history.len(), 3);
        assert!(
            history.last().unwrap() <= &history[0],
            "fine-tuning should not diverge: {history:?}"
        );
    }

    #[test]
    fn transfer_shares_parameters_with_meta_learner() {
        let (db1, w1) = make_db(7);
        let mut meta = MetaLearner::new(tiny_meta_config());
        meta.pretrain(&[(&db1, w1.as_slice())]).unwrap();
        let model_a = meta.transfer(&db1).unwrap();
        let (shared_a, _, _) = model_a.transferable_modules();
        let a: f32 = mtmlf_nn::layers::Module::parameters(&shared_a)
            .iter()
            .map(|p| p.to_matrix().norm())
            .sum();
        let b: f32 = mtmlf_nn::layers::Module::parameters(&meta.shared)
            .iter()
            .map(|p| p.to_matrix().norm())
            .sum();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod federated_tests {
    use super::*;
    use mtmlf_datagen::{
        generate_database, generate_queries, label_workload, LabelConfig, PipelineConfig,
        WorkloadConfig,
    };

    fn make_db(seed: u64) -> (Database, Vec<LabeledQuery>) {
        let mut cfg = PipelineConfig::tiny();
        cfg.min_rows = 150;
        cfg.max_rows = 500;
        let mut db = generate_database(&format!("fed{seed}"), seed, &cfg).unwrap();
        db.analyze_all(8, 4);
        let queries = generate_queries(
            &db,
            &WorkloadConfig {
                count: 6,
                max_tables: 4,
                ..WorkloadConfig::default()
            },
            seed ^ 0xFED,
        );
        let labeled = label_workload(&db, &queries, &LabelConfig::default()).unwrap();
        (db, labeled)
    }

    fn tiny_config() -> crate::MtmlfConfig {
        crate::MtmlfConfig {
            enc_queries: 12,
            enc_epochs: 2,
            epochs: 2,
            seed: 31,
            ..crate::MtmlfConfig::tiny()
        }
    }

    #[test]
    fn federated_rounds_train_and_transfer() {
        let (db1, w1) = make_db(41);
        let (db2, w2) = make_db(42);
        let (db_new, w_new) = make_db(43);
        let mut meta = MetaLearner::new(tiny_config());
        let history = meta
            .pretrain_federated(&[(&db1, w1.as_slice()), (&db2, w2.as_slice())], 2, 1)
            .unwrap();
        assert_eq!(history.len(), 2);
        assert!(history.iter().all(|l| l.is_finite()));
        let model = meta.transfer(&db_new).unwrap();
        for l in &w_new {
            model
                .predict_join_order(&l.query, &l.plan)
                .unwrap()
                .validate(&l.query)
                .unwrap();
        }
    }

    #[test]
    fn federated_update_moves_parameters() {
        let (db1, w1) = make_db(44);
        let mut meta = MetaLearner::new(tiny_config());
        let before: f32 = mtmlf_nn::layers::Module::parameters(&meta.shared)
            .iter()
            .map(|p| p.to_matrix().norm())
            .sum();
        meta.pretrain_federated(&[(&db1, w1.as_slice())], 1, 1)
            .unwrap();
        let after: f32 = mtmlf_nn::layers::Module::parameters(&meta.shared)
            .iter()
            .map(|p| p.to_matrix().norm())
            .sum();
        assert_ne!(before, after, "federated round must update parameters");
    }
}

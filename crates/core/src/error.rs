//! The unified top-level error type.
//!
//! Every per-crate error (`StorageError`, `QueryError`, `ExecError`,
//! `OptError`) converts into [`MtmlfError`] via `From`, so application code
//! and the serving layer propagate a single error type (`mtmlf::Error`).

use std::fmt;

/// Errors produced by model construction, configuration, training,
/// inference, and serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MtmlfError {
    /// Underlying storage failure.
    Storage(mtmlf_storage::StorageError),
    /// Underlying query/plan failure.
    Query(mtmlf_query::QueryError),
    /// Underlying execution failure.
    Exec(mtmlf_exec::ExecError),
    /// Underlying classical-optimizer failure.
    Opt(String),
    /// The query touches more tables than the model was configured for.
    TooManyQueryTables {
        /// Tables in the query.
        got: usize,
        /// Configured maximum.
        max: usize,
    },
    /// A table has more columns than the configured featurization width.
    TooManyColumns {
        /// Columns in the table.
        got: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The featurization module has no encoder for a table (not fitted).
    EncoderMissing(u32),
    /// Beam search produced no legal candidate (impossible for connected
    /// queries; indicates a malformed join graph).
    NoLegalOrder,
    /// A training sample lacked the label needed by the requested task.
    MissingLabel(&'static str),
    /// An invalid hyper-parameter combination, rejected at construction by
    /// [`crate::MtmlfConfig::builder`] instead of panicking mid-training.
    InvalidConfig(String),
    /// The planner service could not accept or answer a request (worker
    /// pool shut down or a worker died).
    Service(String),
    /// SQL text could not be parsed into a [`mtmlf_query::Query`].
    Sql(mtmlf_query::SqlError),
    /// An internal invariant was violated. Library code returns this
    /// instead of panicking (lint rule L1), so a single bad request cannot
    /// take down a serving worker.
    Internal(String),
    /// The request's deadline expired before a response was produced. The
    /// caller is free to retry, fall back to a classical plan, or give up.
    Timeout,
    /// The service shed this request at admission because its bounded queue
    /// was full. Callers should back off; nothing was planned.
    Overloaded,
    /// A file-system operation failed (weight save/load). Carries the
    /// rendered `std::io::Error` so the enum stays `Clone + Eq`.
    Io(String),
    /// A persisted artifact (weight checkpoint) failed integrity
    /// validation: bad magic, truncated payload, or checksum mismatch.
    Corrupt(String),
}

impl fmt::Display for MtmlfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Storage(e) => write!(f, "storage error: {e}"),
            Self::Query(e) => write!(f, "query error: {e}"),
            Self::Exec(e) => write!(f, "execution error: {e}"),
            Self::Opt(e) => write!(f, "optimizer error: {e}"),
            Self::TooManyQueryTables { got, max } => {
                write!(f, "query touches {got} tables, model supports {max}")
            }
            Self::TooManyColumns { got, max } => {
                write!(f, "table has {got} columns, featurizer supports {max}")
            }
            Self::EncoderMissing(t) => write!(f, "no trained encoder for table T{t}"),
            Self::NoLegalOrder => write!(f, "beam search found no legal join order"),
            Self::MissingLabel(which) => write!(f, "training sample lacks {which} label"),
            Self::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            Self::Service(why) => write!(f, "planner service error: {why}"),
            Self::Sql(e) => write!(f, "SQL parse error: {e}"),
            Self::Internal(why) => write!(f, "internal invariant violated: {why}"),
            Self::Timeout => write!(f, "request deadline expired before a plan was produced"),
            Self::Overloaded => write!(f, "service overloaded: request shed at admission"),
            Self::Io(why) => write!(f, "I/O error: {why}"),
            Self::Corrupt(why) => write!(f, "corrupt artifact: {why}"),
        }
    }
}

impl std::error::Error for MtmlfError {}

impl From<mtmlf_storage::StorageError> for MtmlfError {
    fn from(e: mtmlf_storage::StorageError) -> Self {
        Self::Storage(e)
    }
}

impl From<mtmlf_query::QueryError> for MtmlfError {
    fn from(e: mtmlf_query::QueryError) -> Self {
        Self::Query(e)
    }
}

impl From<mtmlf_exec::ExecError> for MtmlfError {
    fn from(e: mtmlf_exec::ExecError) -> Self {
        Self::Exec(e)
    }
}

impl From<mtmlf_optd::OptError> for MtmlfError {
    fn from(e: mtmlf_optd::OptError) -> Self {
        Self::Opt(e.to_string())
    }
}

impl From<mtmlf_query::SqlError> for MtmlfError {
    fn from(e: mtmlf_query::SqlError) -> Self {
        Self::Sql(e)
    }
}

impl From<std::io::Error> for MtmlfError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

//! JOEU and the sequence-level join-order loss (paper Section 5).
//!
//! **JOEU** (Join Order Evaluation Understudy), the paper's BLEU-inspired
//! criterion: the length of the common prefix of a generated order and the
//! optimal order, divided by the sequence length — "if the partial join
//! order up to timestamp t is not optimal, the overall join order can not
//! be optimal regardless of the table orders after t".
//!
//! The **sequence-level loss** (Eq. 3) combines:
//! 1. the negative log-likelihood of the optimal order `u*`;
//! 2. a JOEU-weighted penalty on the likelihood of every *legal*
//!    beam-search candidate (candidates close to optimal are penalized
//!    less);
//! 3. `λ · log Σ p(u)` over the *illegal* candidates the unconstrained
//!    beam search surfaced — teaching the model legality instead of only
//!    masking it at decode time.

use crate::beam::{beam_search, BeamCandidate};
use crate::transjo::TransJo;
use mtmlf_nn::loss::sequence_log_prob;
use mtmlf_nn::{Matrix, Var};
use mtmlf_query::JoinGraph;

/// JOEU(u, u*): shared-prefix length over sequence length, in `[0, 1]`.
pub fn joeu(u: &[usize], optimal: &[usize]) -> f64 {
    if u.is_empty() || u.len() != optimal.len() {
        return 0.0;
    }
    let prefix = u.iter().zip(optimal).take_while(|(a, b)| a == b).count();
    prefix as f64 / u.len() as f64
}

/// The differentiable log-probability of a full order under the decoder
/// (sum of per-step log-softmax picks, teacher-forced).
fn order_log_prob(jo: &TransJo, memory: &Var, table_reps: &Var, order: &[usize]) -> Var {
    let logits = jo.teacher_forced_logits(memory, table_reps, order);
    sequence_log_prob(&logits, order)
}

/// Builds the sequence-level loss `L_JO` of Eq. 3 for one query.
///
/// Candidates come from an *unconstrained* beam search at `beam.width`
/// (legality pruning is forced off regardless of the configured default,
/// so the model's illegal preferences are visible to the `λ` term).
///
/// **Stabilized realization.** Read literally, Eq. 3's second and third
/// terms add `weight · log p(u)` with positive weights — unbounded below:
/// the optimizer can diverge by driving *any* non-optimal candidate's
/// probability to zero (destroying the shared-prefix steps `u*` relies
/// on). Following the sequence-level-training work the paper cites
/// (Ranzato et al. \[28\]), we realize those terms as a bounded *expected
/// risk* over the beam: candidate probabilities are re-normalized over the
/// candidate set, each legal candidate costs `1 − JOEU(u, u*)`, each
/// illegal candidate costs `λ`, and the loss is the probability-weighted
/// cost. Same minimizer (mass on the optimal order, none on illegal
/// orders), bounded gradients.
pub fn sequence_level_loss(
    jo: &TransJo,
    memory: &Var,
    table_reps: &Var,
    graph: &JoinGraph,
    optimal: &[usize],
    beam: &crate::beam::BeamConfig,
    lambda: f32,
) -> Var {
    let m = optimal.len().max(1) as f32;
    // Term 1: −log p(u*), averaged per step (matching the token loss scale).
    let loss = order_log_prob(jo, memory, table_reps, optimal).scale(-1.0 / m);

    let candidates: Vec<BeamCandidate> = beam_search(
        jo,
        memory,
        table_reps,
        graph,
        &beam.unconstrained().left_deep(),
    );
    if candidates.is_empty() {
        return loss;
    }

    // Expected risk over the re-normalized candidate distribution.
    let lps: Vec<Var> = candidates
        .iter()
        .map(|c| order_log_prob(jo, memory, table_reps, &c.slots))
        .collect();
    let logits = Var::concat_cols(&lps); // (1, k)
    let weights = logits.softmax_rows(); // re-normalized over the beam
    let risk: Vec<f32> = candidates
        .iter()
        .map(|c| {
            if c.legal {
                1.0 - joeu(&c.slots, optimal) as f32
            } else {
                lambda
            }
        })
        .collect();
    let risk = Var::constant(Matrix::row_vec(risk));
    loss.add(&weights.hadamard(&risk).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MtmlfConfig;
    use mtmlf_nn::Adam;
    use mtmlf_storage::TableId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn joeu_prefix_semantics() {
        assert_eq!(joeu(&[1, 2, 3, 4], &[1, 2, 3, 4]), 1.0);
        assert_eq!(joeu(&[1, 2, 4, 3], &[1, 2, 3, 4]), 0.5);
        assert_eq!(joeu(&[2, 1, 3, 4], &[1, 2, 3, 4]), 0.0);
        assert_eq!(joeu(&[1, 2], &[1, 2, 3]), 0.0, "length mismatch");
        assert_eq!(joeu(&[], &[]), 0.0);
    }

    #[test]
    fn joeu_bounds() {
        for perm in [[0usize, 1, 2], [0, 2, 1], [2, 1, 0]] {
            let j = joeu(&perm, &[0, 1, 2]);
            assert!((0.0..=1.0).contains(&j));
        }
    }

    fn chain(m: usize) -> JoinGraph {
        let vertices = (0..m as u32).map(TableId).collect();
        let edges: Vec<(usize, usize)> = (0..m - 1).map(|i| (i, i + 1)).collect();
        JoinGraph::from_edges(vertices, &edges).unwrap()
    }

    #[test]
    fn sequence_loss_trains_toward_optimal() {
        let cfg = MtmlfConfig::tiny();
        let jo = TransJo::new(&cfg);
        let mut rng = StdRng::seed_from_u64(13);
        let memory = Var::constant(Matrix::xavier(7, cfg.d_model, &mut rng));
        let table_reps = Var::constant(Matrix::xavier(4, cfg.d_model, &mut rng));
        let graph = chain(4);
        let optimal = [1usize, 2, 3, 0];
        graph.check_left_deep(&optimal).unwrap();
        let mut opt = Adam::new(mtmlf_nn::layers::Module::parameters(&jo), 3e-3);
        for _ in 0..60 {
            let loss = sequence_level_loss(
                &jo,
                &memory,
                &table_reps,
                &graph,
                &optimal,
                &crate::beam::BeamConfig::new(4),
                2.0,
            );
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        // The constrained beam's best candidate should now be the optimal
        // order.
        let best = beam_search(
            &jo,
            &memory,
            &table_reps,
            &graph,
            &crate::beam::BeamConfig::new(4),
        )
            .into_iter()
            .next()
            .unwrap();
        assert_eq!(best.slots, optimal.to_vec());
    }

    #[test]
    fn illegal_mass_shrinks_under_training() {
        let cfg = MtmlfConfig::tiny();
        let jo = TransJo::new(&cfg);
        let mut rng = StdRng::seed_from_u64(17);
        let memory = Var::constant(Matrix::xavier(5, cfg.d_model, &mut rng));
        let table_reps = Var::constant(Matrix::xavier(3, cfg.d_model, &mut rng));
        let graph = chain(3);
        let optimal = [0usize, 1, 2];
        let illegal_mass = |jo: &TransJo| -> f32 {
            beam_search(
                jo,
                &memory,
                &table_reps,
                &graph,
                &crate::beam::BeamConfig::new(6).unconstrained(),
            )
                .iter()
                .filter(|c| !c.legal)
                .map(|c| c.log_prob.exp())
                .sum()
        };
        let before = illegal_mass(&jo);
        let mut opt = Adam::new(mtmlf_nn::layers::Module::parameters(&jo), 3e-3);
        for _ in 0..50 {
            let loss = sequence_level_loss(
                &jo,
                &memory,
                &table_reps,
                &graph,
                &optimal,
                &crate::beam::BeamConfig::new(6),
                4.0,
            );
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        let after = illegal_mass(&jo);
        assert!(
            after < before || after < 1e-3,
            "illegal mass should shrink: {before} -> {after}"
        );
    }
}

//! A sharded LRU cache.
//!
//! The serving layer keys this on [`mtmlf_query::QueryFingerprint`] to
//! reuse plans and estimates across repeated queries. Sharding bounds lock
//! contention: each shard is an independent mutex-guarded LRU, and a key's
//! shard is a stable function of its hash, so concurrent clients touching
//! different queries rarely serialize on the same lock.
//!
//! Each shard is a classic intrusive doubly-linked LRU over a slab: O(1)
//! get (with recency bump), insert, and eviction.

use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::sync::Mutex;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

struct LruShard<K, V> {
    map: HashMap<K, usize>,
    entries: Vec<Entry<K, V>>,
    free: Vec<usize>,
    /// Most recently used, or `NIL` when empty.
    head: usize,
    /// Least recently used, or `NIL` when empty.
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> LruShard<K, V> {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(1024)),
            entries: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.push_front(idx);
        Some(self.entries[idx].value.clone())
    }

    fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.entries[idx].value = value;
            self.detach(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.detach(victim);
            let old_key = self.entries[victim].key.clone();
            self.map.remove(&old_key);
            self.free.push(victim);
        }
        let entry = Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(slot) => {
                self.entries[slot] = entry;
                slot
            }
            None => {
                self.entries.push(entry);
                self.entries.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Removes `key`, returning its value. The slab slot joins the free
    /// list for reuse.
    fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.free.push(idx);
        Some(self.entries[idx].value.clone())
    }

    /// Unlinks a listed entry from the recency list.
    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.entries[idx].prev = NIL;
        self.entries[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Entries from least to most recently used.
    fn entries_lru_first(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.tail;
        while idx != NIL {
            let entry = &self.entries[idx];
            out.push((entry.key.clone(), entry.value.clone()));
            idx = entry.prev;
        }
        out
    }

    fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// A thread-safe LRU cache split into independently locked shards.
pub struct ShardedLruCache<K, V> {
    shards: Vec<Mutex<LruShard<K, V>>>,
    hasher: RandomState,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLruCache<K, V> {
    /// Creates a cache holding about `capacity` entries across `shards`
    /// shards (each shard gets `ceil(capacity / shards)`). A zero capacity
    /// yields a cache that stores nothing.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(if capacity == 0 { 0 } else { per_shard })))
                .collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<LruShard<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Looks up `key`, bumping its recency on a hit. Shard-lock poison is
    /// recovered (`PoisonError::into_inner`): the LRU list is repaired or
    /// consistent after every mutation step, so a panicking peer cannot
    /// leave a shard permanently unusable.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key)
    }

    /// Inserts or refreshes `key`, evicting the shard's least recently
    /// used entry when full.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, value);
    }

    /// Removes `key` from its shard, returning the value it held. The
    /// cluster layer uses this for cache invalidation: a removed plan stops
    /// being served immediately on this node.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(key)
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every entry, shard by shard, each shard
    /// listed from least to most recently used. Re-inserting the entries
    /// in this order reproduces each shard's eviction order, which is what
    /// the durable layer's snapshot compaction and warm-start replay need.
    /// Shards are locked one at a time, so concurrent mutators are never
    /// blocked globally (the copy is a consistent snapshot per shard, not
    /// across shards — same contract as [`ShardedLruCache::len`]).
    pub fn entries(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .entries_lru_first(),
            );
        }
        out
    }

    /// Drops every entry in every shard. The model lifecycle layer calls
    /// this on hot swap and rollback: cached plans are artifacts of the
    /// model version that produced them, so a version change makes the
    /// whole cache stale at once. Shards are cleared one at a time, so
    /// concurrent readers never block on a global lock — they just start
    /// missing.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_insert_roundtrip() {
        let cache: ShardedLruCache<u64, String> = ShardedLruCache::new(8, 2);
        assert!(cache.get(&1).is_none());
        cache.insert(1, "one".into());
        cache.insert(2, "two".into());
        assert_eq!(cache.get(&1).as_deref(), Some("one"));
        assert_eq!(cache.get(&2).as_deref(), Some("two"));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        // Single shard so the eviction order is fully deterministic.
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(cache.get(&1), Some(10));
        cache.insert(3, 30);
        assert_eq!(cache.get(&2), None, "LRU entry evicted");
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11);
        cache.insert(3, 30);
        assert_eq!(cache.get(&1), Some(11), "updated in place");
        assert_eq!(cache.get(&2), None, "stale entry evicted");
    }

    #[test]
    fn clear_empties_every_shard_and_allows_reuse() {
        // Per-shard capacity 16: no shard can overflow on 12 keys, whatever
        // the (randomly seeded) shard hash does.
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(64, 4);
        for k in 0..12 {
            cache.insert(k, k * 10);
        }
        assert_eq!(cache.len(), 12);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&3), None);
        cache.insert(3, 31);
        assert_eq!(cache.get(&3), Some(31), "cache usable after clear");
    }

    #[test]
    fn remove_deletes_and_frees_the_slot() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.remove(&1), Some(10));
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.remove(&1), None, "second remove is a miss");
        assert_eq!(cache.len(), 1);
        // The freed slot is reused without evicting the survivor.
        cache.insert(3, 30);
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.len(), 2);
        // Removing the only remaining entries empties the shard cleanly.
        assert_eq!(cache.remove(&2), Some(20));
        assert_eq!(cache.remove(&3), Some(30));
        assert!(cache.is_empty());
        cache.insert(4, 40);
        assert_eq!(cache.get(&4), Some(40), "empty list re-grows");
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(0, 4);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn slab_reuse_after_many_evictions() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::new(4, 1);
        for i in 0..100 {
            cache.insert(i, i * 2);
        }
        assert_eq!(cache.len(), 4);
        for i in 96..100 {
            assert_eq!(cache.get(&i), Some(i * 2));
        }
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let cache: Arc<ShardedLruCache<u64, u64>> = Arc::new(ShardedLruCache::new(64, 8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        cache.insert(t * 1000 + i, i);
                        let _ = cache.get(&(t * 1000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 64 + 8, "respects capacity up to rounding");
    }
}

//! Metrics snapshots and Prometheus text exposition.
//!
//! [`MetricsSnapshot`] is the one shape in which service state leaves
//! [`PlannerService`](crate::serve::PlannerService): counters, latency
//! histograms, gauges (cache occupancy, queue depth, breaker state), and —
//! when tracing is enabled — the per-[`Stage`] latency histograms from the
//! [`Tracer`](crate::trace::Tracer).
//!
//! # Consistency guarantee
//!
//! A snapshot is a single point-in-time pass over relaxed atomic counters:
//! each field is individually exact, and no counter can decrease between
//! snapshots. Fields are *not* read inside one global critical section, so
//! a snapshot taken while requests are in flight may catch a request
//! between its `requests` increment and its outcome counter; once the
//! service is quiescent (all replies delivered, or after
//! [`shutdown`](crate::serve::PlannerService::shutdown)) the counting
//! identity `requests == cache_hits + model_plans + fallbacks + errors`
//! holds exactly. The chaos suite audits this identity under fault storms.
//!
//! # Exposition format
//!
//! [`render_prometheus`] emits the Prometheus text format (v0.0.4):
//! counters as `_total`, gauges plainly, breaker state as a one-hot state
//! set, and every histogram with its native power-of-two buckets converted
//! to seconds (`le` edges `2^(i+1)` ns), plus `_sum`/`_count` and a
//! companion `_max_seconds` gauge carrying the true maximum (see
//! [`LatencyHistogram::max_nanos`]). Output is deterministic for a given
//! snapshot — CI diffs it against a golden file to catch format drift.

use crate::resilience::BreakerState;
use crate::serve::LatencyHistogram;
use crate::trace::Stage;
use std::fmt::Write as _;

/// A point-in-time snapshot of service counters, histograms, and gauges,
/// from [`metrics`](crate::serve::PlannerService::metrics). See the
/// [module docs](self) for the consistency guarantee.
///
/// Counting identity: `requests == cache_hits + model_plans + fallbacks +
/// errors` — every accepted request is counted exactly once by how it
/// returned. `timeouts` and `sheds` are sub-counts of `errors`.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Requests accepted by [`plan`](crate::serve::PlannerService::plan).
    pub requests: u64,
    /// Requests answered from the plan cache.
    pub cache_hits: u64,
    /// Requests answered by a model forward.
    pub model_plans: u64,
    /// Requests answered by the classical fallback planner.
    pub fallbacks: u64,
    /// Requests that returned an error (includes timeouts and sheds).
    pub errors: u64,
    /// Requests that returned [`MtmlfError::Timeout`](crate::MtmlfError::Timeout).
    pub timeouts: u64,
    /// Requests shed at admission with
    /// [`MtmlfError::Overloaded`](crate::MtmlfError::Overloaded).
    pub sheds: u64,
    /// Queued jobs a worker dropped without forwarding because their
    /// deadline had already passed (their clients had timed out).
    pub expired: u64,
    /// Model forward attempts that were retried after a transient error.
    pub retries: u64,
    /// Times the circuit breaker transitioned to Open.
    pub breaker_opens: u64,
    /// Batched forwards executed by workers.
    pub batches: u64,
    /// Cache-miss queries that went through those batches.
    pub batched_queries: u64,
    /// Model hot swaps completed (direct swaps plus canary promotions).
    pub swaps: u64,
    /// Model rollbacks (explicit restores plus canary roll-backs).
    pub rollbacks: u64,
    /// Candidate adoptions rejected before promotion (corrupt or
    /// truncated registry snapshots).
    pub swap_rejections: u64,
    /// Shadow evaluations run against candidate models.
    pub shadow_evals: u64,
    /// Requests routed to a canary model.
    pub canary_requests: u64,
    /// Active model version (registry-assigned; 0 for an unregistered
    /// boot model).
    pub model_version: u64,
    /// Whether a canary model is currently staged.
    pub canary_active: bool,
    /// Last drift score published by the lifecycle loop
    /// ([`set_drift_score`](crate::serve::PlannerService::set_drift_score)):
    /// the drift window's median q-error.
    pub drift_score: f64,
    /// Plan-cache entries restored from the durable log when the service
    /// started (0 for volatile services; DESIGN.md §16).
    pub warm_start_entries: u64,
    /// Durable-log snapshot compactions performed since the service
    /// started.
    pub log_compactions: u64,
    /// Storage buffer-manager columns currently spilled to disk, as last
    /// published via
    /// [`set_spilled_frames`](crate::serve::PlannerService::set_spilled_frames).
    pub spilled_frames: u64,
    /// Latency distribution of cache-served responses.
    pub cache_latency: LatencyHistogram,
    /// Latency distribution of model-served responses.
    pub model_latency: LatencyHistogram,
    /// Latency distribution of fallback-served responses.
    pub fallback_latency: LatencyHistogram,
    /// Circuit-breaker state at snapshot time.
    pub breaker_state: BreakerState,
    /// Plan-cache entries at snapshot time.
    pub cached_plans: u64,
    /// Admitted-but-not-yet-dequeued requests at snapshot time.
    pub queue_depth: u64,
    /// Whether the service was built with `.tracing(..)`.
    pub tracing_enabled: bool,
    /// Complete request traces recorded (0 when tracing is off).
    pub traces: u64,
    /// Per-stage latency histograms, indexed by [`Stage::index`]; all empty
    /// when tracing is off.
    pub stage_latency: [LatencyHistogram; Stage::COUNT],
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        Self {
            requests: 0,
            cache_hits: 0,
            model_plans: 0,
            fallbacks: 0,
            errors: 0,
            timeouts: 0,
            sheds: 0,
            expired: 0,
            retries: 0,
            breaker_opens: 0,
            batches: 0,
            batched_queries: 0,
            swaps: 0,
            rollbacks: 0,
            swap_rejections: 0,
            shadow_evals: 0,
            canary_requests: 0,
            model_version: 0,
            canary_active: false,
            drift_score: 0.0,
            warm_start_entries: 0,
            log_compactions: 0,
            spilled_frames: 0,
            cache_latency: LatencyHistogram::default(),
            model_latency: LatencyHistogram::default(),
            fallback_latency: LatencyHistogram::default(),
            breaker_state: BreakerState::Closed,
            cached_plans: 0,
            queue_depth: 0,
            tracing_enabled: false,
            traces: 0,
            stage_latency: std::array::from_fn(|_| LatencyHistogram::default()),
        }
    }
}

impl MetricsSnapshot {
    /// Fraction of answered requests served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let answered = self.cache_hits + self.model_plans + self.fallbacks;
        if answered == 0 {
            0.0
        } else {
            self.cache_hits as f64 / answered as f64
        }
    }

    /// The latency histogram for one lifecycle stage.
    pub fn stage(&self, stage: Stage) -> &LatencyHistogram {
        &self.stage_latency[stage.index()]
    }
}

/// Renders `nanos` as decimal seconds with no trailing zeros, via exact
/// integer arithmetic (so the exposition is deterministic — no float
/// formatting in the output path).
fn seconds(nanos: u64) -> String {
    let secs = nanos / 1_000_000_000;
    let frac = nanos % 1_000_000_000;
    if frac == 0 {
        return format!("{secs}");
    }
    let mut f = format!("{frac:09}");
    while f.ends_with('0') {
        f.pop();
    }
    format!("{secs}.{f}")
}

fn push_counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn push_gauge(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// A float-valued gauge. Rust's shortest-round-trip `Display` is
/// deterministic for a given value; non-finite values use Prometheus
/// spelling (`+Inf`/`-Inf`/`NaN`).
fn push_float_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    if value.is_nan() {
        let _ = writeln!(out, "{name} NaN");
    } else if value.is_infinite() {
        let _ = writeln!(out, "{name} {}Inf", if value > 0.0 { "+" } else { "-" });
    } else {
        let _ = writeln!(out, "{name} {value}");
    }
}

/// One histogram series under an already-declared metric family.
fn push_histogram(out: &mut String, name: &str, label: &str, value: &str, h: &LatencyHistogram) {
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().enumerate() {
        cumulative += n;
        if i == h.buckets.len() - 1 {
            // The top bucket is a catch-all, so its edge is +Inf.
            let _ = writeln!(
                out,
                "{name}_bucket{{{label}=\"{value}\",le=\"+Inf\"}} {cumulative}"
            );
        } else {
            let edge = seconds(1u64 << (i + 1));
            let _ = writeln!(
                out,
                "{name}_bucket{{{label}=\"{value}\",le=\"{edge}\"}} {cumulative}"
            );
        }
    }
    let _ = writeln!(
        out,
        "{name}_sum{{{label}=\"{value}\"}} {}",
        seconds(h.total_nanos)
    );
    let _ = writeln!(out, "{name}_count{{{label}=\"{value}\"}} {}", h.count);
}

fn push_histogram_family<'a>(
    out: &mut String,
    name: &str,
    help: &str,
    label: &str,
    series: impl Iterator<Item = (&'a str, &'a LatencyHistogram)> + Clone,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (value, h) in series.clone() {
        push_histogram(out, name, label, value, h);
    }
    let max_name = format!("{name}_max");
    let _ = writeln!(
        out,
        "# HELP {max_name} True maximum observed for {name} (histograms round up to bucket edges)."
    );
    let _ = writeln!(out, "# TYPE {max_name} gauge");
    for (value, h) in series {
        let _ = writeln!(
            out,
            "{max_name}{{{label}=\"{value}\"}} {}",
            seconds(h.max_nanos)
        );
    }
}

/// Renders a snapshot in the Prometheus text exposition format (v0.0.4).
///
/// The output is deterministic: same snapshot, same bytes. CI compares a
/// synthetic snapshot's rendering against
/// `crates/core/testdata/prometheus_golden.txt` so that accidental drift in
/// names, labels, or bucket edges fails the build.
pub fn render_prometheus(m: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(16 * 1024);

    push_counter(
        &mut out,
        "mtmlf_requests_total",
        "Requests accepted by the planner service.",
        m.requests,
    );
    let _ = writeln!(
        out,
        "# HELP mtmlf_responses_total Requests answered, by plan source."
    );
    let _ = writeln!(out, "# TYPE mtmlf_responses_total counter");
    let _ = writeln!(out, "mtmlf_responses_total{{source=\"cache\"}} {}", m.cache_hits);
    let _ = writeln!(out, "mtmlf_responses_total{{source=\"model\"}} {}", m.model_plans);
    let _ = writeln!(
        out,
        "mtmlf_responses_total{{source=\"fallback\"}} {}",
        m.fallbacks
    );
    push_counter(
        &mut out,
        "mtmlf_errors_total",
        "Requests that returned an error (includes timeouts and sheds).",
        m.errors,
    );
    push_counter(
        &mut out,
        "mtmlf_timeouts_total",
        "Requests that exceeded their deadline.",
        m.timeouts,
    );
    push_counter(
        &mut out,
        "mtmlf_sheds_total",
        "Requests shed at admission because the queue was full.",
        m.sheds,
    );
    push_counter(
        &mut out,
        "mtmlf_expired_total",
        "Queued jobs dropped before the forward because their deadline had passed.",
        m.expired,
    );
    push_counter(
        &mut out,
        "mtmlf_retries_total",
        "Model forwards retried after a transient error.",
        m.retries,
    );
    push_counter(
        &mut out,
        "mtmlf_breaker_opens_total",
        "Circuit-breaker transitions to Open.",
        m.breaker_opens,
    );
    push_counter(
        &mut out,
        "mtmlf_batches_total",
        "Batched model forwards executed by workers.",
        m.batches,
    );
    push_counter(
        &mut out,
        "mtmlf_batched_queries_total",
        "Cache-miss queries planned through batched forwards.",
        m.batched_queries,
    );
    push_counter(
        &mut out,
        "mtmlf_traces_total",
        "Complete request traces recorded.",
        m.traces,
    );
    push_counter(
        &mut out,
        "mtmlf_model_swaps_total",
        "Model hot swaps completed (direct swaps plus canary promotions).",
        m.swaps,
    );
    push_counter(
        &mut out,
        "mtmlf_model_rollbacks_total",
        "Model rollbacks (explicit restores plus canary roll-backs).",
        m.rollbacks,
    );
    push_counter(
        &mut out,
        "mtmlf_swap_rejected_total",
        "Candidate adoptions rejected before promotion (corrupt snapshots).",
        m.swap_rejections,
    );
    push_counter(
        &mut out,
        "mtmlf_shadow_evals_total",
        "Shadow evaluations run against candidate models.",
        m.shadow_evals,
    );
    push_counter(
        &mut out,
        "mtmlf_canary_requests_total",
        "Requests routed to a canary model.",
        m.canary_requests,
    );
    push_counter(
        &mut out,
        "mtmlf_warm_start_entries_total",
        "Plan-cache entries restored from the durable log at service start.",
        m.warm_start_entries,
    );
    push_counter(
        &mut out,
        "mtmlf_log_compactions_total",
        "Durable-log snapshot compactions since service start.",
        m.log_compactions,
    );

    push_gauge(
        &mut out,
        "mtmlf_cache_entries",
        "Plan-cache entries currently held.",
        m.cached_plans,
    );
    push_gauge(
        &mut out,
        "mtmlf_queue_depth",
        "Admitted requests not yet dequeued by a worker.",
        m.queue_depth,
    );
    push_gauge(
        &mut out,
        "mtmlf_tracing_enabled",
        "1 when the service records plan-lifecycle traces.",
        u64::from(m.tracing_enabled),
    );
    push_gauge(
        &mut out,
        "mtmlf_model_version",
        "Active model version (0 for an unregistered boot model).",
        m.model_version,
    );
    push_gauge(
        &mut out,
        "mtmlf_canary_active",
        "1 when a canary model is staged.",
        u64::from(m.canary_active),
    );
    push_float_gauge(
        &mut out,
        "mtmlf_drift_score",
        "Last published drift score (drift-window median q-error).",
        m.drift_score,
    );
    push_gauge(
        &mut out,
        "mtmlf_spilled_frames",
        "Buffer-manager columns currently spilled to disk.",
        m.spilled_frames,
    );
    let _ = writeln!(
        out,
        "# HELP mtmlf_breaker_state Circuit-breaker state as a one-hot set."
    );
    let _ = writeln!(out, "# TYPE mtmlf_breaker_state gauge");
    for (state, name) in [
        (BreakerState::Closed, "closed"),
        (BreakerState::Open, "open"),
        (BreakerState::HalfOpen, "half_open"),
    ] {
        let _ = writeln!(
            out,
            "mtmlf_breaker_state{{state=\"{name}\"}} {}",
            u64::from(m.breaker_state == state)
        );
    }

    push_histogram_family(
        &mut out,
        "mtmlf_response_latency_seconds",
        "End-to-end response latency, by plan source.",
        "source",
        [
            ("cache", &m.cache_latency),
            ("model", &m.model_latency),
            ("fallback", &m.fallback_latency),
        ]
        .into_iter(),
    );
    push_histogram_family(
        &mut out,
        "mtmlf_stage_latency_seconds",
        "Per-request time spent in each plan-lifecycle stage.",
        "stage",
        Stage::ALL
            .iter()
            .map(|&s| (s.name(), &m.stage_latency[s.index()])),
    );

    out
}

/// One counter family with a `replica` label, one series per replica.
fn push_replica_counter(
    out: &mut String,
    name: &str,
    help: &str,
    series: impl Iterator<Item = (usize, u64)>,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    for (id, value) in series {
        let _ = writeln!(out, "{name}{{replica=\"{id}\"}} {value}");
    }
}

/// Renders a cluster snapshot in the Prometheus text exposition format:
/// router-level counters plus per-replica series labeled `replica="N"`.
///
/// Deterministic like [`render_prometheus`]; CI diffs a synthetic
/// snapshot's rendering against
/// `crates/core/testdata/prometheus_cluster_golden.txt`.
pub fn render_prometheus_cluster(m: &crate::cluster::ClusterMetricsSnapshot) -> String {
    let mut out = String::with_capacity(8 * 1024);

    push_replica_counter(
        &mut out,
        "mtmlf_cluster_routed_total",
        "Requests answered by each replica.",
        m.replicas.iter().map(|r| (r.id, r.routed)),
    );
    push_counter(
        &mut out,
        "mtmlf_cluster_failovers_total",
        "Requests answered by a replica other than their ring primary.",
        m.failovers,
    );
    push_counter(
        &mut out,
        "mtmlf_cluster_breaker_skips_total",
        "Route candidates skipped because their router-side breaker was open.",
        m.breaker_skips,
    );
    push_counter(
        &mut out,
        "mtmlf_cluster_unhealthy_skips_total",
        "Route candidates skipped because the replica reported unhealthy.",
        m.unhealthy_skips,
    );
    push_counter(
        &mut out,
        "mtmlf_cluster_warms_sent_total",
        "Cache-warming messages gossiped to peer replicas.",
        m.warms_sent,
    );
    push_counter(
        &mut out,
        "mtmlf_cluster_warms_applied_total",
        "Cache-warming messages applied to a peer's plan cache.",
        m.warms_applied,
    );
    push_counter(
        &mut out,
        "mtmlf_cluster_warms_discarded_total",
        "Cache-warming messages discarded as stale (tombstoned).",
        m.warms_discarded,
    );
    push_counter(
        &mut out,
        "mtmlf_cluster_invalidations_total",
        "Cluster-wide plan invalidations issued.",
        m.invalidations,
    );
    push_gauge(
        &mut out,
        "mtmlf_cluster_epoch",
        "Current cluster coherence epoch (bumped by every invalidation).",
        m.epoch,
    );

    let _ = writeln!(
        out,
        "# HELP mtmlf_cluster_replica_healthy 1 when the replica passes the router's health check."
    );
    let _ = writeln!(out, "# TYPE mtmlf_cluster_replica_healthy gauge");
    for r in &m.replicas {
        let _ = writeln!(
            out,
            "mtmlf_cluster_replica_healthy{{replica=\"{}\"}} {}",
            r.id,
            u64::from(r.healthy)
        );
    }
    let _ = writeln!(
        out,
        "# HELP mtmlf_cluster_replica_in_ring 1 when the replica currently owns ring positions."
    );
    let _ = writeln!(out, "# TYPE mtmlf_cluster_replica_in_ring gauge");
    for r in &m.replicas {
        let _ = writeln!(
            out,
            "mtmlf_cluster_replica_in_ring{{replica=\"{}\"}} {}",
            r.id,
            u64::from(r.in_ring)
        );
    }
    let _ = writeln!(
        out,
        "# HELP mtmlf_cluster_replica_breaker_state Router-side breaker state per replica, one-hot."
    );
    let _ = writeln!(out, "# TYPE mtmlf_cluster_replica_breaker_state gauge");
    for r in &m.replicas {
        for (state, name) in [
            (BreakerState::Closed, "closed"),
            (BreakerState::Open, "open"),
            (BreakerState::HalfOpen, "half_open"),
        ] {
            let _ = writeln!(
                out,
                "mtmlf_cluster_replica_breaker_state{{replica=\"{}\",state=\"{name}\"}} {}",
                r.id,
                u64::from(r.breaker_state == state)
            );
        }
    }

    // Per-replica service counters, for replicas that keep service metrics.
    push_replica_counter(
        &mut out,
        "mtmlf_cluster_replica_requests_total",
        "Requests accepted by each replica's planner service.",
        m.replicas
            .iter()
            .filter_map(|r| r.service.as_ref().map(|s| (r.id, s.requests))),
    );
    push_replica_counter(
        &mut out,
        "mtmlf_cluster_replica_cache_hits_total",
        "Plan-cache hits served by each replica.",
        m.replicas
            .iter()
            .filter_map(|r| r.service.as_ref().map(|s| (r.id, s.cache_hits))),
    );
    let _ = writeln!(
        out,
        "# HELP mtmlf_cluster_replica_cache_entries Plan-cache entries currently held per replica."
    );
    let _ = writeln!(out, "# TYPE mtmlf_cluster_replica_cache_entries gauge");
    for r in &m.replicas {
        if let Some(s) = &r.service {
            let _ = writeln!(
                out,
                "mtmlf_cluster_replica_cache_entries{{replica=\"{}\"}} {}",
                r.id, s.cached_plans
            );
        }
    }
    let _ = writeln!(
        out,
        "# HELP mtmlf_cluster_replica_model_version Active model version per replica."
    );
    let _ = writeln!(out, "# TYPE mtmlf_cluster_replica_model_version gauge");
    for r in &m.replicas {
        if let Some(s) = &r.service {
            let _ = writeln!(
                out,
                "mtmlf_cluster_replica_model_version{{replica=\"{}\"}} {}",
                r.id, s.model_version
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic snapshot with every field distinct and deterministic —
    /// the subject of the golden-file drift check.
    fn fixture() -> MetricsSnapshot {
        let mut m = MetricsSnapshot {
            requests: 100,
            cache_hits: 40,
            model_plans: 30,
            fallbacks: 20,
            errors: 10,
            timeouts: 4,
            sheds: 3,
            expired: 2,
            retries: 7,
            breaker_opens: 1,
            batches: 12,
            batched_queries: 50,
            breaker_state: BreakerState::HalfOpen,
            cached_plans: 17,
            queue_depth: 5,
            tracing_enabled: true,
            traces: 97,
            swaps: 6,
            rollbacks: 2,
            swap_rejections: 1,
            shadow_evals: 9,
            canary_requests: 11,
            model_version: 4,
            canary_active: true,
            drift_score: 1.75,
            warm_start_entries: 13,
            log_compactions: 3,
            spilled_frames: 8,
            ..MetricsSnapshot::default()
        };
        for nanos in [800, 1_500, 70_000] {
            m.cache_latency.record_nanos(nanos);
        }
        for nanos in [2_000_000, 9_000_000] {
            m.model_latency.record_nanos(nanos);
        }
        m.fallback_latency.record_nanos(350_000);
        for (i, stage) in Stage::ALL.iter().enumerate() {
            m.stage_latency[stage.index()].record_nanos(1_000 * (i as u64 + 1));
            m.stage_latency[stage.index()].record_nanos(250);
        }
        m
    }

    #[test]
    fn prometheus_rendering_matches_the_golden_snapshot() {
        let rendered = render_prometheus(&fixture());
        if std::env::var_os("MTMLF_UPDATE_GOLDEN").is_some() {
            std::fs::write("crates/core/testdata/prometheus_golden.txt", &rendered)
                .expect("write golden");
        }
        let golden = include_str!("../testdata/prometheus_golden.txt");
        assert_eq!(
            rendered, golden,
            "render_prometheus drifted from the golden snapshot; if the change \
             is intentional, regenerate with MTMLF_UPDATE_GOLDEN=1 and commit"
        );
    }

    #[test]
    fn exposition_covers_counters_gauges_and_required_stages() {
        let text = render_prometheus(&fixture());
        assert!(text.contains("mtmlf_requests_total 100"));
        assert!(text.contains("mtmlf_responses_total{source=\"cache\"} 40"));
        assert!(text.contains("mtmlf_responses_total{source=\"model\"} 30"));
        assert!(text.contains("mtmlf_responses_total{source=\"fallback\"} 20"));
        assert!(text.contains("mtmlf_breaker_opens_total 1"));
        assert!(text.contains("mtmlf_cache_entries 17"));
        assert!(text.contains("mtmlf_queue_depth 5"));
        assert!(text.contains("mtmlf_tracing_enabled 1"));
        assert!(text.contains("mtmlf_breaker_state{state=\"half_open\"} 1"));
        assert!(text.contains("mtmlf_breaker_state{state=\"closed\"} 0"));
        assert!(text.contains("mtmlf_model_swaps_total 6"));
        assert!(text.contains("mtmlf_model_rollbacks_total 2"));
        assert!(text.contains("mtmlf_swap_rejected_total 1"));
        assert!(text.contains("mtmlf_shadow_evals_total 9"));
        assert!(text.contains("mtmlf_canary_requests_total 11"));
        assert!(text.contains("mtmlf_model_version 4"));
        assert!(text.contains("mtmlf_canary_active 1"));
        assert!(text.contains("mtmlf_drift_score 1.75"));
        assert!(text.contains("mtmlf_warm_start_entries_total 13"));
        assert!(text.contains("mtmlf_log_compactions_total 3"));
        assert!(text.contains("mtmlf_spilled_frames 8"));
        // The acceptance-critical stages all appear with bucket series.
        for stage in ["cache_lookup", "featurize", "forward", "beam", "fallback"] {
            assert!(
                text.contains(&format!(
                    "mtmlf_stage_latency_seconds_bucket{{stage=\"{stage}\""
                )),
                "missing stage series {stage}"
            );
            assert!(text.contains(&format!(
                "mtmlf_stage_latency_seconds_count{{stage=\"{stage}\"}} 2"
            )));
        }
        // Histograms carry sum, count, +Inf, and the true-max gauge.
        assert!(text.contains("mtmlf_response_latency_seconds_bucket{source=\"cache\",le=\"+Inf\"} 3"));
        assert!(text.contains("mtmlf_response_latency_seconds_count{source=\"cache\"} 3"));
        assert!(text.contains("mtmlf_response_latency_seconds_max{source=\"cache\"} 0.00007"));
        assert!(text.contains("mtmlf_response_latency_seconds_max{source=\"model\"} 0.009"));
    }

    /// A synthetic cluster snapshot: two replicas in different states, one
    /// with service metrics and one without.
    fn cluster_fixture() -> crate::cluster::ClusterMetricsSnapshot {
        use crate::cluster::{ClusterMetricsSnapshot, ReplicaSnapshot};
        let service = MetricsSnapshot {
            requests: 60,
            cache_hits: 25,
            cached_plans: 9,
            model_version: 3,
            ..MetricsSnapshot::default()
        };
        ClusterMetricsSnapshot {
            replicas: vec![
                ReplicaSnapshot {
                    id: 0,
                    routed: 55,
                    healthy: true,
                    in_ring: true,
                    breaker_state: BreakerState::Closed,
                    service: Some(service),
                },
                ReplicaSnapshot {
                    id: 1,
                    routed: 45,
                    healthy: false,
                    in_ring: false,
                    breaker_state: BreakerState::Open,
                    service: None,
                },
            ],
            failovers: 6,
            breaker_skips: 4,
            unhealthy_skips: 3,
            warms_sent: 80,
            warms_applied: 70,
            warms_discarded: 5,
            invalidations: 2,
            epoch: 2,
        }
    }

    #[test]
    fn cluster_prometheus_rendering_matches_the_golden_snapshot() {
        let rendered = render_prometheus_cluster(&cluster_fixture());
        if std::env::var_os("MTMLF_UPDATE_GOLDEN").is_some() {
            std::fs::write("crates/core/testdata/prometheus_cluster_golden.txt", &rendered)
                .expect("write golden");
        }
        let golden = include_str!("../testdata/prometheus_cluster_golden.txt");
        assert_eq!(
            rendered, golden,
            "render_prometheus_cluster drifted from the golden snapshot; if \
             the change is intentional, regenerate with MTMLF_UPDATE_GOLDEN=1 \
             and commit"
        );
    }

    #[test]
    fn cluster_exposition_labels_every_replica() {
        let text = render_prometheus_cluster(&cluster_fixture());
        assert!(text.contains("mtmlf_cluster_routed_total{replica=\"0\"} 55"));
        assert!(text.contains("mtmlf_cluster_routed_total{replica=\"1\"} 45"));
        assert!(text.contains("mtmlf_cluster_failovers_total 6"));
        assert!(text.contains("mtmlf_cluster_breaker_skips_total 4"));
        assert!(text.contains("mtmlf_cluster_warms_sent_total 80"));
        assert!(text.contains("mtmlf_cluster_warms_discarded_total 5"));
        assert!(text.contains("mtmlf_cluster_epoch 2"));
        assert!(text.contains("mtmlf_cluster_replica_healthy{replica=\"0\"} 1"));
        assert!(text.contains("mtmlf_cluster_replica_healthy{replica=\"1\"} 0"));
        assert!(text.contains("mtmlf_cluster_replica_in_ring{replica=\"1\"} 0"));
        assert!(text.contains(
            "mtmlf_cluster_replica_breaker_state{replica=\"1\",state=\"open\"} 1"
        ));
        assert!(text.contains(
            "mtmlf_cluster_replica_breaker_state{replica=\"0\",state=\"closed\"} 1"
        ));
        // Service sub-metrics appear only for the replica that has them.
        assert!(text.contains("mtmlf_cluster_replica_requests_total{replica=\"0\"} 60"));
        assert!(!text.contains("mtmlf_cluster_replica_requests_total{replica=\"1\"}"));
        assert!(text.contains("mtmlf_cluster_replica_cache_entries{replica=\"0\"} 9"));
        assert!(text.contains("mtmlf_cluster_replica_model_version{replica=\"0\"} 3"));
        assert!(!text.contains("mtmlf_cluster_replica_model_version{replica=\"1\"}"));
    }

    #[test]
    fn float_gauge_spells_nonfinite_values_like_prometheus() {
        let mut out = String::new();
        push_float_gauge(&mut out, "g", "h", f64::INFINITY);
        assert!(out.contains("g +Inf"));
        out.clear();
        push_float_gauge(&mut out, "g", "h", f64::NEG_INFINITY);
        assert!(out.contains("g -Inf"));
        out.clear();
        push_float_gauge(&mut out, "g", "h", f64::NAN);
        assert!(out.contains("g NaN"));
        out.clear();
        push_float_gauge(&mut out, "g", "h", 0.25);
        assert!(out.contains("g 0.25"));
    }

    #[test]
    fn seconds_formatting_is_exact_and_trimmed() {
        assert_eq!(seconds(0), "0");
        assert_eq!(seconds(2), "0.000000002");
        assert_eq!(seconds(1u64 << 31), "2.147483648");
        assert_eq!(seconds(1_000_000_000), "1");
        assert_eq!(seconds(1_500_000_000), "1.5");
        assert_eq!(seconds(70_000), "0.00007");
    }

    #[test]
    fn default_snapshot_is_empty_and_closed() {
        let m = MetricsSnapshot::default();
        assert_eq!(m.requests, 0);
        assert_eq!(m.breaker_state, BreakerState::Closed);
        assert!(!m.tracing_enabled);
        assert_eq!(m.cache_hit_rate(), 0.0);
        assert_eq!(m.stage(Stage::Forward).count, 0);
    }
}

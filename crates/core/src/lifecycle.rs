//! Online model lifecycle: versioned registry, drift detection, shadow
//! evaluation, and atomic hot swap with canary/rollback.
//!
//! The paper's central claim is that one transferable model can serve
//! evolving workloads. This module makes that operational for a live
//! [`PlannerService`](crate::serve::PlannerService):
//!
//! 1. [`ModelRegistry`] — a directory of versioned, checksummed weight
//!    snapshots over the persist envelope (`crate::persist`). Versions are
//!    monotonic; every load re-validates the FNV-1a checksum, so a
//!    truncated or bit-flipped candidate is rejected with
//!    [`MtmlfError::Corrupt`] *before* any parameter is touched and can
//!    never be promoted.
//! 2. [`DriftDetector`] — a sliding window of recent production requests
//!    (captured from the [`RequestTrace`](crate::trace::RequestTrace) ring
//!    buffer) scored by median q-error and mean JOEU; it fires when either
//!    regresses past configurable thresholds.
//! 3. [`shadow_evaluate`] — replays the drift window against a candidate
//!    model off the hot path and produces a promote/reject verdict with
//!    the regression-gate methodology from `results/ablation_drift.txt`:
//!    a candidate is promoted only if its window q-error does not regress
//!    past the baseline's by more than a configured factor (and its JOEU
//!    does not drop past a tolerance).
//! 4. [`ModelSlot`] — the swap point itself. Workers resolve the model
//!    *once per batch* through [`ModelSlot::select`], so a batch is planned
//!    end-to-end by exactly one version; the swap is a single short
//!    write-lock pointer exchange, and in-flight batches keep their `Arc`
//!    to the old version until they finish. A canary stage routes a
//!    configurable fraction of batches to the candidate first, with
//!    automatic rollback on canary regression or breaker trip
//!    ([`PlannerService::resolve_canary`](crate::serve::PlannerService::resolve_canary)).
//!
//! Candidate models must be *freshly constructed* instances
//! (`MtmlfQo::new` is deterministic per seed): parameters are shared
//! handles, so loading registry weights into anything aliasing the live
//! model would mutate it in place. [`ModelRegistry::load_into`] therefore
//! takes `&mut MtmlfQo` — the caller proves it owns the target exclusively.
//!
//! Determinism (lint rule L2, strict tier like `trace.rs`): this module
//! never reads a std clock and never names one — windows are counted in
//! requests, not seconds, and anything time-like is injected by callers.

use crate::error::MtmlfError;
use crate::model::MtmlfQo;
use crate::trace::{RequestTrace, TraceOutcome};
use crate::Result;
use mtmlf_query::{JoinOrder, Query};
use std::collections::VecDeque;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// A monotonically increasing model version. `ModelVersion(0)` is the
/// boot version of a service started from an unregistered model; the
/// registry hands out versions starting at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ModelVersion(pub u64);

impl ModelVersion {
    /// The successor version.
    pub fn next(self) -> Self {
        ModelVersion(self.0.saturating_add(1))
    }
}

impl fmt::Display for ModelVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

// ---------------------------------------------------------------------------
// Model registry
// ---------------------------------------------------------------------------

/// A directory of versioned weight snapshots in the checksummed persist
/// envelope. Thread-safe: `publish` serializes version assignment under a
/// mutex, so concurrent publishers get distinct, strictly increasing
/// versions.
pub struct ModelRegistry {
    dir: PathBuf,
    /// Sorted list of versions present on disk.
    versions: Mutex<Vec<u64>>,
}

impl ModelRegistry {
    /// Opens (creating if needed) a registry at `dir` and scans it for
    /// existing snapshots. Files that do not match the snapshot naming
    /// scheme are ignored.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut versions = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            if let Some(v) = Self::parse_version(&entry.file_name().to_string_lossy()) {
                versions.push(v);
            }
        }
        versions.sort_unstable();
        versions.dedup();
        Ok(Self {
            dir,
            versions: Mutex::new(versions),
        })
    }

    fn parse_version(name: &str) -> Option<u64> {
        let rest = name.strip_prefix("model-v")?;
        let digits = rest.strip_suffix(".weights")?;
        digits.parse().ok()
    }

    fn file_name(version: ModelVersion) -> String {
        // Zero-padded so lexicographic directory order equals version order.
        format!("model-v{:020}.weights", version.0)
    }

    /// The on-disk path of `version`'s snapshot (whether or not it exists).
    /// Fault-injection tests corrupt the file behind this path to prove
    /// that a damaged candidate can never be promoted.
    pub fn path_of(&self, version: ModelVersion) -> PathBuf {
        self.dir.join(Self::file_name(version))
    }

    /// Snapshots `model`'s weights as the next version and returns it.
    /// The write goes to a temporary file first and is renamed into place,
    /// so a crash mid-publish leaves no half-written snapshot under a
    /// version name — and even if it did, the checksum check on load
    /// rejects it.
    pub fn publish(&self, model: &MtmlfQo) -> Result<ModelVersion> {
        let mut versions = self.versions.lock().unwrap_or_else(PoisonError::into_inner);
        let version = ModelVersion(versions.last().copied().unwrap_or(0).saturating_add(1));
        let path = self.path_of(version);
        let tmp = path.with_extension("weights.tmp");
        model.save_weights(&tmp)?;
        std::fs::rename(&tmp, &path)?;
        versions.push(version.0);
        Ok(version)
    }

    /// All versions on disk, oldest first.
    pub fn versions(&self) -> Vec<ModelVersion> {
        self.versions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .copied()
            .map(ModelVersion)
            .collect()
    }

    /// The newest published version, if any.
    pub fn latest(&self) -> Option<ModelVersion> {
        self.versions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .last()
            .copied()
            .map(ModelVersion)
    }

    /// Whether `version` has a snapshot on disk.
    pub fn contains(&self, version: ModelVersion) -> bool {
        self.versions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .binary_search(&version.0)
            .is_ok()
    }

    /// Loads `version`'s weights into `target`, a freshly constructed model
    /// of the same architecture. The persist envelope validates magic,
    /// length, and checksum before any parameter is written, so on
    /// [`MtmlfError::Corrupt`] (or any other error) `target` is untouched
    /// — and the live model, which `target` must not alias, is never at
    /// risk.
    pub fn load_into(&self, version: ModelVersion, target: &mut MtmlfQo) -> Result<()> {
        target.load_weights(self.path_of(version))
    }
}

impl fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("dir", &self.dir)
            .field("versions", &self.versions())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Drift detection
// ---------------------------------------------------------------------------

/// The q-error of a cardinality estimate: `max(est/actual, actual/est)`,
/// the symmetric multiplicative error from the cardinality-estimation
/// literature. Non-positive inputs (an empty or impossible estimate) score
/// as infinitely wrong rather than panicking or going negative.
pub fn qerror(estimated: f64, actual: f64) -> f64 {
    if !(estimated > 0.0) || !(actual > 0.0) {
        return f64::INFINITY;
    }
    (estimated / actual).max(actual / estimated)
}

/// Flattens a left-deep join order into the table-id sequence JOEU scores;
/// bushy orders have no canonical sequence and yield `None`.
pub fn order_sequence(order: &JoinOrder) -> Option<Vec<usize>> {
    match order {
        JoinOrder::LeftDeep(tables) => Some(tables.iter().map(|t| t.0 as usize).collect()),
        JoinOrder::Bushy(_) => None,
    }
}

/// One production observation in the drift window: a served query, the
/// model's cardinality estimate, the observed actual, and (optionally) the
/// served and reference join orders for JOEU scoring.
#[derive(Debug, Clone)]
pub struct DriftSample {
    /// The query as served.
    pub query: Arc<Query>,
    /// The model's cardinality estimate at serve time.
    pub predicted_card: f64,
    /// The actual cardinality observed at execution time.
    pub actual_card: f64,
    /// The served join order as a table sequence, when left-deep.
    pub served_order: Option<Vec<usize>>,
    /// The reference (known-good) join order, when one exists — e.g. from
    /// the classical optimizer or an offline exhaustive search.
    pub reference_order: Option<Vec<usize>>,
}

/// Thresholds for [`DriftDetector`]. Defaults follow
/// `results/ablation_drift.txt`: the stale model's window median q-error
/// there was ~1.8 and the drifted one ~2.9, so a threshold of 2.5 separates
/// "still fine" from "refreshed-stats regression" with margin on both
/// sides.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Sliding-window size in samples; older samples are evicted.
    pub window: usize,
    /// Minimum samples before the detector may fire (a two-sample window
    /// should not trigger a retrain).
    pub min_samples: usize,
    /// Fire when the window's median q-error exceeds this.
    pub qerror_threshold: f64,
    /// Fire when the window's mean JOEU (over samples that have both a
    /// served and a reference order) drops below this.
    pub joeu_floor: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            window: 256,
            min_samples: 16,
            qerror_threshold: 2.5,
            joeu_floor: 0.5,
        }
    }
}

/// A point-in-time score of the drift window.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftScore {
    /// Samples currently in the window.
    pub samples: usize,
    /// Median q-error over the window (`0.0` for an empty window).
    pub median_qerror: f64,
    /// Mean JOEU over samples carrying both orders; `None` when no sample
    /// does.
    pub mean_joeu: Option<f64>,
    /// Whether the thresholds say the model has drifted.
    pub drifted: bool,
}

/// A sliding window of production observations scored for drift. Not
/// internally synchronized: the lifecycle loop that owns it feeds it from
/// trace snapshots off the hot path.
#[derive(Debug)]
pub struct DriftDetector {
    config: DriftConfig,
    samples: VecDeque<DriftSample>,
}

impl DriftDetector {
    /// An empty detector with `config` thresholds.
    pub fn new(config: DriftConfig) -> Self {
        Self {
            config,
            samples: VecDeque::new(),
        }
    }

    /// Pushes one observation, evicting the oldest past the window size.
    pub fn observe(&mut self, sample: DriftSample) {
        if self.config.window == 0 {
            return;
        }
        if self.samples.len() >= self.config.window {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// Feeds a completed [`RequestTrace`] paired with the actual
    /// cardinality observed at execution. Traces without a captured query
    /// or estimate (cache hits, sheds, untraced paths) are skipped, as are
    /// requests that were not served.
    pub fn observe_trace(&mut self, trace: &RequestTrace, actual_card: f64) {
        let (Some(query), Some(est)) = (&trace.query, trace.est_card) else {
            return;
        };
        if !matches!(trace.outcome, TraceOutcome::Served(_)) {
            return;
        }
        self.observe(DriftSample {
            query: Arc::clone(query),
            predicted_card: est,
            actual_card,
            served_order: None,
            reference_order: None,
        });
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The current window, oldest first — the input to [`shadow_evaluate`].
    pub fn window(&self) -> Vec<DriftSample> {
        self.samples.iter().cloned().collect()
    }

    /// Drops all samples (after a swap, the old model's window says nothing
    /// about the new model).
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Scores the window against the configured thresholds.
    pub fn score(&self) -> DriftScore {
        let mut qerrors: Vec<f64> = self
            .samples
            .iter()
            .map(|s| qerror(s.predicted_card, s.actual_card))
            .collect();
        let median_qerror = median(&mut qerrors).unwrap_or(0.0);
        let joeus: Vec<f64> = self
            .samples
            .iter()
            .filter_map(|s| match (&s.served_order, &s.reference_order) {
                (Some(u), Some(opt)) => Some(crate::joeu::joeu(u, opt)),
                _ => None,
            })
            .collect();
        let mean_joeu = if joeus.is_empty() {
            None
        } else {
            Some(joeus.iter().sum::<f64>() / joeus.len() as f64)
        };
        let armed = self.samples.len() >= self.config.min_samples.max(1);
        let drifted = armed
            && (median_qerror > self.config.qerror_threshold
                || mean_joeu.is_some_and(|j| j < self.config.joeu_floor));
        DriftScore {
            samples: self.samples.len(),
            median_qerror,
            mean_joeu,
            drifted,
        }
    }

    /// Whether the current window breaches a threshold.
    pub fn drifted(&self) -> bool {
        self.score().drifted
    }
}

/// Median of `xs` (sorted in place); `None` when empty. NaNs sort last, so
/// a window of infinite q-errors still yields an infinite median rather
/// than poisoning the comparison.
fn median(xs: &mut [f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        Some(xs[mid])
    } else {
        Some((xs[mid - 1] + xs[mid]) / 2.0)
    }
}

// ---------------------------------------------------------------------------
// Shadow evaluation
// ---------------------------------------------------------------------------

/// The regression gate for [`shadow_evaluate`]. Defaults allow a candidate
/// a 10% median-q-error regression over the baseline (measurement noise on
/// small windows) and a 5-point JOEU drop, and require 8 replayable
/// samples before any promotion.
#[derive(Debug, Clone)]
pub struct ShadowConfig {
    /// Minimum samples successfully replayed by both models.
    pub min_samples: usize,
    /// Promote only if `candidate_median <= max(baseline_median, 1.0) *
    /// max_qerror_regression` — a baseline below 1.0 is impossible, so the
    /// floor keeps the gate meaningful on near-perfect baselines.
    pub max_qerror_regression: f64,
    /// Promote only if the candidate's mean JOEU is within this of the
    /// baseline's (when both are measurable).
    pub joeu_tolerance: f64,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        Self {
            min_samples: 8,
            max_qerror_regression: 1.10,
            joeu_tolerance: 0.05,
        }
    }
}

/// The verdict of one shadow evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowVerdict {
    /// The candidate held the gate: safe to promote.
    Promote,
    /// The candidate regressed (or the window was too thin to tell).
    Reject,
}

/// The full result of one shadow evaluation.
#[derive(Debug, Clone)]
pub struct ShadowReport {
    /// Promote or reject.
    pub verdict: ShadowVerdict,
    /// Human-readable reason for the verdict.
    pub reason: String,
    /// Samples replayed successfully by both models.
    pub samples: usize,
    /// Baseline (live model) median q-error over the replayed window.
    pub baseline_median_qerror: f64,
    /// Candidate median q-error over the replayed window.
    pub candidate_median_qerror: f64,
    /// Baseline mean JOEU vs the reference orders, when measurable.
    pub baseline_mean_joeu: Option<f64>,
    /// Candidate mean JOEU vs the reference orders, when measurable.
    pub candidate_mean_joeu: Option<f64>,
}

impl ShadowReport {
    /// Whether the verdict is [`ShadowVerdict::Promote`].
    pub fn promoted(&self) -> bool {
        self.verdict == ShadowVerdict::Promote
    }

    fn reject(reason: String, samples: usize) -> Self {
        Self {
            verdict: ShadowVerdict::Reject,
            reason,
            samples,
            baseline_median_qerror: 0.0,
            candidate_median_qerror: 0.0,
            baseline_mean_joeu: None,
            candidate_mean_joeu: None,
        }
    }
}

/// Replays `window` against `baseline` and `candidate` off the hot path
/// and gates promotion on relative regression: the candidate is promoted
/// only if its median q-error and mean JOEU over the window do not regress
/// past `config`'s allowances. A candidate that fails to plan any window
/// query is rejected outright; window queries the *baseline* cannot plan
/// are skipped (they carry no comparable signal).
pub fn shadow_evaluate(
    window: &[DriftSample],
    baseline: &MtmlfQo,
    candidate: &MtmlfQo,
    config: &ShadowConfig,
) -> Result<ShadowReport> {
    let mut base_q = Vec::new();
    let mut cand_q = Vec::new();
    let mut base_joeu = Vec::new();
    let mut cand_joeu = Vec::new();
    for sample in window {
        let Ok((base_order, base_card, _)) = baseline.plan_with_estimates(&sample.query) else {
            continue;
        };
        let (cand_order, cand_card, _) = match candidate.plan_with_estimates(&sample.query) {
            Ok(out) => out,
            Err(e) => {
                return Ok(ShadowReport::reject(
                    format!("candidate failed to plan a window query: {e}"),
                    base_q.len(),
                ));
            }
        };
        base_q.push(qerror(base_card, sample.actual_card));
        cand_q.push(qerror(cand_card, sample.actual_card));
        if let Some(reference) = &sample.reference_order {
            if let Some(seq) = order_sequence(&base_order) {
                base_joeu.push(crate::joeu::joeu(&seq, reference));
            }
            if let Some(seq) = order_sequence(&cand_order) {
                cand_joeu.push(crate::joeu::joeu(&seq, reference));
            }
        }
    }
    let samples = cand_q.len();
    if samples < config.min_samples.max(1) {
        return Ok(ShadowReport::reject(
            format!(
                "window too thin: {samples} replayable samples, need {}",
                config.min_samples.max(1)
            ),
            samples,
        ));
    }
    let baseline_median = median(&mut base_q).unwrap_or(f64::INFINITY);
    let candidate_median = median(&mut cand_q).unwrap_or(f64::INFINITY);
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<f64>() / xs.len() as f64)
        }
    };
    let baseline_mean_joeu = mean(&base_joeu);
    let candidate_mean_joeu = mean(&cand_joeu);
    let qerror_budget = baseline_median.max(1.0) * config.max_qerror_regression;
    let (verdict, reason) = if candidate_median > qerror_budget {
        (
            ShadowVerdict::Reject,
            format!(
                "median q-error regressed: candidate {candidate_median:.3} > budget \
                 {qerror_budget:.3} (baseline {baseline_median:.3})"
            ),
        )
    } else if let (Some(b), Some(c)) = (baseline_mean_joeu, candidate_mean_joeu) {
        if c + config.joeu_tolerance < b {
            (
                ShadowVerdict::Reject,
                format!("mean JOEU regressed: candidate {c:.3} < baseline {b:.3} - tolerance"),
            )
        } else {
            (
                ShadowVerdict::Promote,
                format!(
                    "candidate held the gate: q-error {candidate_median:.3} vs baseline \
                     {baseline_median:.3}, JOEU {c:.3} vs {b:.3}"
                ),
            )
        }
    } else {
        (
            ShadowVerdict::Promote,
            format!(
                "candidate held the gate: q-error {candidate_median:.3} vs baseline \
                 {baseline_median:.3}"
            ),
        )
    };
    Ok(ShadowReport {
        verdict,
        reason,
        samples,
        baseline_median_qerror: baseline_median,
        candidate_median_qerror: candidate_median,
        baseline_mean_joeu,
        candidate_mean_joeu,
    })
}

// ---------------------------------------------------------------------------
// The swap point
// ---------------------------------------------------------------------------

/// The model resolved for one worker batch: which `Arc` to plan with,
/// which version it is, and whether it was the canary. Workers call
/// [`ModelSlot::select`] exactly once per batch and thread this through the
/// whole batch, so no batch ever straddles a swap.
#[derive(Clone)]
pub struct BatchModel {
    /// The model to plan this batch with.
    pub model: Arc<MtmlfQo>,
    /// Its version.
    pub version: ModelVersion,
    /// Whether this batch was routed to the canary candidate.
    pub canary: bool,
}

impl fmt::Debug for BatchModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchModel")
            .field("version", &self.version)
            .field("canary", &self.canary)
            .finish_non_exhaustive()
    }
}

/// The outcome of a [`ModelSlot::swap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapOutcome {
    /// The slot now serves the new version; the displaced version is kept
    /// for one level of rollback.
    Swapped {
        /// The version that was displaced.
        previous: ModelVersion,
    },
    /// The requested version was already active; nothing changed (swap is
    /// idempotent — promoting twice equals promoting once, and does not
    /// clobber the rollback target).
    AlreadyActive,
}

/// When [`PlannerService::resolve_canary`](crate::serve::PlannerService::resolve_canary)
/// promotes or rolls back a canary.
#[derive(Debug, Clone)]
pub struct CanaryPolicy {
    /// Canary batches that must complete before a promote decision.
    pub min_window: u64,
    /// Roll back when `failures / served` exceeds this (evaluated once the
    /// window is full; a breaker trip rolls back immediately).
    pub max_failure_rate: f64,
}

impl Default for CanaryPolicy {
    fn default() -> Self {
        Self {
            min_window: 32,
            max_failure_rate: 0.05,
        }
    }
}

/// The verdict of one [`resolve_canary`](crate::serve::PlannerService::resolve_canary) poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CanaryVerdict {
    /// Not enough canary traffic yet (or no canary staged) — keep serving.
    Pending,
    /// The canary held its window and is now the active version.
    Promoted(ModelVersion),
    /// The canary regressed (or the breaker tripped) and was discarded;
    /// the active version is unchanged.
    RolledBack(ModelVersion),
}

struct CanaryState {
    model: Arc<MtmlfQo>,
    version: ModelVersion,
    /// Batches-per-thousand routed to the canary.
    fraction_permille: u16,
}

struct SlotState {
    active: Arc<MtmlfQo>,
    version: ModelVersion,
    previous: Option<(Arc<MtmlfQo>, ModelVersion)>,
    canary: Option<CanaryState>,
}

/// The atomic swap point a [`PlannerService`](crate::serve::PlannerService)
/// plans through.
///
/// # Atomicity argument
///
/// The only mutable state is one `RwLock<SlotState>`. Workers take the
/// read lock exactly once per batch ([`ModelSlot::select`]) and clone an
/// `Arc` out; a swap takes the write lock and exchanges pointers. Thus:
///
/// * A batch observes the state before a swap or after it — never a mix.
///   "Half-swapped" is unrepresentable because the unit of exchange is one
///   pointer, not a field-by-field copy.
/// * In-flight batches that selected the old model keep it alive through
///   their own `Arc` and complete normally; the swap never blocks on them
///   and they never block the swap (the write lock is held only for the
///   pointer exchange, not for any planning).
/// * No request is dropped: the request queue, worker pool, and reply
///   channels are untouched by a swap — only the pointer workers resolve
///   per batch changes.
pub struct ModelSlot {
    state: RwLock<SlotState>,
    /// Batch counter driving deterministic canary selection.
    ticks: AtomicU64,
    canary_served: AtomicU64,
    canary_failures: AtomicU64,
}

impl ModelSlot {
    /// A slot serving `model` as [`ModelVersion::default`] (v0).
    pub fn new(model: Arc<MtmlfQo>) -> Self {
        Self::with_version(model, ModelVersion::default())
    }

    /// A slot serving `model` as `version`.
    pub fn with_version(model: Arc<MtmlfQo>, version: ModelVersion) -> Self {
        Self {
            state: RwLock::new(SlotState {
                active: model,
                version,
                previous: None,
                canary: None,
            }),
            ticks: AtomicU64::new(0),
            canary_served: AtomicU64::new(0),
            canary_failures: AtomicU64::new(0),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, SlotState> {
        self.state.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, SlotState> {
        self.state.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Resolves the model for one worker batch: the active model, or the
    /// canary for its configured fraction of batches (deterministic
    /// round-robin over a batch counter, so tests can pin exactly which
    /// batches hit the canary).
    pub fn select(&self) -> BatchModel {
        let state = self.read();
        if let Some(canary) = &state.canary {
            let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
            if (tick % 1000) < u64::from(canary.fraction_permille) {
                return BatchModel {
                    model: Arc::clone(&canary.model),
                    version: canary.version,
                    canary: true,
                };
            }
        }
        BatchModel {
            model: Arc::clone(&state.active),
            version: state.version,
            canary: false,
        }
    }

    /// The active model and its version.
    pub fn active(&self) -> (Arc<MtmlfQo>, ModelVersion) {
        let state = self.read();
        (Arc::clone(&state.active), state.version)
    }

    /// The active version.
    pub fn version(&self) -> ModelVersion {
        self.read().version
    }

    /// The staged canary's version, if a canary is live.
    pub fn canary_version(&self) -> Option<ModelVersion> {
        self.read().canary.as_ref().map(|c| c.version)
    }

    /// Atomically makes `model` the active version. Idempotent on
    /// `version`: re-swapping the already-active version is a no-op that
    /// preserves the rollback target. A real swap displaces the active
    /// model into the rollback slot and discards any staged canary.
    pub fn swap(&self, model: Arc<MtmlfQo>, version: ModelVersion) -> SwapOutcome {
        let mut state = self.write();
        if state.version == version {
            return SwapOutcome::AlreadyActive;
        }
        let previous_version = state.version;
        let displaced = std::mem::replace(&mut state.active, model);
        state.previous = Some((displaced, previous_version));
        state.version = version;
        state.canary = None;
        self.reset_canary_counters();
        SwapOutcome::Swapped {
            previous: previous_version,
        }
    }

    /// Restores the previously active model. One level deep: a second
    /// rollback without an intervening swap is an error, not a panic.
    pub fn rollback(&self) -> Result<ModelVersion> {
        let mut state = self.write();
        let Some((model, version)) = state.previous.take() else {
            return Err(MtmlfError::Service(
                "rollback: no previous model version to restore".into(),
            ));
        };
        state.active = model;
        state.version = version;
        state.canary = None;
        self.reset_canary_counters();
        Ok(version)
    }

    /// Stages `model` as a canary receiving `fraction_permille`/1000 of
    /// batches. Replaces any existing canary and resets canary counters.
    pub fn begin_canary(&self, model: Arc<MtmlfQo>, version: ModelVersion, fraction_permille: u16) {
        let mut state = self.write();
        state.canary = Some(CanaryState {
            model,
            version,
            fraction_permille: fraction_permille.min(1000),
        });
        self.reset_canary_counters();
    }

    /// Discards the staged canary (the active model is untouched),
    /// returning its version if one was live.
    pub fn cancel_canary(&self) -> Option<ModelVersion> {
        let mut state = self.write();
        let version = state.canary.take().map(|c| c.version);
        if version.is_some() {
            self.reset_canary_counters();
        }
        version
    }

    /// Promotes the staged canary to active (displacing the active model
    /// into the rollback slot). Errors when no canary is staged.
    pub fn promote_canary(&self) -> Result<ModelVersion> {
        let mut state = self.write();
        let Some(canary) = state.canary.take() else {
            return Err(MtmlfError::Service("promote: no canary staged".into()));
        };
        let previous_version = state.version;
        let displaced = std::mem::replace(&mut state.active, canary.model);
        state.previous = Some((displaced, previous_version));
        state.version = canary.version;
        self.reset_canary_counters();
        Ok(canary.version)
    }

    /// Records the outcome of one canary batch: `served` requests, of
    /// which `failures` errored.
    pub fn record_canary_batch(&self, served: u64, failures: u64) {
        self.canary_served.fetch_add(served, Ordering::Relaxed);
        self.canary_failures.fetch_add(failures, Ordering::Relaxed);
    }

    /// `(served, failures)` accumulated by the current canary.
    pub fn canary_stats(&self) -> (u64, u64) {
        (
            self.canary_served.load(Ordering::Relaxed),
            self.canary_failures.load(Ordering::Relaxed),
        )
    }

    fn reset_canary_counters(&self) {
        self.canary_served.store(0, Ordering::Relaxed);
        self.canary_failures.store(0, Ordering::Relaxed);
    }
}

impl fmt::Debug for ModelSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.read();
        f.debug_struct("ModelSlot")
            .field("version", &state.version)
            .field("previous", &state.previous.as_ref().map(|(_, v)| *v))
            .field("canary", &state.canary.as_ref().map(|c| c.version))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_storage::TableId;
    use std::collections::BTreeMap;

    fn sample(predicted: f64, actual: f64) -> DriftSample {
        let query = Query::new(vec![TableId(0)], Vec::new(), BTreeMap::new()).expect("query");
        DriftSample {
            query: Arc::new(query),
            predicted_card: predicted,
            actual_card: actual,
            served_order: None,
            reference_order: None,
        }
    }

    #[test]
    fn version_ordering_and_display() {
        assert!(ModelVersion(1) < ModelVersion(2));
        assert_eq!(ModelVersion(3).next(), ModelVersion(4));
        assert_eq!(ModelVersion(7).to_string(), "v7");
        assert_eq!(ModelVersion::default(), ModelVersion(0));
    }

    #[test]
    fn registry_file_names_sort_like_versions() {
        let a = ModelRegistry::file_name(ModelVersion(9));
        let b = ModelRegistry::file_name(ModelVersion(10));
        assert!(a < b, "zero padding keeps lexicographic == numeric");
        assert_eq!(ModelRegistry::parse_version(&a), Some(9));
        assert_eq!(ModelRegistry::parse_version("weights.bin"), None);
        assert_eq!(ModelRegistry::parse_version("model-vX.weights"), None);
    }

    #[test]
    fn qerror_is_symmetric_and_guards_nonpositive() {
        assert_eq!(qerror(10.0, 10.0), 1.0);
        assert_eq!(qerror(100.0, 10.0), 10.0);
        assert_eq!(qerror(10.0, 100.0), 10.0);
        assert_eq!(qerror(0.0, 10.0), f64::INFINITY);
        assert_eq!(qerror(10.0, -1.0), f64::INFINITY);
        assert_eq!(qerror(f64::NAN, 10.0), f64::INFINITY);
    }

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median(&mut []), None);
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn drift_detector_respects_min_samples_and_window() {
        let mut d = DriftDetector::new(DriftConfig {
            window: 4,
            min_samples: 3,
            qerror_threshold: 2.0,
            joeu_floor: 0.0,
        });
        d.observe(sample(100.0, 10.0));
        d.observe(sample(100.0, 10.0));
        assert!(!d.drifted(), "below min_samples the detector stays quiet");
        d.observe(sample(100.0, 10.0));
        assert!(d.drifted(), "armed and far past the threshold");
        // Sliding window: four accurate samples evict the bad ones.
        for _ in 0..4 {
            d.observe(sample(10.0, 10.0));
        }
        assert_eq!(d.len(), 4);
        let score = d.score();
        assert_eq!(score.median_qerror, 1.0);
        assert!(!score.drifted);
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn drift_detector_fires_on_joeu_floor() {
        let mut d = DriftDetector::new(DriftConfig {
            window: 8,
            min_samples: 2,
            qerror_threshold: 100.0,
            joeu_floor: 0.6,
        });
        for _ in 0..3 {
            let mut s = sample(10.0, 10.0);
            s.served_order = Some(vec![2, 1, 0]);
            s.reference_order = Some(vec![0, 1, 2]);
            d.observe(s);
        }
        let score = d.score();
        assert_eq!(score.mean_joeu, Some(0.0));
        assert!(score.drifted, "perfect q-error but JOEU under the floor");
    }

    #[test]
    fn order_sequence_flattens_left_deep_only() {
        let order = JoinOrder::LeftDeep(vec![TableId(2), TableId(0), TableId(1)]);
        assert_eq!(order_sequence(&order), Some(vec![2, 0, 1]));
    }

    #[test]
    fn observe_trace_skips_unreplayable_traces() {
        let mut d = DriftDetector::new(DriftConfig::default());
        let tracer = crate::trace::Tracer::new(&crate::trace::TraceConfig {
            ring_capacity: 4,
            clock: Arc::new(crate::resilience::ManualClock::new()),
        });
        // A trace with no query/est_card attached (e.g. a cache hit).
        tracer
            .begin(crate::resilience::BreakerState::Closed, 0)
            .finish(
                &tracer,
                TraceOutcome::Served(crate::client::PlanSource::Cache),
            );
        // A model-path trace with both attached.
        let mut tb = tracer.begin(crate::resilience::BreakerState::Closed, 0);
        let query = Query::new(vec![TableId(0)], Vec::new(), BTreeMap::new()).expect("query");
        tb.attach_query(Arc::new(query));
        tb.set_est_card(42.0);
        tb.finish(
            &tracer,
            TraceOutcome::Served(crate::client::PlanSource::Model),
        );
        for trace in tracer.recent() {
            d.observe_trace(&trace, 40.0);
        }
        assert_eq!(d.len(), 1, "only the replayable trace became a sample");
        assert!((d.window()[0].predicted_card - 42.0).abs() < 1e-12);
    }
}

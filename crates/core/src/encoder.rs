//! Per-table encoders `Enc_i` (paper F.ii).
//!
//! Each table gets a small transformer encoder over its filter-predicate
//! tokens. The pooled output `E(f(T_i))` represents "the distribution of
//! `T_i` after applying `f(T_i)`". Encoders are pre-trained on single-table
//! cardinality estimation ("`Enc_i` learns the data distribution of `T_i`
//! through predicting the cardinality of filter predicate `f(T_i)`") and
//! are *frozen* during joint training: the paper backpropagates the
//! multi-task loss into the (S) and (T) modules only.

use mtmlf_nn::layers::{Linear, Mlp, Module};
use mtmlf_nn::loss::q_error_log_loss;
use mtmlf_nn::{Adam, Matrix, TransformerEncoder, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One table's encoder.
#[derive(Clone)]
pub struct TableEncoder {
    input_proj: Linear,
    encoder: TransformerEncoder,
    card_head: Mlp,
    d_model: usize,
}

impl TableEncoder {
    /// Builds an encoder for predicate tokens of width `token_width`.
    pub fn new(
        token_width: usize,
        d_model: usize,
        heads: usize,
        blocks: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            input_proj: Linear::new(token_width, d_model, rng),
            encoder: TransformerEncoder::new(d_model, heads, blocks, rng),
            card_head: Mlp::new(&[d_model, d_model, 1], rng),
            d_model,
        }
    }

    /// Encodes a token matrix `(num_predicates, token_width)` into the
    /// pooled table-distribution embedding `(1, d_model)`.
    ///
    /// Runs under whatever `mtmlf_nn::kernel` configuration is active —
    /// `MtmlfQo` scopes its `config.kernel` around every call path that
    /// reaches here. Embeddings are bitwise-identical across kernel
    /// configurations, so serialized plans (and therefore fingerprint-keyed
    /// cache entries) never depend on the tuning of the host that produced
    /// them.
    pub fn encode(&self, tokens: &Matrix) -> Var {
        let x = Var::constant(tokens.clone());
        let h = self.encoder.forward(&self.input_proj.forward(&x));
        h.mean_rows()
    }

    /// The embedding as a detached matrix (used by the serializer: the
    /// joint loss must not flow into the featurization module).
    pub fn embed(&self, tokens: &Matrix) -> Matrix {
        self.encode(tokens).to_matrix()
    }

    /// Predicted log-cardinality for a token matrix (pre-training head).
    pub fn predict_log_card(&self, tokens: &Matrix) -> Var {
        self.card_head.forward(&self.encode(tokens))
    }

    /// The detached embedding *and* the predicted log-cardinality from one
    /// encoder forward. [`TableEncoder::embed`] followed by
    /// [`TableEncoder::predict_log_card`] runs the transformer twice on the
    /// same tokens; the serializer needs both outputs for every scan node,
    /// so this shared-forward variant halves featurization encoder work.
    /// Outputs are bitwise-identical to the two separate calls.
    pub fn embed_with_logcard(&self, tokens: &Matrix) -> (Matrix, f32) {
        let pooled = self.encode(tokens);
        let log_card = self.card_head.forward(&pooled).item();
        (pooled.to_matrix(), log_card)
    }

    /// Pre-trains the encoder on `(tokens, true_cardinality)` samples with
    /// the Q-error surrogate. Returns the final-epoch mean loss.
    pub fn fit(&mut self, samples: &[(Matrix, u64)], epochs: usize, lr: f32, seed: u64) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Adam::new(self.parameters(), lr);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut last = 0.0;
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &i in &order {
                let (tokens, card) = &samples[i];
                let pred = self.predict_log_card(tokens);
                let loss = q_error_log_loss(&pred, *card as f64);
                opt.zero_grad();
                loss.backward();
                opt.step();
                total += loss.item();
            }
            last = total / samples.len() as f32;
        }
        last
    }

    /// Embedding width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }
}

impl Module for TableEncoder {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.input_proj.parameters();
        p.extend(self.encoder.parameters());
        p.extend(self.card_head.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token(kind: usize, lo: f32, hi: f32) -> Matrix {
        // Minimal 6-wide token: 4 kind slots + lo + hi.
        let mut t = Matrix::zeros(1, 6);
        t.set(0, kind, 1.0);
        t.set(0, 4, lo);
        t.set(0, 5, hi);
        t
    }

    #[test]
    fn encode_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let enc = TableEncoder::new(6, 16, 2, 1, &mut rng);
        let tokens = Matrix::concat_rows(&[&token(0, 0.0, 0.5), &token(1, 0.2, 0.8)]);
        assert_eq!(enc.encode(&tokens).shape(), (1, 16));
        assert_eq!(enc.embed(&tokens).shape(), (1, 16));
    }

    #[test]
    fn fit_learns_range_width_to_cardinality() {
        // Cardinality proportional to (hi − lo) over a 1000-row table: the
        // encoder must learn the mapping from range width to count.
        let mut rng = StdRng::seed_from_u64(2);
        let mut enc = TableEncoder::new(6, 16, 2, 1, &mut rng);
        let mut samples = Vec::new();
        for i in 0..40 {
            let lo = (i % 5) as f32 * 0.1;
            let hi = lo + 0.1 + (i % 7) as f32 * 0.1;
            let card = ((hi - lo).min(1.0) * 1000.0) as u64;
            samples.push((token(0, lo, hi.min(1.0)), card.max(1)));
        }
        let final_loss = enc.fit(&samples, 60, 2e-3, 3);
        assert!(final_loss < 0.2, "encoder should fit: loss {final_loss}");
        // Wider range must predict more rows than a narrow one.
        let wide = enc.predict_log_card(&token(0, 0.0, 0.9)).item();
        let narrow = enc.predict_log_card(&token(0, 0.4, 0.5)).item();
        assert!(wide > narrow, "wide {wide} vs narrow {narrow}");
    }

    #[test]
    fn encode_is_bitwise_stable_across_kernel_configs() {
        use mtmlf_nn::kernel::{self, KernelConfig};
        let mut rng = StdRng::seed_from_u64(9);
        // Wide enough that the blocked kernels actually engage.
        let enc = TableEncoder::new(6, 64, 4, 2, &mut rng);
        let tokens = Matrix::concat_rows(&[
            &token(0, 0.0, 0.5),
            &token(1, 0.2, 0.8),
            &token(2, 0.1, 0.9),
            &token(3, 0.4, 0.6),
        ]);
        let reference = enc.embed(&tokens);
        for cfg in [
            KernelConfig::single_threaded(8),
            KernelConfig::single_threaded(64),
            KernelConfig {
                threads: 4,
                block_size: 8,
            },
        ] {
            let tuned = kernel::scoped(cfg, || enc.embed(&tokens));
            assert_eq!(
                reference.data(),
                tuned.data(),
                "embedding drifted under {cfg:?}"
            );
        }
    }

    #[test]
    fn embedding_is_detached() {
        let mut rng = StdRng::seed_from_u64(4);
        let enc = TableEncoder::new(6, 16, 2, 1, &mut rng);
        let m = enc.embed(&token(0, 0.1, 0.7));
        // A detached matrix is plain data; wrapping it in a constant and
        // backpropagating leaves the encoder parameters untouched.
        let v = Var::constant(m);
        v.sum().backward();
        for p in enc.parameters() {
            assert_eq!(p.grad().norm(), 0.0);
        }
    }
}

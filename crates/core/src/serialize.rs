//! The serializer (F.iii): tree-structured plan → node-embedding sequence.
//!
//! Each plan node `N_i` is embedded as the concatenation of (paper Section
//! 3.2 F): the one-hot of tables touched by `N_i` (query-local slots), the
//! one-hot of its physical operation, the encoded table distribution
//! `E(f(N_i))` for scans / the join-predicate encoding for joins, a
//! log-size scalar, and the tree positional embedding of \[30\]
//! ([`mtmlf_query::treecodec::node_positions`]).
//!
//! Table slots are *query-local* (position within the query's sorted table
//! list). This keeps `E(P)`'s format identical across databases of
//! different sizes — the property Algorithm 1's cross-DB shuffling relies
//! on: nothing in the serialized layout identifies the database.

use crate::config::MtmlfConfig;
use crate::error::MtmlfError;
use crate::featurize::FeaturizationModule;
use crate::Result;
use mtmlf_nn::Matrix;
use mtmlf_query::treecodec::node_positions;
use mtmlf_query::{JoinGraph, PlanNode, Query};
use mtmlf_storage::TableId;

/// Number of physical-operator slots (2 scans + 3 joins).
const OP_SLOTS: usize = 5;

/// A serialized plan: the model-ready feature sequence plus the query-local
/// bookkeeping every downstream component needs.
pub struct SerializedPlan {
    /// `(nodes, raw_width)` node features, post-order.
    pub features: Matrix,
    /// Query tables in slot order (sorted ascending).
    pub table_slots: Vec<TableId>,
    /// For each slot, the post-order index of that table's scan node.
    pub scan_node_of_slot: Vec<usize>,
    /// The query-local join graph (vertex order == slot order).
    pub graph: JoinGraph,
}

/// Raw node-feature width for a configuration.
pub fn raw_width(config: &MtmlfConfig) -> usize {
    let t = config.max_query_tables;
    // tables multi-hot + op one-hot + log table size + encoder-predicted
    // log filtered size + table embedding + join-predicate table marks +
    // tree positional embedding.
    t + OP_SLOTS + 2 + config.d_model + t + 2 * t
}

/// Serializes `plan` for `query` using the featurization module (the
/// tree-to-sequence conversion of Sections 3.2 F.iii / 4.1).
pub fn serialize_plan(
    module: &FeaturizationModule,
    query: &Query,
    plan: &PlanNode,
    config: &MtmlfConfig,
) -> Result<SerializedPlan> {
    let table_slots: Vec<TableId> = query.tables().to_vec();
    if table_slots.len() > config.max_query_tables {
        return Err(MtmlfError::TooManyQueryTables {
            got: table_slots.len(),
            max: config.max_query_tables,
        });
    }
    let slot_of = |t: TableId| -> Result<usize> {
        table_slots
            .binary_search(&t)
            .map_err(|_| MtmlfError::Query(mtmlf_query::QueryError::OrderTableNotInQuery(t)))
    };
    let nodes = plan.post_order();
    let positions = node_positions(plan, config.max_query_tables);
    let width = raw_width(config);
    let t_slots = config.max_query_tables;
    let mut features = Matrix::zeros(nodes.len(), width);
    let mut scan_node_of_slot = vec![usize::MAX; table_slots.len()];

    for (i, node) in nodes.iter().enumerate() {
        // Touched-tables multi-hot.
        let touched = node.tables();
        for &t in &touched {
            if !query.tables().contains(&t) {
                return Err(MtmlfError::Query(
                    mtmlf_query::QueryError::OrderTableNotInQuery(t),
                ));
            }
            features.set(i, slot_of(t)?, 1.0);
        }
        let op_base = t_slots;
        let size_col = t_slots + OP_SLOTS;
        let logcard_col = size_col + 1;
        let embed_base = logcard_col + 1;
        let join_base = embed_base + config.d_model;
        let pos_base = join_base + t_slots;
        match node {
            PlanNode::Scan { table, op } => {
                features.set(
                    i,
                    op_base
                        + match op {
                            mtmlf_query::ScanOp::SeqScan => 0,
                            mtmlf_query::ScanOp::IndexScan => 1,
                        },
                    1.0,
                );
                let rows = module.table_rows(*table);
                features.set(i, size_col, ((rows as f32) + 1.0).log2() / 32.0);
                let (embedding, logcard) =
                    module.table_embedding_with_logcard(*table, query.filters_on(*table))?;
                features.set(i, logcard_col, logcard / 32.0);
                for (c, &v) in embedding.row(0).iter().enumerate() {
                    features.set(i, embed_base + c, v);
                }
                scan_node_of_slot[slot_of(*table)?] = i;
            }
            PlanNode::Join { op, left, right } => {
                features.set(
                    i,
                    op_base
                        + match op {
                            mtmlf_query::JoinOp::HashJoin => 2,
                            mtmlf_query::JoinOp::MergeJoin => 3,
                            mtmlf_query::JoinOp::NestedLoopJoin => 4,
                        },
                    1.0,
                );
                // Join-predicate encoding: mark the slots of the tables the
                // connecting predicates touch.
                let lt = left.tables();
                let rt = right.tables();
                for pred in mtmlf_exec::executor::connecting_predicates(query, &lt, &rt) {
                    features.set(i, join_base + slot_of(pred.left.table)?, 1.0);
                    features.set(i, join_base + slot_of(pred.right.table)?, 1.0);
                }
            }
        }
        // Tree positional embedding (truncated/padded to 2·t_slots).
        for (c, &v) in positions[i].iter().take(2 * t_slots).enumerate() {
            features.set(i, pos_base + c, v);
        }
    }
    debug_assert!(
        scan_node_of_slot.iter().all(|&i| i != usize::MAX),
        "every query table must appear as a scan leaf"
    );
    Ok(SerializedPlan {
        features,
        table_slots,
        scan_node_of_slot,
        graph: query.join_graph()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};
    use mtmlf_storage::Database;

    fn setup() -> (
        Database,
        Vec<mtmlf_query::Query>,
        FeaturizationModule,
        MtmlfConfig,
    ) {
        let db = imdb_lite(1, ImdbScale { scale: 0.02 }).unwrap();
        let cfg = MtmlfConfig::tiny();
        let module = FeaturizationModule::untrained(&db, &cfg).unwrap();
        let queries = generate_queries(
            &db,
            &WorkloadConfig {
                count: 6,
                max_tables: 5,
                ..WorkloadConfig::default()
            },
            3,
        );
        (db, queries, module, cfg)
    }

    #[test]
    fn serialization_shapes() {
        let (_, queries, module, cfg) = setup();
        for q in &queries {
            let plan =
                PlanNode::left_deep(&mtmlf_exec::executor::greedy_legal_order(q).unwrap()).unwrap();
            let s = serialize_plan(&module, q, &plan, &cfg).unwrap();
            assert_eq!(s.features.shape(), (plan.node_count(), raw_width(&cfg)));
            assert_eq!(s.table_slots.len(), q.table_count());
            assert_eq!(s.scan_node_of_slot.len(), q.table_count());
            assert_eq!(s.graph.len(), q.table_count());
        }
    }

    #[test]
    fn scan_nodes_resolve_to_slots() {
        let (_, queries, module, cfg) = setup();
        let q = &queries[0];
        let plan =
            PlanNode::left_deep(&mtmlf_exec::executor::greedy_legal_order(q).unwrap()).unwrap();
        let s = serialize_plan(&module, q, &plan, &cfg).unwrap();
        let nodes = plan.post_order();
        for (slot, &node_idx) in s.scan_node_of_slot.iter().enumerate() {
            match nodes[node_idx] {
                PlanNode::Scan { table, .. } => assert_eq!(*table, s.table_slots[slot]),
                _ => panic!("slot must map to a scan node"),
            }
        }
    }

    #[test]
    fn features_distinguish_filters() {
        let (_, queries, module, cfg) = setup();
        // Find a query with at least one filter; zero out its filters and
        // compare serializations.
        let q = queries
            .iter()
            .find(|q| q.filters().count() > 0)
            .expect("some query has filters");
        let plan =
            PlanNode::left_deep(&mtmlf_exec::executor::greedy_legal_order(q).unwrap()).unwrap();
        let unfiltered = mtmlf_query::Query::new(
            q.tables().to_vec(),
            q.joins().to_vec(),
            std::collections::BTreeMap::new(),
        )
        .unwrap();
        let a = serialize_plan(&module, q, &plan, &cfg).unwrap();
        let b = serialize_plan(&module, &unfiltered, &plan, &cfg).unwrap();
        assert_ne!(a.features.data(), b.features.data());
    }

    #[test]
    fn too_many_tables_rejected() {
        let (_, queries, module, mut cfg) = setup();
        cfg.max_query_tables = 1;
        let q = &queries[0];
        let plan =
            PlanNode::left_deep(&mtmlf_exec::executor::greedy_legal_order(q).unwrap()).unwrap();
        assert!(matches!(
            serialize_plan(&module, q, &plan, &cfg),
            Err(MtmlfError::TooManyQueryTables { .. })
        ));
    }
}

//! Sharded multi-replica serving behind the unified [`PlanClient`] API.
//!
//! A [`ClusterService`] fronts N replicas (each a [`PlannerService`] wrapped
//! in a [`ServiceReplica`], or any [`ReplicaNode`] implementation) with a
//! router that consistent-hashes the canonical 128-bit
//! [`QueryFingerprint`] of each request onto a [`HashRing`]:
//!
//! * **Sharding** — a key's primary replica is the first ring position at or
//!   clockwise-after `fp.shard_hash()`. Virtual nodes (many ring positions
//!   per replica) keep the key distribution near-uniform and bound the churn
//!   of membership changes to ~K/N keys (DESIGN.md §12).
//! * **Cache warming** — a plan computed on one replica is gossiped to the
//!   others ([`GossipMsg::Warm`]) over a pluggable [`Transport`], so a key
//!   re-hashed to a survivor after a replica death is usually still a cache
//!   hit. Warming is best-effort: messages may be dropped, delayed, or
//!   reordered ([`SimNet`]) without affecting correctness.
//! * **Invalidation** — [`ClusterService::invalidate`] bumps a cluster-wide
//!   epoch, tombstones the fingerprint, and removes the plan from every
//!   replica synchronously. The epoch carried by every warm message lets a
//!   late-arriving (delayed/reordered) warm of a since-invalidated plan be
//!   discarded instead of resurrecting stale state.
//! * **Failover** — the router keeps a [`CircuitBreaker`] per replica and
//!   walks the ring's candidate list: an unhealthy replica, an open
//!   breaker, or a transient error moves the request to the next clockwise
//!   survivor. Dead replicas are removed from the ring (their keys re-hash)
//!   and re-join on revival. A request is never lost to a membership
//!   change: the candidate walk spans every live replica, and the chaos
//!   suite asserts exactly-one-reply across replica kills.
//!
//! The router itself never consults a wall clock and never panics; all
//! timing lives in the replicas ([`PlannerService`]) and the breakers'
//! injected [`Clock`](crate::resilience::Clock)s, which keeps the
//! simulated-network tests fully deterministic.

use crate::client::{PlanClient, PlanPayload, PlanRequest, PlanResponse, PlanSource};
use crate::error::MtmlfError;
use crate::lifecycle::{ModelVersion, SwapOutcome};
use crate::metrics::MetricsSnapshot;
use crate::model::MtmlfQo;
use crate::resilience::{
    is_transient, Admission, BreakerConfig, BreakerState, CircuitBreaker, FallbackPlanner,
};
use crate::serve::{PlannerService, ServiceConfig};
use crate::trace::TraceConfig;
use crate::Result;
use mtmlf_query::{fingerprint, QueryFingerprint};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Identifies a replica by its index in the cluster's replica vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub usize);

impl std::fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replica-{}", self.0)
    }
}

/// SplitMix64: a fixed, well-mixed 64→64-bit hash. Used for virtual-node
/// placement so the ring layout is identical on every run and every node.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A consistent-hash ring with virtual nodes.
///
/// Each member owns `vnodes` pseudo-random ring positions derived purely
/// from its [`ReplicaId`], so the ring is deterministic and two nodes
/// computing it independently agree. A key routes to the owner of the first
/// position at or clockwise-after its hash; removing a member moves only
/// the keys it owned (~K/N of the keyspace), which the
/// `cluster_properties` proptest suite verifies.
#[derive(Debug, Clone)]
pub struct HashRing {
    positions: BTreeMap<u64, ReplicaId>,
    members: BTreeSet<ReplicaId>,
    vnodes: usize,
}

impl HashRing {
    /// An empty ring placing `vnodes` virtual nodes per member (min 1).
    pub fn new(vnodes: usize) -> Self {
        Self {
            positions: BTreeMap::new(),
            members: BTreeSet::new(),
            vnodes: vnodes.max(1),
        }
    }

    /// The deterministic ring positions owned by `replica`.
    fn vnode_positions(&self, replica: ReplicaId) -> impl Iterator<Item = u64> + '_ {
        let base = (replica.0 as u64).wrapping_mul(0x0100_0000_01b3);
        (0..self.vnodes as u64).map(move |v| splitmix64(base ^ splitmix64(v)))
    }

    /// Adds `replica` (idempotent). On a vnode-position collision the
    /// smaller id wins, keeping insertion order irrelevant.
    pub fn add(&mut self, replica: ReplicaId) {
        if !self.members.insert(replica) {
            return;
        }
        let positions: Vec<u64> = self.vnode_positions(replica).collect();
        for pos in positions {
            let slot = self.positions.entry(pos).or_insert(replica);
            if replica < *slot {
                *slot = replica;
            }
        }
    }

    /// Removes `replica` and every ring position it owned (idempotent).
    pub fn remove(&mut self, replica: ReplicaId) {
        if !self.members.remove(&replica) {
            return;
        }
        let positions: Vec<u64> = self.vnode_positions(replica).collect();
        for pos in positions {
            if self.positions.get(&pos) == Some(&replica) {
                self.positions.remove(&pos);
            }
        }
        // Re-seat any member that lost a colliding position to `replica`.
        let members: Vec<ReplicaId> = self.members.iter().copied().collect();
        for m in members {
            let positions: Vec<u64> = self.vnode_positions(m).collect();
            for pos in positions {
                let slot = self.positions.entry(pos).or_insert(m);
                if m < *slot {
                    *slot = m;
                }
            }
        }
    }

    /// True when `replica` is a ring member.
    pub fn contains(&self, replica: ReplicaId) -> bool {
        self.members.contains(&replica)
    }

    /// Current member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The primary owner of `hash`: the first ring position at or
    /// clockwise-after it (wrapping), or `None` on an empty ring.
    pub fn route(&self, hash: u64) -> Option<ReplicaId> {
        self.positions
            .range(hash..)
            .next()
            .or_else(|| self.positions.iter().next())
            .map(|(_, &r)| r)
    }

    /// Every member in failover order for `hash`: the primary first, then
    /// each distinct member in clockwise ring order. Deduplicated; length
    /// equals the member count.
    pub fn candidates(&self, hash: u64) -> Vec<ReplicaId> {
        let mut out = Vec::with_capacity(self.members.len());
        let mut seen = BTreeSet::new();
        for (_, &r) in self.positions.range(hash..).chain(self.positions.iter()) {
            if seen.insert(r) {
                out.push(r);
                if out.len() == self.members.len() {
                    break;
                }
            }
        }
        out
    }
}

/// One replica as the router sees it. Object-safe so clusters can mix real
/// [`PlannerService`]s ([`ServiceReplica`]) with simulated replicas in
/// tests and benches.
pub trait ReplicaNode: Send + Sync {
    /// Plans one request on this replica.
    fn plan(&self, request: PlanRequest) -> Result<PlanResponse>;

    /// Seeds this replica's plan cache (gossip warming).
    fn warm(&self, fp: QueryFingerprint, payload: PlanPayload);

    /// Drops this replica's cached plan for `fp`; `true` when present.
    fn invalidate(&self, fp: &QueryFingerprint) -> bool;

    /// Health as the router's checker would observe it.
    fn healthy(&self) -> bool {
        true
    }

    /// This replica's service metrics, when it keeps any.
    fn metrics(&self) -> Option<MetricsSnapshot> {
        None
    }

    /// Hot-swaps this replica's model; `true` when the replica supports
    /// model swaps and now serves `version`. Simulated replicas that keep
    /// no model report `false` and the cluster fan-out skips them.
    fn swap_model(&self, _candidate: &Arc<MtmlfQo>, _version: ModelVersion) -> bool {
        false
    }

    /// Rolls this replica back to its previous model; `true` on success.
    fn rollback_model(&self) -> bool {
        false
    }
}

/// A [`PlannerService`] participating in a cluster, with a kill switch for
/// failover tests: a killed replica refuses new requests (the router fails
/// over) but still answers requests already in flight — a process that
/// stops accepting connections does not tear down responses it has already
/// computed.
pub struct ServiceReplica {
    service: PlannerService,
    alive: AtomicBool,
}

impl ServiceReplica {
    /// Wraps a running service as a live replica.
    pub fn new(service: PlannerService) -> Self {
        Self {
            service,
            alive: AtomicBool::new(true),
        }
    }

    /// Marks the replica dead: subsequent [`ReplicaNode::plan`] calls fail
    /// with a transient error and [`ReplicaNode::healthy`] turns false.
    pub fn kill(&self) {
        self.alive.store(false, Ordering::SeqCst);
    }

    /// Brings a killed replica back; the router re-adds it to the ring.
    pub fn revive(&self) {
        self.alive.store(true, Ordering::SeqCst);
    }

    /// The wrapped service (e.g. for per-replica metrics).
    pub fn service(&self) -> &PlannerService {
        &self.service
    }
}

impl ReplicaNode for ServiceReplica {
    fn plan(&self, request: PlanRequest) -> Result<PlanResponse> {
        if !self.alive.load(Ordering::SeqCst) {
            return Err(MtmlfError::Service("replica is down".into()));
        }
        self.service.plan(request)
    }

    fn warm(&self, fp: QueryFingerprint, payload: PlanPayload) {
        if self.alive.load(Ordering::SeqCst) {
            self.service.warm(fp, payload);
        }
    }

    fn invalidate(&self, fp: &QueryFingerprint) -> bool {
        // Applied even when "down": invalidation models a durable epoch
        // bump, not a best-effort RPC — a replica must never revive with a
        // plan the cluster has since invalidated.
        self.service.invalidate(fp)
    }

    fn healthy(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        Some(self.service.metrics())
    }

    fn swap_model(&self, candidate: &Arc<MtmlfQo>, version: ModelVersion) -> bool {
        // Applied even when "down", like `invalidate`: a swap is a durable
        // version change, and a replica must never revive serving a model
        // the cluster has since replaced.
        matches!(
            self.service.swap_model(Arc::clone(candidate), version),
            SwapOutcome::Swapped { .. } | SwapOutcome::AlreadyActive
        )
    }

    fn rollback_model(&self) -> bool {
        self.service.rollback_model().is_ok()
    }
}

/// A cache-coherence message between replicas.
#[derive(Debug, Clone)]
pub enum GossipMsg {
    /// "I computed this plan; pre-warm your cache." Best-effort.
    Warm {
        /// Canonical fingerprint of the planned query.
        fp: QueryFingerprint,
        /// The cacheable payload.
        payload: PlanPayload,
        /// Cluster epoch when the plan was computed; a warm older than the
        /// fingerprint's tombstone epoch is discarded on receipt.
        epoch: u64,
    },
    /// "Drop this plan." Carried for transports that propagate
    /// invalidation asynchronously; [`ClusterService::invalidate`] also
    /// applies it synchronously for correctness.
    Invalidate {
        /// Fingerprint to drop.
        fp: QueryFingerprint,
        /// Epoch of the invalidation.
        epoch: u64,
    },
}

impl GossipMsg {
    fn fp(&self) -> QueryFingerprint {
        match self {
            GossipMsg::Warm { fp, .. } | GossipMsg::Invalidate { fp, .. } => *fp,
        }
    }
}

/// Message delivery between replicas. Implementations decide reliability:
/// [`DirectTransport`] delivers immediately and in order; [`SimNet`] drops,
/// delays, and reorders deterministically from a seed.
pub trait Transport: Send + Sync {
    /// Enqueues `msg` toward `dst`.
    fn send(&self, dst: ReplicaId, msg: GossipMsg);

    /// Drains every message currently deliverable to `dst`.
    fn poll(&self, dst: ReplicaId) -> Vec<GossipMsg>;

    /// Advances simulated time one round (no-op for immediate delivery).
    fn pump(&self) {}
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// In-process transport: `send` lands in the destination inbox immediately
/// and `poll` drains it in order. The default for [`ClusterBuilder`].
#[derive(Default)]
pub struct DirectTransport {
    inboxes: Mutex<HashMap<usize, Vec<GossipMsg>>>,
}

impl DirectTransport {
    /// An empty transport.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for DirectTransport {
    fn send(&self, dst: ReplicaId, msg: GossipMsg) {
        lock_unpoisoned(&self.inboxes)
            .entry(dst.0)
            .or_default()
            .push(msg);
    }

    fn poll(&self, dst: ReplicaId) -> Vec<GossipMsg> {
        lock_unpoisoned(&self.inboxes)
            .get_mut(&dst.0)
            .map(std::mem::take)
            .unwrap_or_default()
    }
}

/// Cumulative delivery counters for a [`SimNet`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimNetStats {
    /// Messages accepted by `send`.
    pub sent: u64,
    /// Messages dropped at send time.
    pub dropped: u64,
    /// Messages moved into an inbox by `pump`.
    pub delivered: u64,
}

struct SimNetState {
    rng: u64,
    round: u64,
    /// `(deliver_at_round, tie_break, dst, msg)`.
    in_flight: Vec<(u64, u64, usize, GossipMsg)>,
    inboxes: HashMap<usize, Vec<GossipMsg>>,
    stats: SimNetStats,
}

/// A deterministic lossy network simulation: every drop, delay, and
/// reorder decision derives from the seed, so a failing schedule replays
/// exactly from the same seed. Messages mature after a per-message delay of
/// `0..=max_delay` [`Transport::pump`] rounds; matured messages are
/// (optionally) delivered in a seeded shuffle rather than send order.
pub struct SimNet {
    state: Mutex<SimNetState>,
    drop_permille: u16,
    max_delay: u64,
    reorder: bool,
}

impl SimNet {
    /// A reliable, in-order, zero-delay network seeded with `seed`; layer
    /// faults on with the `with_*` builders.
    pub fn new(seed: u64) -> Self {
        Self {
            state: Mutex::new(SimNetState {
                rng: splitmix64(seed ^ 0x5bd1_e995),
                round: 0,
                in_flight: Vec::new(),
                inboxes: HashMap::new(),
                stats: SimNetStats::default(),
            }),
            drop_permille: 0,
            max_delay: 0,
            reorder: false,
        }
    }

    /// Drops each message independently with probability `permille`/1000.
    pub fn with_drop_permille(mut self, permille: u16) -> Self {
        self.drop_permille = permille.min(1000);
        self
    }

    /// Delays each message by a seeded `0..=rounds` pump rounds.
    pub fn with_max_delay(mut self, rounds: u64) -> Self {
        self.max_delay = rounds;
        self
    }

    /// Delivers matured messages in a seeded shuffle instead of send order.
    pub fn with_reorder(mut self) -> Self {
        self.reorder = true;
        self
    }

    /// Delivery counters so far.
    pub fn stats(&self) -> SimNetStats {
        lock_unpoisoned(&self.state).stats
    }

    fn next_rng(state: &mut SimNetState) -> u64 {
        state.rng = splitmix64(state.rng);
        state.rng
    }
}

impl Transport for SimNet {
    fn send(&self, dst: ReplicaId, msg: GossipMsg) {
        let mut st = lock_unpoisoned(&self.state);
        st.stats.sent += 1;
        let roll = Self::next_rng(&mut st) % 1000;
        if roll < u64::from(self.drop_permille) {
            st.stats.dropped += 1;
            return;
        }
        let delay = if self.max_delay == 0 {
            0
        } else {
            Self::next_rng(&mut st) % (self.max_delay + 1)
        };
        let tie = Self::next_rng(&mut st);
        let at = st.round + delay;
        st.in_flight.push((at, tie, dst.0, msg));
        if delay == 0 {
            Self::mature(&mut st, self.reorder);
        }
    }

    fn poll(&self, dst: ReplicaId) -> Vec<GossipMsg> {
        lock_unpoisoned(&self.state)
            .inboxes
            .get_mut(&dst.0)
            .map(std::mem::take)
            .unwrap_or_default()
    }

    fn pump(&self) {
        let mut st = lock_unpoisoned(&self.state);
        st.round += 1;
        Self::mature(&mut st, self.reorder);
    }
}

impl SimNet {
    /// Moves every in-flight message whose round has arrived into its
    /// destination inbox.
    fn mature(st: &mut SimNetState, reorder: bool) {
        let round = st.round;
        let mut ready: Vec<(u64, u64, usize, GossipMsg)> = Vec::new();
        let mut still: Vec<(u64, u64, usize, GossipMsg)> = Vec::new();
        for item in st.in_flight.drain(..) {
            if item.0 <= round {
                ready.push(item);
            } else {
                still.push(item);
            }
        }
        st.in_flight = still;
        if reorder {
            // Seeded shuffle: ordering by the per-message tie-break is a
            // deterministic permutation of send order.
            ready.sort_by_key(|&(_, tie, _, _)| tie);
        }
        for (_, _, dst, msg) in ready {
            st.stats.delivered += 1;
            st.inboxes.entry(dst).or_default().push(msg);
        }
    }
}

/// Router-level tuning for a [`ClusterService`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Virtual nodes per replica on the [`HashRing`] (≥ 1). More vnodes
    /// flatten the key distribution at the cost of a larger ring.
    pub vnodes: usize,
    /// Per-replica circuit breaker at the router (distinct from any
    /// breaker inside the replica's own service).
    pub breaker: BreakerConfig,
    /// Gossip freshly computed plans to peer replicas (best-effort cache
    /// warming). Disable to measure cold-cache scaling.
    pub warm_gossip: bool,
    /// Refresh ring membership from replica health on every `plan` call:
    /// dead replicas leave the ring (their keys re-hash to survivors) and
    /// revived replicas re-join.
    pub auto_health: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            vnodes: 64,
            breaker: BreakerConfig::default(),
            warm_gossip: true,
            auto_health: true,
        }
    }
}

/// Router counters, all monotone except gauges derived at snapshot time.
struct ClusterMetricsInner {
    routed: Vec<AtomicU64>,
    failovers: AtomicU64,
    breaker_skips: AtomicU64,
    unhealthy_skips: AtomicU64,
    warms_sent: AtomicU64,
    warms_applied: AtomicU64,
    warms_discarded: AtomicU64,
    invalidations: AtomicU64,
}

impl ClusterMetricsInner {
    fn new(replicas: usize) -> Self {
        Self {
            routed: (0..replicas).map(|_| AtomicU64::new(0)).collect(),
            failovers: AtomicU64::new(0),
            breaker_skips: AtomicU64::new(0),
            unhealthy_skips: AtomicU64::new(0),
            warms_sent: AtomicU64::new(0),
            warms_applied: AtomicU64::new(0),
            warms_discarded: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }
}

/// Point-in-time view of one replica from the router's perspective.
#[derive(Debug, Clone)]
pub struct ReplicaSnapshot {
    /// The replica's index.
    pub id: usize,
    /// Requests this replica has answered for the router.
    pub routed: u64,
    /// Health at snapshot time.
    pub healthy: bool,
    /// Ring membership at snapshot time.
    pub in_ring: bool,
    /// The router-side breaker guarding this replica.
    pub breaker_state: BreakerState,
    /// The replica's own service metrics, when it keeps any.
    pub service: Option<MetricsSnapshot>,
}

/// Point-in-time view of the whole cluster; rendered by
/// [`crate::metrics::render_prometheus_cluster`].
#[derive(Debug, Clone)]
pub struct ClusterMetricsSnapshot {
    /// Per-replica state, indexed by replica id.
    pub replicas: Vec<ReplicaSnapshot>,
    /// Requests answered by a replica other than their primary.
    pub failovers: u64,
    /// Candidates skipped because their router-side breaker was open.
    pub breaker_skips: u64,
    /// Candidates skipped because they reported unhealthy.
    pub unhealthy_skips: u64,
    /// Warm messages gossiped to peers.
    pub warms_sent: u64,
    /// Warm messages applied to a peer cache.
    pub warms_applied: u64,
    /// Warm messages discarded as stale (tombstoned by a later
    /// invalidation).
    pub warms_discarded: u64,
    /// Cluster-wide invalidations issued.
    pub invalidations: u64,
    /// Current cluster epoch.
    pub epoch: u64,
}

/// N replicas behind a consistent-hash router; see the module docs for the
/// protocol. Create with [`ClusterService::builder`] (real
/// [`PlannerService`] replicas) or [`ClusterService::from_replicas`] (any
/// [`ReplicaNode`]s, e.g. simulated ones).
pub struct ClusterService {
    replicas: Vec<Arc<dyn ReplicaNode>>,
    ring: Mutex<HashRing>,
    breakers: Vec<CircuitBreaker>,
    transport: Arc<dyn Transport>,
    epoch: AtomicU64,
    tombstones: Mutex<HashMap<QueryFingerprint, u64>>,
    metrics: ClusterMetricsInner,
    warm_gossip: bool,
    auto_health: bool,
}

impl ClusterService {
    /// Starts configuring a cluster of [`PlannerService`] replicas over
    /// `model`; finish with [`ClusterBuilder::start`]. Mirrors
    /// [`PlannerService::builder`].
    pub fn builder(model: Arc<MtmlfQo>) -> ClusterBuilder {
        ClusterBuilder::new(model)
    }

    /// Assembles a cluster from pre-built replicas and a transport. All
    /// replicas join the ring immediately.
    pub fn from_replicas(
        replicas: Vec<Arc<dyn ReplicaNode>>,
        config: ClusterConfig,
        transport: Arc<dyn Transport>,
    ) -> Result<Self> {
        if replicas.is_empty() {
            return Err(MtmlfError::InvalidConfig(
                "a cluster needs at least one replica".into(),
            ));
        }
        let mut ring = HashRing::new(config.vnodes);
        for i in 0..replicas.len() {
            ring.add(ReplicaId(i));
        }
        let breakers = (0..replicas.len())
            .map(|_| CircuitBreaker::new(config.breaker.clone()))
            .collect();
        let metrics = ClusterMetricsInner::new(replicas.len());
        Ok(Self {
            replicas,
            ring: Mutex::new(ring),
            breakers,
            transport,
            epoch: AtomicU64::new(0),
            tombstones: Mutex::new(HashMap::new()),
            metrics,
            warm_gossip: config.warm_gossip,
            auto_health: config.auto_health,
        })
    }

    /// Replica count (live or not).
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The replica at `id`, for direct inspection in tests and benches.
    pub fn replica(&self, id: ReplicaId) -> Option<&Arc<dyn ReplicaNode>> {
        self.replicas.get(id.0)
    }

    /// Current ring membership in id order.
    pub fn ring_members(&self) -> Vec<ReplicaId> {
        lock_unpoisoned(&self.ring).members.iter().copied().collect()
    }

    /// Plans one request: routes by fingerprint, fails over across ring
    /// candidates, gossips model-computed plans to peers.
    pub fn plan(&self, request: impl Into<PlanRequest>) -> Result<PlanResponse> {
        let request = request.into();
        self.deliver_ready();
        if self.auto_health {
            self.refresh_health();
        }
        let fp = fingerprint(&request.query);
        let candidates = lock_unpoisoned(&self.ring).candidates(fp.shard_hash());
        if candidates.is_empty() {
            return Err(MtmlfError::Service(
                "cluster has no live replicas in the ring".into(),
            ));
        }
        let mut last_err: Option<MtmlfError> = None;
        for (attempt, &rid) in candidates.iter().enumerate() {
            let Some(node) = self.replicas.get(rid.0) else {
                continue;
            };
            if !node.healthy() {
                self.metrics.unhealthy_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let breaker = &self.breakers[rid.0];
            if matches!(breaker.try_acquire(), Admission::Rejected) {
                self.metrics.breaker_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match node.plan(request.clone()) {
                Ok(resp) => {
                    breaker.on_success();
                    self.metrics.routed[rid.0].fetch_add(1, Ordering::Relaxed);
                    if attempt > 0 {
                        self.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    if self.warm_gossip && resp.source == PlanSource::Model {
                        self.gossip_warm(rid, fp, resp.payload());
                    }
                    return Ok(resp);
                }
                Err(e) if is_transient(&e) => {
                    // Replica-level failure: open the breaker toward it and
                    // walk on to the next ring candidate.
                    breaker.on_failure();
                    last_err = Some(e);
                }
                Err(e) => {
                    // Request-level failure (timeout, overload, illegal
                    // query): another replica would fail the same way, so
                    // surface it without burning the survivors' time.
                    return Err(e);
                }
            }
        }
        match last_err {
            Some(e) => Err(e),
            None => Err(MtmlfError::Service(
                "no healthy replica available for this request".into(),
            )),
        }
    }

    /// Invalidates `fp` cluster-wide: bumps the epoch, tombstones the
    /// fingerprint (so delayed warms of the stale plan are discarded), and
    /// removes it from every replica synchronously. Returns how many
    /// replicas actually held the plan.
    pub fn invalidate(&self, fp: &QueryFingerprint) -> usize {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        lock_unpoisoned(&self.tombstones).insert(*fp, epoch);
        self.metrics.invalidations.fetch_add(1, Ordering::Relaxed);
        let mut held = 0;
        for node in &self.replicas {
            if node.invalidate(fp) {
                held += 1;
            }
        }
        held
    }

    /// Rolls the candidate model out to every replica. Each replica swaps
    /// atomically on its own slot (requests in flight on a replica finish
    /// on the model they started with); the cluster converges replica by
    /// replica rather than pausing globally. Returns how many replicas now
    /// serve `version`.
    pub fn swap_model(&self, candidate: &Arc<MtmlfQo>, version: ModelVersion) -> usize {
        self.replicas
            .iter()
            .filter(|node| node.swap_model(candidate, version))
            .count()
    }

    /// Rolls every replica back to its previous model. Returns how many
    /// replicas had a previous model to restore.
    pub fn rollback_model(&self) -> usize {
        self.replicas
            .iter()
            .filter(|node| node.rollback_model())
            .count()
    }

    /// Advances the transport one round and applies every deliverable
    /// gossip message. [`DirectTransport`] needs no pumping (delivery is
    /// immediate and applied at the top of each `plan`); call this in tests
    /// driving a [`SimNet`].
    pub fn pump_gossip(&self) {
        self.transport.pump();
        self.deliver_ready();
    }

    /// The current cluster epoch (bumped by every invalidation).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// A point-in-time snapshot of router counters and per-replica state.
    pub fn metrics(&self) -> ClusterMetricsSnapshot {
        let ring = lock_unpoisoned(&self.ring);
        let replicas = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, node)| ReplicaSnapshot {
                id: i,
                routed: self.metrics.routed[i].load(Ordering::Relaxed),
                healthy: node.healthy(),
                in_ring: ring.contains(ReplicaId(i)),
                breaker_state: self.breakers[i].state(),
                service: node.metrics(),
            })
            .collect();
        ClusterMetricsSnapshot {
            replicas,
            failovers: self.metrics.failovers.load(Ordering::Relaxed),
            breaker_skips: self.metrics.breaker_skips.load(Ordering::Relaxed),
            unhealthy_skips: self.metrics.unhealthy_skips.load(Ordering::Relaxed),
            warms_sent: self.metrics.warms_sent.load(Ordering::Relaxed),
            warms_applied: self.metrics.warms_applied.load(Ordering::Relaxed),
            warms_discarded: self.metrics.warms_discarded.load(Ordering::Relaxed),
            invalidations: self.metrics.invalidations.load(Ordering::Relaxed),
            epoch: self.epoch(),
        }
    }

    /// Renders [`ClusterService::metrics`] in the Prometheus text format
    /// with per-replica labels.
    pub fn render_prometheus(&self) -> String {
        crate::metrics::render_prometheus_cluster(&self.metrics())
    }

    /// Reconciles ring membership with replica health: dead replicas leave
    /// (their keys re-hash to survivors), revived replicas re-join. Called
    /// from `plan` when [`ClusterConfig::auto_health`] is set.
    pub fn refresh_health(&self) {
        let mut ring = lock_unpoisoned(&self.ring);
        for (i, node) in self.replicas.iter().enumerate() {
            let id = ReplicaId(i);
            if node.healthy() {
                ring.add(id);
            } else {
                ring.remove(id);
            }
        }
    }

    /// Sends a warm message for `fp` to every ring member except `from`.
    fn gossip_warm(&self, from: ReplicaId, fp: QueryFingerprint, payload: PlanPayload) {
        let epoch = self.epoch.load(Ordering::SeqCst);
        let members = self.ring_members();
        for dst in members {
            if dst == from {
                continue;
            }
            self.metrics.warms_sent.fetch_add(1, Ordering::Relaxed);
            self.transport.send(
                dst,
                GossipMsg::Warm {
                    fp,
                    payload: payload.clone(),
                    epoch,
                },
            );
        }
    }

    /// Drains every replica's inbox and applies the messages, honoring
    /// tombstones: a warm whose epoch is at or below the fingerprint's
    /// tombstone epoch describes a plan invalidated after it was computed
    /// and is discarded.
    fn deliver_ready(&self) {
        for i in 0..self.replicas.len() {
            for msg in self.transport.poll(ReplicaId(i)) {
                self.apply(i, msg);
            }
        }
    }

    fn apply(&self, dst: usize, msg: GossipMsg) {
        let fp = msg.fp();
        match msg {
            GossipMsg::Warm { payload, epoch, .. } => {
                let stale = lock_unpoisoned(&self.tombstones)
                    .get(&fp)
                    .is_some_and(|&t| epoch <= t);
                if stale {
                    self.metrics.warms_discarded.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.replicas[dst].warm(fp, payload);
                    self.metrics.warms_applied.fetch_add(1, Ordering::Relaxed);
                }
            }
            GossipMsg::Invalidate { .. } => {
                self.replicas[dst].invalidate(&fp);
            }
        }
    }
}

impl PlanClient for ClusterService {
    fn plan(&self, request: PlanRequest) -> Result<PlanResponse> {
        ClusterService::plan(self, request)
    }
}

/// Configures and starts a [`ClusterService`] whose replicas are real
/// [`PlannerService`]s sharing one model; from [`ClusterService::builder`].
///
/// ```no_run
/// # use std::sync::Arc;
/// # use mtmlf::prelude::*;
/// # fn demo(model: Arc<MtmlfQo>, fallback: FallbackPlanner) -> mtmlf::Result<()> {
/// let cluster = ClusterService::builder(model)
///     .replicas(4)
///     .service_config(ServiceConfig::default())
///     .fallback(fallback)
///     .start()?;
/// # drop(cluster); Ok(())
/// # }
/// ```
#[must_use = "a builder does nothing until `.start()`"]
pub struct ClusterBuilder {
    model: Arc<MtmlfQo>,
    replicas: usize,
    service_config: ServiceConfig,
    cluster_config: ClusterConfig,
    fallback: Option<FallbackPlanner>,
    tracing: Option<TraceConfig>,
    transport: Option<Arc<dyn Transport>>,
    durable: Option<crate::durable::DurableConfig>,
}

impl ClusterBuilder {
    fn new(model: Arc<MtmlfQo>) -> Self {
        Self {
            model,
            replicas: 2,
            service_config: ServiceConfig::default(),
            cluster_config: ClusterConfig::default(),
            fallback: None,
            tracing: None,
            transport: None,
            durable: None,
        }
    }

    /// Replica count (≥ 1; default 2).
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Per-replica [`ServiceConfig`] (each replica gets its own worker
    /// pool and plan cache built from this).
    pub fn service_config(mut self, config: ServiceConfig) -> Self {
        self.service_config = config;
        self
    }

    /// Router-level [`ClusterConfig`].
    pub fn cluster_config(mut self, config: ClusterConfig) -> Self {
        self.cluster_config = config;
        self
    }

    /// Classical fallback planner, cloned into every replica.
    pub fn fallback(mut self, fallback: impl Into<Option<FallbackPlanner>>) -> Self {
        self.fallback = fallback.into();
        self
    }

    /// Enables plan-lifecycle tracing on every replica.
    pub fn tracing(mut self, tracing: TraceConfig) -> Self {
        self.tracing = Some(tracing);
        self
    }

    /// Replaces the warm-gossip transport (default: [`DirectTransport`]).
    pub fn transport(mut self, transport: Arc<dyn Transport>) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Makes every replica's plan cache durable under `dir`: replica `i`
    /// persists to `dir/replica_i`, so a cluster restarted over the same
    /// directory warm-starts every replica's cache — including epoch
    /// tombstones written by cluster-wide invalidation and hot swaps
    /// (DESIGN.md §16).
    pub fn durable(self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.durable_config(crate::durable::DurableConfig::new(dir))
    }

    /// Like [`ClusterBuilder::durable`] with full control over the
    /// durability policy. `config.dir` is the cluster root; each replica
    /// still gets its own `replica_i` subdirectory.
    pub fn durable_config(mut self, config: crate::durable::DurableConfig) -> Self {
        self.durable = Some(config);
        self
    }

    /// Validates the config, starts every replica service, and assembles
    /// the routed cluster.
    pub fn start(self) -> Result<ClusterService> {
        if self.replicas == 0 {
            return Err(MtmlfError::InvalidConfig(
                "a cluster needs at least one replica".into(),
            ));
        }
        let mut nodes: Vec<Arc<dyn ReplicaNode>> = Vec::with_capacity(self.replicas);
        for i in 0..self.replicas {
            let mut builder = PlannerService::builder(Arc::clone(&self.model))
                .config(self.service_config.clone())
                .fallback(self.fallback.clone());
            if let Some(tracing) = &self.tracing {
                builder = builder.tracing(tracing.clone());
            }
            if let Some(durable) = &self.durable {
                let mut per_replica = durable.clone();
                per_replica.dir = durable.dir.join(format!("replica_{i}"));
                builder = builder.durable_config(per_replica);
            }
            nodes.push(Arc::new(ServiceReplica::new(builder.start()?)));
        }
        let transport = self
            .transport
            .unwrap_or_else(|| Arc::new(DirectTransport::new()));
        ClusterService::from_replicas(nodes, self.cluster_config, transport)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_query::JoinOrder;
    use mtmlf_storage::TableId;
    use std::sync::atomic::AtomicUsize;

    fn fp(n: u64) -> QueryFingerprint {
        QueryFingerprint::from_parts(splitmix64(n), splitmix64(n ^ 0xdead_beef))
    }

    fn payload(card: f64) -> PlanPayload {
        PlanPayload::new(JoinOrder::LeftDeep(vec![TableId(0)]), card, card * 2.0)
    }

    /// A scriptable in-memory replica: answers every request with a fixed
    /// payload after recording it, with a kill switch and a warm cache.
    struct StubReplica {
        alive: AtomicBool,
        plans: AtomicUsize,
        cache: Mutex<HashMap<QueryFingerprint, PlanPayload>>,
        answer: PlanPayload,
    }

    impl StubReplica {
        fn new(answer: PlanPayload) -> Arc<Self> {
            Arc::new(Self {
                alive: AtomicBool::new(true),
                plans: AtomicUsize::new(0),
                cache: Mutex::new(HashMap::new()),
                answer,
            })
        }
    }

    impl ReplicaNode for StubReplica {
        fn plan(&self, request: PlanRequest) -> Result<PlanResponse> {
            if !self.alive.load(Ordering::SeqCst) {
                return Err(MtmlfError::Service("stub down".into()));
            }
            self.plans.fetch_add(1, Ordering::SeqCst);
            let fp = fingerprint(&request.query);
            let hit = self.cache.lock().unwrap().get(&fp).cloned();
            Ok(match hit {
                Some(p) => PlanResponse::from_payload(
                    p,
                    PlanSource::Cache,
                    std::time::Duration::ZERO,
                ),
                None => {
                    self.cache
                        .lock()
                        .unwrap()
                        .insert(fp, self.answer.clone());
                    PlanResponse::from_payload(
                        self.answer.clone(),
                        PlanSource::Model,
                        std::time::Duration::ZERO,
                    )
                }
            })
        }

        fn warm(&self, fp: QueryFingerprint, payload: PlanPayload) {
            self.cache.lock().unwrap().insert(fp, payload);
        }

        fn invalidate(&self, fp: &QueryFingerprint) -> bool {
            self.cache.lock().unwrap().remove(fp).is_some()
        }

        fn healthy(&self) -> bool {
            self.alive.load(Ordering::SeqCst)
        }
    }

    fn query(seed: u64) -> mtmlf_query::Query {
        use std::collections::BTreeMap;
        // Distinct single-table queries give distinct fingerprints.
        mtmlf_query::Query::new(vec![TableId(seed as u32)], vec![], BTreeMap::new())
            .expect("query")
    }

    fn stub_cluster(n: usize) -> (ClusterService, Vec<Arc<StubReplica>>) {
        let stubs: Vec<Arc<StubReplica>> =
            (0..n).map(|i| StubReplica::new(payload(i as f64 + 1.0))).collect();
        let nodes: Vec<Arc<dyn ReplicaNode>> = stubs
            .iter()
            .map(|s| Arc::clone(s) as Arc<dyn ReplicaNode>)
            .collect();
        let cluster = ClusterService::from_replicas(
            nodes,
            ClusterConfig::default(),
            Arc::new(DirectTransport::new()),
        )
        .expect("cluster");
        (cluster, stubs)
    }

    #[test]
    fn ring_routes_deterministically_and_covers_all_members() {
        let mut ring = HashRing::new(32);
        for i in 0..4 {
            ring.add(ReplicaId(i));
        }
        assert_eq!(ring.len(), 4);
        for k in 0..100u64 {
            let h = splitmix64(k);
            let first = ring.route(h).expect("routed");
            assert_eq!(ring.route(h), Some(first), "routing is stable");
            let cands = ring.candidates(h);
            assert_eq!(cands.len(), 4, "candidates cover every member");
            assert_eq!(cands[0], first, "primary leads the candidate list");
            let mut sorted = cands.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "candidates are distinct");
        }
        // Every member owns at least one of 1000 keys at 32 vnodes.
        let mut owners = BTreeSet::new();
        for k in 0..1000u64 {
            owners.insert(ring.route(splitmix64(k)).expect("routed"));
        }
        assert_eq!(owners.len(), 4);
    }

    #[test]
    fn ring_remove_only_moves_the_dead_replicas_keys() {
        let mut ring = HashRing::new(64);
        for i in 0..4 {
            ring.add(ReplicaId(i));
        }
        let before: Vec<ReplicaId> = (0..2000u64)
            .map(|k| ring.route(splitmix64(k)).expect("routed"))
            .collect();
        ring.remove(ReplicaId(2));
        for (k, &owner) in before.iter().enumerate() {
            let now = ring.route(splitmix64(k as u64)).expect("routed");
            if owner != ReplicaId(2) {
                assert_eq!(now, owner, "surviving replica kept its key {k}");
            } else {
                assert_ne!(now, ReplicaId(2), "dead replica's key {k} re-homed");
            }
        }
        // Re-adding restores the original assignment exactly.
        ring.add(ReplicaId(2));
        for (k, &owner) in before.iter().enumerate() {
            assert_eq!(ring.route(splitmix64(k as u64)), Some(owner));
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.route(42), None);
        assert!(ring.candidates(42).is_empty());
    }

    #[test]
    fn direct_transport_delivers_in_order() {
        let t = DirectTransport::new();
        t.send(ReplicaId(1), GossipMsg::Invalidate { fp: fp(1), epoch: 1 });
        t.send(ReplicaId(1), GossipMsg::Invalidate { fp: fp(2), epoch: 2 });
        assert!(t.poll(ReplicaId(0)).is_empty());
        let got = t.poll(ReplicaId(1));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].fp(), fp(1));
        assert_eq!(got[1].fp(), fp(2));
        assert!(t.poll(ReplicaId(1)).is_empty(), "poll drains");
    }

    #[test]
    fn simnet_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let net = SimNet::new(seed).with_drop_permille(300).with_max_delay(2).with_reorder();
            let mut log = Vec::new();
            for i in 0..50u64 {
                net.send(ReplicaId((i % 3) as usize), GossipMsg::Invalidate { fp: fp(i), epoch: i });
            }
            for _ in 0..4 {
                net.pump();
                for r in 0..3 {
                    for m in net.poll(ReplicaId(r)) {
                        log.push((r, m.fp()));
                    }
                }
            }
            (log, net.stats())
        };
        let (log_a, stats_a) = run(7);
        let (log_b, stats_b) = run(7);
        assert_eq!(log_a, log_b, "same seed, same schedule");
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.dropped > 0, "300 permille drops some of 50 messages");
        assert!(stats_a.delivered > 0, "and delivers the rest");
        assert_eq!(stats_a.sent, 50);
        let (log_c, _) = run(8);
        assert_ne!(log_a, log_c, "different seed, different schedule");
    }

    #[test]
    fn simnet_full_drop_delivers_nothing() {
        let net = SimNet::new(1).with_drop_permille(1000);
        net.send(ReplicaId(0), GossipMsg::Invalidate { fp: fp(1), epoch: 1 });
        net.pump();
        assert!(net.poll(ReplicaId(0)).is_empty());
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn plans_route_and_warm_peers() {
        let (cluster, stubs) = stub_cluster(3);
        let q = query(1);
        let first = cluster.plan(PlanRequest::new(q.clone())).expect("plan");
        assert_eq!(first.source, PlanSource::Model);
        // DirectTransport + deliver_ready at the next plan: peers warmed.
        let _ = cluster.plan(PlanRequest::new(query(2))).expect("plan");
        let m = cluster.metrics();
        assert_eq!(m.warms_sent, m.warms_applied + 2, "second plan's warms still in flight");
        let qfp = fingerprint(&q);
        let warmed = stubs
            .iter()
            .filter(|s| s.cache.lock().unwrap().contains_key(&qfp))
            .count();
        assert_eq!(warmed, 3, "every replica holds the first plan");
    }

    #[test]
    fn killed_replica_fails_over_and_rejoins() {
        let (cluster, stubs) = stub_cluster(3);
        // Find a query whose primary is replica 0.
        let q = (0..200u64)
            .map(query)
            .find(|q| {
                let h = fingerprint(q).shard_hash();
                lock_unpoisoned(&cluster.ring).route(h) == Some(ReplicaId(0))
            })
            .expect("some key routes to replica 0");
        stubs[0].alive.store(false, Ordering::SeqCst);
        let resp = cluster.plan(PlanRequest::new(q.clone())).expect("failover");
        assert_eq!(resp.source, PlanSource::Model);
        assert_eq!(stubs[0].plans.load(Ordering::SeqCst), 0, "dead replica untouched");
        assert!(!cluster.ring_members().contains(&ReplicaId(0)), "dead replica left the ring");
        stubs[0].alive.store(true, Ordering::SeqCst);
        let _ = cluster.plan(PlanRequest::new(q)).expect("plan");
        assert!(cluster.ring_members().contains(&ReplicaId(0)), "revived replica rejoined");
    }

    #[test]
    fn invalidate_fans_out_and_tombstones_stale_warms() {
        let (cluster, stubs) = stub_cluster(2);
        let q = query(9);
        let qfp = fingerprint(&q);
        let _ = cluster.plan(PlanRequest::new(q.clone())).expect("plan");
        // Force-deliver pending warms so both replicas hold the plan.
        cluster.pump_gossip();
        assert!(stubs.iter().all(|s| s.cache.lock().unwrap().contains_key(&qfp)));
        let held = cluster.invalidate(&qfp);
        assert_eq!(held, 2);
        assert!(stubs.iter().all(|s| !s.cache.lock().unwrap().contains_key(&qfp)));
        // A warm carrying the pre-invalidation epoch is stale on arrival.
        cluster.transport.send(
            ReplicaId(1),
            GossipMsg::Warm { fp: qfp, payload: payload(1.0), epoch: 0 },
        );
        cluster.pump_gossip();
        assert!(
            !stubs[1].cache.lock().unwrap().contains_key(&qfp),
            "tombstone discards the stale warm"
        );
        assert_eq!(cluster.metrics().warms_discarded, 1);
    }

    #[test]
    fn breaker_skips_replica_after_repeated_failures() {
        use crate::resilience::ManualClock;
        use std::time::Duration;
        let stubs: Vec<Arc<StubReplica>> = (0..2).map(|_| StubReplica::new(payload(1.0))).collect();
        let nodes: Vec<Arc<dyn ReplicaNode>> = stubs
            .iter()
            .map(|s| Arc::clone(s) as Arc<dyn ReplicaNode>)
            .collect();
        let clock = Arc::new(ManualClock::new());
        let config = ClusterConfig {
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(60),
                clock,
            },
            // Keep dead replicas in the ring so the breaker (not health
            // eviction) is what skips them.
            auto_health: false,
            ..ClusterConfig::default()
        };
        let cluster =
            ClusterService::from_replicas(nodes, config, Arc::new(DirectTransport::new()))
                .expect("cluster");
        let q = (0..200u64)
            .map(query)
            .find(|q| {
                let h = fingerprint(q).shard_hash();
                lock_unpoisoned(&cluster.ring).route(h) == Some(ReplicaId(0))
            })
            .expect("some key routes to replica 0");
        stubs[0].alive.store(false, Ordering::SeqCst);
        // healthy() is false but auto_health is off; the plan() walk skips
        // it via the unhealthy check, so exercise the breaker directly.
        for _ in 0..2 {
            cluster.breakers[0].on_failure();
        }
        assert_eq!(cluster.breakers[0].state(), BreakerState::Open);
        stubs[0].alive.store(true, Ordering::SeqCst);
        let resp = cluster.plan(PlanRequest::new(q)).expect("served by peer");
        assert_eq!(resp.source, PlanSource::Model);
        let m = cluster.metrics();
        assert_eq!(m.breaker_skips, 1);
        assert_eq!(m.replicas[0].routed, 0);
        assert_eq!(m.replicas[1].routed, 1);
        assert_eq!(m.failovers, 1);
    }

    #[test]
    fn builder_rejects_zero_replicas() {
        let err = ClusterService::from_replicas(
            Vec::new(),
            ClusterConfig::default(),
            Arc::new(DirectTransport::new()),
        );
        assert!(matches!(err, Err(MtmlfError::InvalidConfig(_))));
    }
}

//! Durable plan cache: a write-behind persistent log with snapshot
//! compaction and crash recovery (DESIGN.md §16).
//!
//! The serving layer's plan cache is pure derived state — every entry can
//! be recomputed by planning the query again — but recomputing a warm
//! cache after a restart costs exactly the model-inference latency the
//! cache exists to hide. This module makes the cache *warm-startable*: a
//! [`PlanStore`] wraps the sharded LRU and, when configured with a
//! [`DurableConfig`], mirrors every mutation into an append-only log of
//! checksummed records, periodically folded into a snapshot file. On boot
//! the store replays `snapshot + log` and the first request for every
//! previously-cached query is a cache hit again.
//!
//! # On-disk layout
//!
//! A durable directory holds at most three files:
//!
//! | file                 | contents                                      |
//! |----------------------|-----------------------------------------------|
//! | `plans.log`          | append-only sequence of framed records        |
//! | `plans.snapshot`     | one checksummed envelope of folded entries    |
//! | `plans.snapshot.tmp` | in-flight compaction output (crash artifact)  |
//!
//! Every record is framed with the same envelope discipline as the weight
//! checkpoints in [`crate::persist`]: an 8-byte magic, a little-endian
//! payload length, an FNV-1a 64 checksum of the payload, then the payload.
//! Three record kinds exist: `Put` (fingerprint → plan), `Tombstone`
//! (fingerprint removed — invalidations must never resurrect), and `Epoch`
//! (the whole cache cleared — written on model hot swap and rollback, so a
//! restart cannot serve plans produced by a displaced model version).
//!
//! # Soundness direction
//!
//! Losing a cache entry is always safe (the next request recomputes it);
//! resurrecting a removed entry is not (it may encode a stale plan or a
//! displaced model's output). The write-behind policy follows that
//! asymmetry: `Put` records may sit in an in-memory buffer and be lost in
//! a crash, but `Tombstone` and `Epoch` records are flushed to the log
//! *eagerly*, before the mutation is acknowledged. Recovery replays the
//! longest valid prefix of the log and truncates everything after the
//! first torn or corrupt record — a partially-written trailing record is
//! the expected shape of a crash, not an error.
//!
//! # Compaction
//!
//! The log grows without bound under churn, so after
//! [`DurableConfig::compact_threshold`] appended records the store folds
//! the live cache contents into `plans.snapshot.tmp`, renames it over
//! `plans.snapshot`, and truncates the log. The rename is the commit
//! point: recovery first deletes any leftover `.tmp` (pre-commit crash),
//! then loads the snapshot (if valid) and replays the log on top. Every
//! intermediate crash state recovers to either the old or the new
//! snapshot, never a blend. The kill points used by the crash-recovery
//! suite ([`KillPoint`]) sit exactly at those intermediate states.

use crate::cache::ShardedLruCache;
use crate::client::PlanPayload;
use crate::error::MtmlfError;
use crate::resilience::{Clock, SystemClock};
use crate::Result;
use mtmlf_query::{JoinOrder, JoinTree, QueryFingerprint};
use mtmlf_storage::TableId;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Frame magic for one log record.
const RECORD_MAGIC: &[u8; 8] = b"MTMLFLG\x01";
/// Frame magic for the snapshot envelope.
const SNAP_MAGIC: &[u8; 8] = b"MTMLFSN\x01";
/// Envelope header: magic + payload length + FNV-1a 64 checksum.
const HEADER_LEN: usize = 24;
/// Upper bound on a single record payload; anything larger is corrupt by
/// definition (a plan for a few hundred tables is a few KiB).
const MAX_RECORD_LEN: u64 = 1 << 20;
/// Upper bound on join-order size inside a record (tables per query).
const MAX_ORDER_LEN: u32 = 1 << 16;

const KIND_PUT: u8 = 1;
const KIND_TOMBSTONE: u8 = 2;
const KIND_EPOCH: u8 = 3;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn io_err(e: std::io::Error) -> MtmlfError {
    MtmlfError::Io(e.to_string())
}

// ---------------------------------------------------------------------------
// Record model
// ---------------------------------------------------------------------------

/// One durable mutation, as written to and replayed from `plans.log`.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// `fingerprint → plan` was inserted (or refreshed) in the cache.
    Put {
        /// Clock stamp (nanoseconds since the service clock's epoch).
        stamp: u64,
        /// The cache key.
        fp: QueryFingerprint,
        /// The cached plan.
        plan: PlanPayload,
    },
    /// `fingerprint` was removed; replay must not resurrect it.
    Tombstone {
        /// Clock stamp.
        stamp: u64,
        /// The removed key.
        fp: QueryFingerprint,
    },
    /// The whole cache was cleared (model hot swap / rollback / canary
    /// promotion). Replay drops everything seen so far.
    Epoch {
        /// Clock stamp.
        stamp: u64,
    },
}

/// Encodes a [`JoinOrder`] into `out`. Left-deep orders are a flat table
/// sequence; bushy orders are the preorder walk of the join tree.
fn encode_order(order: &JoinOrder, out: &mut Vec<u8>) {
    match order {
        JoinOrder::LeftDeep(tables) => {
            out.push(0);
            out.extend_from_slice(&(tables.len() as u32).to_le_bytes());
            for t in tables {
                out.extend_from_slice(&t.0.to_le_bytes());
            }
        }
        JoinOrder::Bushy(tree) => {
            out.push(1);
            encode_tree(tree, out);
        }
    }
}

fn encode_tree(tree: &JoinTree, out: &mut Vec<u8>) {
    match tree {
        JoinTree::Leaf(t) => {
            out.push(0);
            out.extend_from_slice(&t.0.to_le_bytes());
        }
        JoinTree::Node(l, r) => {
            out.push(1);
            encode_tree(l, out);
            encode_tree(r, out);
        }
    }
}

/// Encodes a [`PlanPayload`]: estimate bits, then the join order.
fn encode_plan(plan: &PlanPayload, out: &mut Vec<u8>) {
    out.extend_from_slice(&plan.est_card.to_bits().to_le_bytes());
    out.extend_from_slice(&plan.est_cost.to_bits().to_le_bytes());
    encode_order(&plan.join_order, out);
}

/// Encodes one record as a complete envelope-framed byte sequence.
pub fn encode_record(record: &LogRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    match record {
        LogRecord::Put { stamp, fp, plan } => {
            payload.push(KIND_PUT);
            payload.extend_from_slice(&stamp.to_le_bytes());
            let raw = fp.as_u128();
            payload.extend_from_slice(&((raw >> 64) as u64).to_le_bytes());
            payload.extend_from_slice(&(raw as u64).to_le_bytes());
            encode_plan(plan, &mut payload);
        }
        LogRecord::Tombstone { stamp, fp } => {
            payload.push(KIND_TOMBSTONE);
            payload.extend_from_slice(&stamp.to_le_bytes());
            let raw = fp.as_u128();
            payload.extend_from_slice(&((raw >> 64) as u64).to_le_bytes());
            payload.extend_from_slice(&(raw as u64).to_le_bytes());
        }
        LogRecord::Epoch { stamp } => {
            payload.push(KIND_EPOCH);
            payload.extend_from_slice(&stamp.to_le_bytes());
        }
    }
    let mut framed = Vec::with_capacity(HEADER_LEN + payload.len());
    framed.extend_from_slice(RECORD_MAGIC);
    framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    framed.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);
    framed
}

// ---------------------------------------------------------------------------
// Envelope scan (recovery hot path)
// ---------------------------------------------------------------------------

/// Outcome of scanning one envelope frame at a byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Frame {
    /// A whole, checksum-valid frame: payload byte range and next offset.
    Valid {
        payload_start: usize,
        payload_end: usize,
        next: usize,
    },
    /// The buffer ends mid-frame — the torn tail of a crashed append.
    Torn,
    /// The frame is structurally invalid (bad magic, absurd length, or
    /// checksum mismatch).
    Corrupt,
}

/// Scans the envelope frame starting at `at`, validating magic, length,
/// and checksum without decoding the payload. This runs once per record
/// on every warm start, over the whole log, so it must not allocate.
// lint: hot-path
fn scan_frame(buf: &[u8], at: usize) -> Frame {
    let remaining = buf.len() - at;
    if remaining < HEADER_LEN {
        return Frame::Torn;
    }
    if &buf[at..at + 8] != RECORD_MAGIC {
        return Frame::Corrupt;
    }
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&buf[at + 8..at + 16]);
    let declared = u64::from_le_bytes(len_bytes);
    if declared > MAX_RECORD_LEN {
        return Frame::Corrupt;
    }
    let declared = declared as usize;
    if remaining - HEADER_LEN < declared {
        return Frame::Torn;
    }
    let mut sum_bytes = [0u8; 8];
    sum_bytes.copy_from_slice(&buf[at + 16..at + 24]);
    let declared_sum = u64::from_le_bytes(sum_bytes);
    let payload_start = at + HEADER_LEN;
    let payload_end = payload_start + declared;
    if fnv1a64(&buf[payload_start..payload_end]) != declared_sum {
        return Frame::Corrupt;
    }
    Frame::Valid {
        payload_start,
        payload_end,
        next: payload_end,
    }
}

// ---------------------------------------------------------------------------
// Payload decoding
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over a record payload.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| MtmlfError::Corrupt("record payload truncated".into()))?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

/// Decodes a join tree from its preorder walk, iteratively (a corrupt
/// payload must not be able to pick our recursion depth).
fn decode_tree(r: &mut Reader<'_>) -> Result<JoinTree> {
    enum Pending {
        NeedLeft,
        NeedRight(JoinTree),
    }
    let mut stack: Vec<Pending> = Vec::new();
    loop {
        match r.u8()? {
            0 => {
                let mut tree = JoinTree::Leaf(TableId(r.u32()?));
                loop {
                    match stack.pop() {
                        None => return Ok(tree),
                        Some(Pending::NeedLeft) => {
                            stack.push(Pending::NeedRight(tree));
                            break;
                        }
                        Some(Pending::NeedRight(left)) => {
                            tree = JoinTree::Node(Box::new(left), Box::new(tree));
                        }
                    }
                }
            }
            1 => {
                stack.push(Pending::NeedLeft);
                if stack.len() > MAX_ORDER_LEN as usize {
                    return Err(MtmlfError::Corrupt("join tree exceeds size bound".into()));
                }
            }
            k => {
                return Err(MtmlfError::Corrupt(format!("unknown tree token {k}")));
            }
        }
    }
}

fn decode_order(r: &mut Reader<'_>) -> Result<JoinOrder> {
    match r.u8()? {
        0 => {
            let n = r.u32()?;
            if n > MAX_ORDER_LEN {
                return Err(MtmlfError::Corrupt(format!(
                    "join order declares {n} tables, bound is {MAX_ORDER_LEN}"
                )));
            }
            let mut tables = Vec::with_capacity(n as usize);
            for _ in 0..n {
                tables.push(TableId(r.u32()?));
            }
            Ok(JoinOrder::LeftDeep(tables))
        }
        1 => Ok(JoinOrder::Bushy(decode_tree(r)?)),
        k => Err(MtmlfError::Corrupt(format!("unknown order tag {k}"))),
    }
}

fn decode_plan(r: &mut Reader<'_>) -> Result<PlanPayload> {
    let est_card = f64::from_bits(r.u64()?);
    let est_cost = f64::from_bits(r.u64()?);
    let join_order = decode_order(r)?;
    Ok(PlanPayload::new(join_order, est_card, est_cost))
}

fn decode_fp(r: &mut Reader<'_>) -> Result<QueryFingerprint> {
    let hi = r.u64()?;
    let lo = r.u64()?;
    Ok(QueryFingerprint::from_parts(hi, lo))
}

/// Decodes one checksum-validated record payload.
pub fn decode_record_payload(payload: &[u8]) -> Result<LogRecord> {
    let mut r = Reader::new(payload);
    let record = match r.u8()? {
        KIND_PUT => {
            let stamp = r.u64()?;
            let fp = decode_fp(&mut r)?;
            let plan = decode_plan(&mut r)?;
            LogRecord::Put { stamp, fp, plan }
        }
        KIND_TOMBSTONE => {
            let stamp = r.u64()?;
            let fp = decode_fp(&mut r)?;
            LogRecord::Tombstone { stamp, fp }
        }
        KIND_EPOCH => {
            let stamp = r.u64()?;
            LogRecord::Epoch { stamp }
        }
        k => return Err(MtmlfError::Corrupt(format!("unknown record kind {k}"))),
    };
    if !r.done() {
        return Err(MtmlfError::Corrupt(format!(
            "record carries {} trailing bytes",
            payload.len() - r.at
        )));
    }
    Ok(record)
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Durability settings for a [`PlanStore`]. Part of the service builder's
/// `.durable(..)` option.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Directory holding `plans.log` / `plans.snapshot`. Created on open.
    pub dir: PathBuf,
    /// Log records appended since the last compaction that trigger the
    /// next one. `0` disables automatic compaction (explicit
    /// [`PlanStore::compact`] still works).
    pub compact_threshold: usize,
    /// `Put` records buffered in memory before a flush (write-behind).
    /// Tombstone and epoch records always flush eagerly regardless.
    /// `0` or `1` flushes every record immediately.
    pub buffer_records: usize,
    /// Clock used to stamp records (lint rule L2: no direct wall-clock
    /// reads on the serving path).
    pub clock: Arc<dyn Clock>,
}

impl DurableConfig {
    /// Durability under `dir` with the default policy: compaction every
    /// 1024 records, up to 64 buffered puts, system clock.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            compact_threshold: 1024,
            buffer_records: 64,
            clock: Arc::new(SystemClock::new()),
        }
    }

    /// Replaces the record-stamp clock (tests use a manual clock).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the automatic-compaction threshold.
    pub fn with_compact_threshold(mut self, records: usize) -> Self {
        self.compact_threshold = records;
        self
    }

    /// Sets the write-behind buffer size.
    pub fn with_buffer_records(mut self, records: usize) -> Self {
        self.buffer_records = records;
        self
    }
}

/// Crash points inside [`PlanStore::compact`], for the fault-injection
/// recovery suite. Arming one (via [`PlanStore::arm_kill`], test /
/// `fault-injection` builds only) makes the next compaction abort *after*
/// the named step, leaving the directory in that intermediate state
/// exactly as a process kill would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// `plans.snapshot.tmp` fully written; rename not yet performed.
    AfterTmpWrite,
    /// Renamed over `plans.snapshot`; log not yet truncated.
    AfterRename,
}

// ---------------------------------------------------------------------------
// Durable log
// ---------------------------------------------------------------------------

/// What recovery found on open. Diagnostic: the entries themselves are
/// already applied to the [`PlanStore`] cache.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a valid snapshot file was loaded.
    pub snapshot_loaded: bool,
    /// Entries restored into the cache (snapshot + log, after folding
    /// tombstones and epochs).
    pub entries_restored: usize,
    /// Valid log records replayed.
    pub log_records: usize,
    /// Bytes truncated off the log's invalid tail (torn or corrupt).
    pub truncated_bytes: usize,
}

/// The file-backed half of a durable [`PlanStore`]: owns the log file, the
/// write-behind buffer, and compaction. Callers go through `PlanStore`;
/// this type is public for the recovery test suite, which needs to operate
/// on the files directly.
#[derive(Debug)]
pub struct DurableLog {
    dir: PathBuf,
    buffer_records: usize,
    clock: Arc<dyn Clock>,
    /// Encoded-but-unwritten records (write-behind).
    buffered: Vec<u8>,
    /// Records buffered (for the flush threshold).
    buffered_count: usize,
    /// Records appended to the file since the last compaction.
    appended_since_compact: usize,
    /// Armed compaction crash point (fault injection; always `None` in
    /// production, where `arm_kill` is compiled out).
    kill: Option<KillPoint>,
}

impl DurableLog {
    fn log_path(dir: &Path) -> PathBuf {
        dir.join("plans.log")
    }

    fn snap_path(dir: &Path) -> PathBuf {
        dir.join("plans.snapshot")
    }

    fn tmp_path(dir: &Path) -> PathBuf {
        dir.join("plans.snapshot.tmp")
    }

    /// Opens (creating if needed) the durable directory and recovers its
    /// state: deletes any in-flight compaction temp file, loads the
    /// snapshot when valid, replays the log's longest valid prefix, and
    /// truncates the log's invalid tail. Returns the log handle, the
    /// recovered entries in LRU→MRU order, and a diagnostic report.
    pub fn open(
        config: &DurableConfig,
    ) -> Result<(Self, Vec<(QueryFingerprint, PlanPayload)>, RecoveryReport)> {
        std::fs::create_dir_all(&config.dir).map_err(io_err)?;
        let tmp = Self::tmp_path(&config.dir);
        if tmp.exists() {
            // A crash before the rename commit point: the tmp snapshot may
            // be arbitrarily incomplete. Discard it; the previous snapshot
            // and the (untruncated) log still hold everything durable.
            std::fs::remove_file(&tmp).map_err(io_err)?;
        }

        let mut report = RecoveryReport::default();
        let mut state = ReplayState::default();

        let snap = Self::snap_path(&config.dir);
        if snap.exists() {
            let bytes = std::fs::read(&snap).map_err(io_err)?;
            match decode_snapshot(&bytes) {
                Ok(entries) => {
                    report.snapshot_loaded = true;
                    for (fp, plan) in entries {
                        state.put(fp, plan);
                    }
                }
                // An invalid snapshot is skipped, not fatal: losing cached
                // entries is the safe direction, and the next compaction
                // rewrites the file.
                Err(_) => report.snapshot_loaded = false,
            }
        }

        let log = Self::log_path(&config.dir);
        if log.exists() {
            let bytes = std::fs::read(&log).map_err(io_err)?;
            let mut at = 0usize;
            loop {
                if at == bytes.len() {
                    break;
                }
                match scan_frame(&bytes, at) {
                    Frame::Valid {
                        payload_start,
                        payload_end,
                        next,
                    } => {
                        // A checksum-valid frame with an undecodable payload
                        // still ends the valid prefix: later records may
                        // depend on it (e.g. an epoch ordered after it).
                        match decode_record_payload(&bytes[payload_start..payload_end]) {
                            Ok(record) => state.apply(record),
                            Err(_) => break,
                        }
                        report.log_records += 1;
                        at = next;
                    }
                    Frame::Torn | Frame::Corrupt => break,
                }
            }
            if at < bytes.len() {
                report.truncated_bytes = bytes.len() - at;
                // `OpenOptions::write`/`open` are file I/O, not guard
                // acquisitions; G1's name-based lock model can't tell.
                let file = std::fs::OpenOptions::new()
                    .write(true) // lint: allow(lock-cycle)
                    .open(&log) // lint: allow(lock-cycle)
                    .map_err(io_err)?;
                file.set_len(at as u64).map_err(io_err)?;
            }
        }

        let entries = state.into_entries();
        report.entries_restored = entries.len();
        let handle = Self {
            dir: config.dir.clone(),
            buffer_records: config.buffer_records,
            clock: Arc::clone(&config.clock),
            buffered: Vec::new(),
            buffered_count: 0,
            appended_since_compact: 0,
            kill: None,
        };
        Ok((handle, entries, report))
    }

    fn stamp(&self) -> u64 {
        u64::try_from(self.clock.now().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Buffers a record; flushes when the write-behind buffer is full or
    /// `eager` is set (tombstones, epochs).
    fn append(&mut self, record: &LogRecord, eager: bool) -> Result<()> {
        self.buffered.extend_from_slice(&encode_record(record));
        self.buffered_count += 1;
        if eager || self.buffered_count >= self.buffer_records.max(1) {
            self.flush()?;
        }
        Ok(())
    }

    /// Writes all buffered records to the log file.
    pub fn flush(&mut self) -> Result<()> {
        if self.buffered.is_empty() {
            return Ok(());
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(Self::log_path(&self.dir))
            .map_err(io_err)?;
        file.write_all(&self.buffered).map_err(io_err)?;
        self.appended_since_compact += self.buffered_count;
        self.buffered.clear();
        self.buffered_count = 0;
        Ok(())
    }

    /// Folds `entries` (LRU→MRU) into the snapshot file and truncates the
    /// log. The rename is the commit point; see the module docs for the
    /// crash-state analysis.
    pub fn compact(&mut self, entries: &[(QueryFingerprint, PlanPayload)]) -> Result<()> {
        self.flush()?;
        let tmp = Self::tmp_path(&self.dir);
        std::fs::write(&tmp, encode_snapshot(entries)).map_err(io_err)?;
        self.kill_check(KillPoint::AfterTmpWrite)?;
        std::fs::rename(&tmp, Self::snap_path(&self.dir)).map_err(io_err)?;
        self.kill_check(KillPoint::AfterRename)?;
        let log = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .open(Self::log_path(&self.dir))
            .map_err(io_err)?;
        log.set_len(0).map_err(io_err)?;
        self.appended_since_compact = 0;
        Ok(())
    }

    /// Records appended to the log file since the last compaction.
    pub fn appended_since_compact(&self) -> usize {
        self.appended_since_compact
    }

    /// Current byte size of the log file (flushed records only).
    pub fn log_bytes(&self) -> u64 {
        std::fs::metadata(Self::log_path(&self.dir))
            .map(|m| m.len())
            .unwrap_or(0)
    }

    /// Arms a compaction crash point; the next [`DurableLog::compact`]
    /// aborts after that step, simulating a process kill.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn arm_kill(&mut self, point: KillPoint) {
        self.kill = Some(point);
    }

    fn kill_check(&mut self, at: KillPoint) -> Result<()> {
        if self.kill == Some(at) {
            self.kill = None;
            return Err(MtmlfError::Io(format!(
                "compaction killed at {at:?} (fault injection)"
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Ordered fold of log records into the final cache contents. Preserves
/// recency order (a re-put moves the key to most-recent) so replaying into
/// an LRU reproduces the eviction order the pre-crash cache would have.
#[derive(Default)]
struct ReplayState {
    /// Insertion-ordered entries; `None` marks a superseded slot.
    slots: Vec<Option<(QueryFingerprint, PlanPayload)>>,
    /// fp → index into `slots`.
    index: std::collections::HashMap<u128, usize>,
}

impl ReplayState {
    fn put(&mut self, fp: QueryFingerprint, plan: PlanPayload) {
        if let Some(old) = self.index.remove(&fp.as_u128()) {
            self.slots[old] = None;
        }
        self.index.insert(fp.as_u128(), self.slots.len());
        self.slots.push(Some((fp, plan)));
    }

    fn remove(&mut self, fp: QueryFingerprint) {
        if let Some(old) = self.index.remove(&fp.as_u128()) {
            self.slots[old] = None;
        }
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.index.clear();
    }

    fn apply(&mut self, record: LogRecord) {
        match record {
            LogRecord::Put { fp, plan, .. } => self.put(fp, plan),
            LogRecord::Tombstone { fp, .. } => self.remove(fp),
            LogRecord::Epoch { .. } => self.clear(),
        }
    }

    fn into_entries(self) -> Vec<(QueryFingerprint, PlanPayload)> {
        self.slots.into_iter().flatten().collect()
    }
}

// ---------------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------------

/// Encodes the whole cache contents as one checksummed snapshot envelope.
fn encode_snapshot(entries: &[(QueryFingerprint, PlanPayload)]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32 + entries.len() * 64);
    payload.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (fp, plan) in entries {
        let raw = fp.as_u128();
        payload.extend_from_slice(&((raw >> 64) as u64).to_le_bytes());
        payload.extend_from_slice(&(raw as u64).to_le_bytes());
        let mut plan_bytes = Vec::with_capacity(64);
        encode_plan(plan, &mut plan_bytes);
        payload.extend_from_slice(&(plan_bytes.len() as u32).to_le_bytes());
        payload.extend_from_slice(&plan_bytes);
    }
    let mut framed = Vec::with_capacity(HEADER_LEN + payload.len());
    framed.extend_from_slice(SNAP_MAGIC);
    framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    framed.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);
    framed
}

/// Decodes and validates a snapshot file.
fn decode_snapshot(bytes: &[u8]) -> Result<Vec<(QueryFingerprint, PlanPayload)>> {
    if bytes.len() < HEADER_LEN || &bytes[..8] != SNAP_MAGIC {
        return Err(MtmlfError::Corrupt(
            "snapshot missing or wrong magic".into(),
        ));
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[8..16]);
    let len = u64::from_le_bytes(b);
    let body = &bytes[HEADER_LEN..];
    if len != body.len() as u64 {
        return Err(MtmlfError::Corrupt(format!(
            "snapshot declares {len} payload bytes, file carries {}",
            body.len()
        )));
    }
    b.copy_from_slice(&bytes[16..24]);
    if fnv1a64(body) != u64::from_le_bytes(b) {
        return Err(MtmlfError::Corrupt("snapshot checksum mismatch".into()));
    }
    let mut r = Reader::new(body);
    let count = r.u64()?;
    if count > (1 << 32) {
        return Err(MtmlfError::Corrupt(format!(
            "snapshot declares {count} entries"
        )));
    }
    let mut entries = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let fp = decode_fp(&mut r)?;
        let plan_len = r.u32()? as usize;
        let plan_bytes = r.take(plan_len)?;
        let mut pr = Reader::new(plan_bytes);
        let plan = decode_plan(&mut pr)?;
        if !pr.done() {
            return Err(MtmlfError::Corrupt(
                "snapshot entry carries trailing bytes".into(),
            ));
        }
        entries.push((fp, plan));
    }
    if !r.done() {
        return Err(MtmlfError::Corrupt("snapshot carries trailing bytes".into()));
    }
    Ok(entries)
}

// ---------------------------------------------------------------------------
// PlanStore
// ---------------------------------------------------------------------------

/// The serving layer's plan cache: a sharded LRU, optionally mirrored into
/// a [`DurableLog`] for warm starts. All [`crate::PlannerService`] cache
/// traffic goes through this type; without a durable configuration it is
/// a zero-overhead wrapper over [`ShardedLruCache`].
pub struct PlanStore {
    cache: ShardedLruCache<QueryFingerprint, PlanPayload>,
    log: Option<Mutex<DurableLog>>,
    compact_threshold: usize,
    warm_start_entries: AtomicU64,
    log_compactions: AtomicU64,
    log_io_errors: AtomicU64,
}

impl PlanStore {
    /// A volatile store: exactly the pre-durability cache behaviour.
    pub fn in_memory(capacity: usize, shards: usize) -> Self {
        Self {
            cache: ShardedLruCache::new(capacity, shards),
            log: None,
            compact_threshold: 0,
            warm_start_entries: AtomicU64::new(0),
            log_compactions: AtomicU64::new(0),
            log_io_errors: AtomicU64::new(0),
        }
    }

    /// Opens a durable store: recovers `config.dir` and warm-starts the
    /// cache with every recovered entry (in pre-crash recency order).
    pub fn open(capacity: usize, shards: usize, config: &DurableConfig) -> Result<Self> {
        Ok(Self::open_with_report(capacity, shards, config)?.0)
    }

    /// Like [`PlanStore::open`], also returning the recovery report (the
    /// recovery suite asserts on truncation behaviour).
    pub fn open_with_report(
        capacity: usize,
        shards: usize,
        config: &DurableConfig,
    ) -> Result<(Self, RecoveryReport)> {
        let (log, entries, report) = DurableLog::open(config)?;
        let cache = ShardedLruCache::new(capacity, shards);
        let mut restored = 0u64;
        for (fp, plan) in entries {
            cache.insert(fp, plan);
            restored += 1;
        }
        let store = Self {
            cache,
            log: Some(Mutex::new(log)),
            compact_threshold: config.compact_threshold,
            warm_start_entries: AtomicU64::new(restored),
            log_compactions: AtomicU64::new(0),
            log_io_errors: AtomicU64::new(0),
        };
        Ok((store, report))
    }

    fn with_log<T>(&self, f: impl FnOnce(&mut DurableLog) -> Result<T>) -> Option<T> {
        let log = self.log.as_ref()?;
        let mut guard = log.lock().unwrap_or_else(PoisonError::into_inner);
        match f(&mut guard) {
            Ok(v) => Some(v),
            Err(_) => {
                // Log IO failure must never become a planning failure: the
                // cache keeps serving, durability degrades, the counter
                // records that it happened.
                self.log_io_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Cache lookup (bumps recency). Never touches the log.
    pub fn get(&self, fp: &QueryFingerprint) -> Option<PlanPayload> {
        self.cache.get(fp)
    }

    /// Inserts (or refreshes) an entry, mirrored to the log write-behind.
    /// Triggers automatic compaction past the configured threshold.
    pub fn insert(&self, fp: QueryFingerprint, plan: PlanPayload) {
        self.cache.insert(fp, plan.clone());
        let mut due = false;
        self.with_log(|log| {
            let record = LogRecord::Put {
                stamp: log.stamp(),
                fp,
                plan,
            };
            log.append(&record, false)?;
            due = self.compact_threshold > 0
                && log.appended_since_compact() >= self.compact_threshold;
            Ok(())
        });
        if due {
            self.try_compact();
        }
    }

    /// Removes an entry. The tombstone is flushed to disk *before* this
    /// returns: an acknowledged invalidation survives any later crash and
    /// can never resurrect on replay.
    pub fn remove(&self, fp: &QueryFingerprint) -> Option<PlanPayload> {
        let removed = self.cache.remove(fp);
        if removed.is_some() {
            let fp = *fp;
            self.with_log(|log| {
                let record = LogRecord::Tombstone {
                    stamp: log.stamp(),
                    fp,
                };
                log.append(&record, true)
            });
        }
        removed
    }

    /// Clears the cache and durably records the epoch: after a model hot
    /// swap or rollback, a restart must not serve the displaced model's
    /// plans. The epoch record is flushed eagerly, like tombstones.
    pub fn clear(&self) {
        self.cache.clear();
        self.with_log(|log| {
            let record = LogRecord::Epoch { stamp: log.stamp() };
            log.append(&record, true)
        });
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Flushes the write-behind buffer. Called on service shutdown so a
    /// clean stop loses nothing.
    pub fn flush(&self) {
        self.with_log(DurableLog::flush);
    }

    /// Folds the live cache into the snapshot and truncates the log.
    pub fn compact(&self) -> Result<()> {
        let log = match self.log.as_ref() {
            Some(log) => log,
            None => return Ok(()),
        };
        let entries = self.cache.entries();
        let mut guard = log.lock().unwrap_or_else(PoisonError::into_inner);
        guard.compact(&entries)?;
        self.log_compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Best-effort automatic compaction (failures counted, not surfaced).
    fn try_compact(&self) {
        if self.compact().is_err() {
            self.log_io_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether this store persists to disk.
    pub fn is_durable(&self) -> bool {
        self.log.is_some()
    }

    /// Entries restored from disk when this store opened.
    pub fn warm_start_entries(&self) -> u64 {
        self.warm_start_entries.load(Ordering::Relaxed)
    }

    /// Snapshot compactions performed since open.
    pub fn log_compactions(&self) -> u64 {
        self.log_compactions.load(Ordering::Relaxed)
    }

    /// Log IO failures swallowed (durability degraded, serving unaffected).
    pub fn log_io_errors(&self) -> u64 {
        self.log_io_errors.load(Ordering::Relaxed)
    }

    /// Current log file size in bytes (0 for volatile stores).
    pub fn log_bytes(&self) -> u64 {
        self.with_log(|log| Ok(log.log_bytes())).unwrap_or(0)
    }

    /// Arms a compaction crash point on the underlying log.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn arm_kill(&self, point: KillPoint) {
        if let Some(log) = self.log.as_ref() {
            log.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .arm_kill(point);
        }
    }
}

impl Drop for PlanStore {
    fn drop(&mut self) {
        // Best-effort: a dropped store flushes its write-behind buffer so
        // an orderly shutdown is as durable as an eager one.
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::ManualClock;
    use mtmlf_query::JoinTree;

    fn fp(n: u64) -> QueryFingerprint {
        QueryFingerprint::from_parts(n, n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    fn plan(seed: u64) -> PlanPayload {
        PlanPayload::new(
            JoinOrder::LeftDeep(vec![TableId(seed as u32), TableId(seed as u32 + 1)]),
            seed as f64 * 10.5,
            seed as f64 * 99.25,
        )
    }

    fn bushy_plan() -> PlanPayload {
        let tree = JoinTree::Node(
            Box::new(JoinTree::Node(
                Box::new(JoinTree::Leaf(TableId(0))),
                Box::new(JoinTree::Leaf(TableId(3))),
            )),
            Box::new(JoinTree::Leaf(TableId(7))),
        );
        PlanPayload::new(JoinOrder::Bushy(tree), -0.0, f64::MAX)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mtmlf_durable_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &Path) -> DurableConfig {
        DurableConfig::new(dir)
            .with_clock(Arc::new(ManualClock::new()))
            .with_buffer_records(1)
    }

    #[test]
    fn record_roundtrip_all_kinds() {
        let records = [
            LogRecord::Put {
                stamp: 42,
                fp: fp(1),
                plan: plan(3),
            },
            LogRecord::Put {
                stamp: 43,
                fp: fp(2),
                plan: bushy_plan(),
            },
            LogRecord::Tombstone {
                stamp: 44,
                fp: fp(1),
            },
            LogRecord::Epoch { stamp: 45 },
        ];
        for record in &records {
            let framed = encode_record(record);
            match scan_frame(&framed, 0) {
                Frame::Valid {
                    payload_start,
                    payload_end,
                    next,
                } => {
                    assert_eq!(next, framed.len());
                    let decoded =
                        decode_record_payload(&framed[payload_start..payload_end]).unwrap();
                    assert_eq!(&decoded, record);
                }
                other => panic!("expected valid frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn put_estimates_roundtrip_bitwise() {
        for v in [-0.0, 0.0, f64::MAX, f64::MIN_POSITIVE, f64::NEG_INFINITY] {
            let record = LogRecord::Put {
                stamp: 0,
                fp: fp(9),
                plan: PlanPayload::new(JoinOrder::LeftDeep(vec![TableId(0)]), v, -v),
            };
            let framed = encode_record(&record);
            let decoded = decode_record_payload(&framed[HEADER_LEN..]).unwrap();
            let LogRecord::Put { plan, .. } = decoded else {
                panic!("kind changed in roundtrip");
            };
            assert_eq!(plan.est_card.to_bits(), v.to_bits());
            assert_eq!(plan.est_cost.to_bits(), (-v).to_bits());
        }
    }

    #[test]
    fn torn_frame_detected_at_every_truncation() {
        let framed = encode_record(&LogRecord::Put {
            stamp: 7,
            fp: fp(5),
            plan: plan(5),
        });
        for cut in 0..framed.len() {
            match scan_frame(&framed[..cut], 0) {
                Frame::Torn => {}
                other => panic!("cut at {cut}: expected torn, got {other:?}"),
            }
        }
        assert!(matches!(scan_frame(&framed, 0), Frame::Valid { .. }));
    }

    #[test]
    fn bitflips_in_every_header_field_detected() {
        let framed = encode_record(&LogRecord::Put {
            stamp: 7,
            fp: fp(5),
            plan: plan(5),
        });
        for byte in 0..framed.len() {
            let mut bad = framed.clone();
            bad[byte] ^= 0x10;
            match scan_frame(&bad, 0) {
                Frame::Corrupt => {}
                // A flip in the length field can also make the frame claim
                // more bytes than the buffer holds — reads as torn, which
                // recovery treats identically (prefix ends here).
                Frame::Torn if (8..16).contains(&byte) => {}
                other => panic!("flip at byte {byte}: got {other:?}"),
            }
        }
    }

    #[test]
    fn store_roundtrips_through_restart() {
        let dir = tmpdir("roundtrip");
        let cfg = config(&dir);
        {
            let store = PlanStore::open(64, 4, &cfg).unwrap();
            for i in 0..10u64 {
                store.insert(fp(i), plan(i));
            }
            store.remove(&fp(3));
            store.flush();
        }
        let store = PlanStore::open(64, 4, &cfg).unwrap();
        assert_eq!(store.warm_start_entries(), 9);
        assert_eq!(store.len(), 9);
        assert!(store.get(&fp(3)).is_none(), "tombstone honoured");
        for i in (0..10).filter(|&i| i != 3) {
            assert_eq!(store.get(&fp(i)), Some(plan(i)), "entry {i}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_clears_on_replay() {
        let dir = tmpdir("epoch");
        let cfg = config(&dir);
        {
            let store = PlanStore::open(64, 4, &cfg).unwrap();
            store.insert(fp(1), plan(1));
            store.insert(fp(2), plan(2));
            store.clear();
            store.insert(fp(3), plan(3));
            store.flush();
        }
        let store = PlanStore::open(64, 4, &cfg).unwrap();
        assert_eq!(store.warm_start_entries(), 1, "only post-epoch entries");
        assert_eq!(store.get(&fp(3)), Some(plan(3)));
        assert!(store.get(&fp(1)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn removals_do_not_resurrect_across_compaction() {
        // The latent-gap regression: an entry removed after being
        // persisted must stay gone through snapshot + log recovery.
        let dir = tmpdir("resurrect");
        let cfg = config(&dir);
        {
            let store = PlanStore::open(64, 4, &cfg).unwrap();
            store.insert(fp(1), plan(1));
            store.insert(fp(2), plan(2));
            store.compact().unwrap();
            store.remove(&fp(1)); // tombstone lives only in the fresh log
        }
        let store = PlanStore::open(64, 4, &cfg).unwrap();
        assert!(store.get(&fp(1)).is_none(), "no resurrection");
        assert_eq!(store.get(&fp(2)), Some(plan(2)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_truncates_log_and_counts() {
        let dir = tmpdir("compact");
        let cfg = config(&dir).with_compact_threshold(0);
        let store = PlanStore::open(64, 4, &cfg).unwrap();
        for i in 0..20u64 {
            store.insert(fp(i), plan(i));
        }
        store.flush();
        assert!(store.log_bytes() > 0);
        store.compact().unwrap();
        assert_eq!(store.log_bytes(), 0, "log truncated");
        assert_eq!(store.log_compactions(), 1);
        drop(store);
        let store = PlanStore::open(64, 4, &cfg).unwrap();
        assert_eq!(store.warm_start_entries(), 20, "snapshot holds all");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_compaction_fires_past_threshold() {
        let dir = tmpdir("autocompact");
        let cfg = config(&dir).with_compact_threshold(8);
        let store = PlanStore::open(64, 4, &cfg).unwrap();
        for i in 0..32u64 {
            store.insert(fp(i), plan(i));
        }
        assert!(store.log_compactions() >= 1, "threshold crossed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_log_tail_truncated_on_open() {
        let dir = tmpdir("torntail");
        let cfg = config(&dir);
        {
            let store = PlanStore::open(64, 4, &cfg).unwrap();
            for i in 0..5u64 {
                store.insert(fp(i), plan(i));
            }
            store.flush();
        }
        // Append half a record by hand: the torn tail of a crashed write.
        let log_path = dir.join("plans.log");
        let mut bytes = std::fs::read(&log_path).unwrap();
        let full = bytes.len();
        let torn = encode_record(&LogRecord::Put {
            stamp: 99,
            fp: fp(99),
            plan: plan(99),
        });
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(&log_path, &bytes).unwrap();

        let (store, report) = PlanStore::open_with_report(64, 4, &cfg).unwrap();
        assert_eq!(store.warm_start_entries(), 5, "valid prefix replayed");
        assert!(store.get(&fp(99)).is_none(), "torn record not surfaced");
        assert_eq!(report.truncated_bytes, torn.len() / 2);
        assert_eq!(
            std::fs::metadata(&log_path).unwrap().len(),
            full as u64,
            "file truncated back to the valid prefix"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_skipped_not_fatal() {
        let dir = tmpdir("badsnap");
        let cfg = config(&dir);
        {
            let store = PlanStore::open(64, 4, &cfg).unwrap();
            store.insert(fp(1), plan(1));
            store.compact().unwrap();
            store.insert(fp(2), plan(2));
            store.flush();
        }
        // Flip a payload byte in the snapshot.
        let snap = dir.join("plans.snapshot");
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&snap, &bytes).unwrap();

        let (store, report) = PlanStore::open_with_report(64, 4, &cfg).unwrap();
        assert!(!report.snapshot_loaded);
        assert!(store.get(&fp(1)).is_none(), "snapshot contents dropped");
        assert_eq!(store.get(&fp(2)), Some(plan(2)), "log still replays");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_after_tmp_write_recovers_to_old_state() {
        let dir = tmpdir("killtmp");
        let cfg = config(&dir);
        {
            let store = PlanStore::open(64, 4, &cfg).unwrap();
            store.insert(fp(1), plan(1));
            store.arm_kill(KillPoint::AfterTmpWrite);
            assert!(store.compact().is_err(), "kill point fired");
            // Simulate the crash: drop without further writes.
        }
        assert!(dir.join("plans.snapshot.tmp").exists());
        let store = PlanStore::open(64, 4, &cfg).unwrap();
        assert_eq!(store.get(&fp(1)), Some(plan(1)), "log replay intact");
        assert!(!dir.join("plans.snapshot.tmp").exists(), "tmp removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_after_rename_recovers_to_new_snapshot() {
        let dir = tmpdir("killrename");
        let cfg = config(&dir);
        {
            let store = PlanStore::open(64, 4, &cfg).unwrap();
            store.insert(fp(1), plan(1));
            store.arm_kill(KillPoint::AfterRename);
            assert!(store.compact().is_err());
        }
        // Snapshot committed; the untruncated log replays the same puts
        // on top — replay is idempotent.
        let store = PlanStore::open(64, 4, &cfg).unwrap();
        assert_eq!(store.warm_start_entries(), 1);
        assert_eq!(store.get(&fp(1)), Some(plan(1)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn volatile_store_has_no_files() {
        let store = PlanStore::in_memory(8, 2);
        store.insert(fp(1), plan(1));
        assert!(!store.is_durable());
        assert_eq!(store.log_bytes(), 0);
        assert_eq!(store.warm_start_entries(), 0);
        store.flush();
        assert!(store.compact().is_ok(), "no-op on volatile stores");
    }

    #[test]
    fn foreign_magic_rejected() {
        let framed = encode_record(&LogRecord::Epoch { stamp: 1 });
        let mut bad = framed.clone();
        bad[..8].copy_from_slice(b"MTMLFQO\x01"); // weight-checkpoint magic
        assert_eq!(scan_frame(&bad, 0), Frame::Corrupt);
    }
}

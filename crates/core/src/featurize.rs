//! The featurization and encoding module (F): all *database-specific*
//! knowledge lives here.
//!
//! Predicate tokenization (F.i): each filter predicate becomes one token
//! row `[column one-hot | predicate-kind one-hot | normalized lo | hi |
//! needle hash one-hot | flag]`. Literal values are normalized by the
//! column's `[min, max]` range (the scaled stand-in for the paper's
//! per-value embeddings, which do not fit a 64-value-wide model);
//! `LIKE` needles are feature-hashed.
//!
//! Per-table encoders `Enc_i` (F.ii) summarize token sequences into the
//! table-distribution embeddings used by the serializer (F.iii, in
//! [`crate::serialize`]).

use crate::config::MtmlfConfig;
use crate::encoder::TableEncoder;
use crate::error::MtmlfError;
use crate::Result;
use mtmlf_datagen::single_table_queries;
use mtmlf_nn::Matrix;
use mtmlf_query::{CmpOp, FilterPredicate, LikePattern};
use mtmlf_storage::{Column, Database, TableId, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Predicate-kind slots: eq, neq, lt, le, gt, ge, between, like-contains,
/// like-prefix, like-suffix, in-set.
const PRED_KINDS: usize = 11;

/// Upper bound on distinct memoized encoder forwards. Serving workloads
/// repeat a small set of per-table filter shapes, so a few thousand entries
/// cover them; past the cap new results are returned uncached rather than
/// evicted (no LRU bookkeeping on the hot path).
const EMBED_CACHE_CAP: usize = 4096;

/// One memoized encoder forward. The exact token bit pattern is kept so a
/// hash collision can never serve the wrong embedding: hits require the
/// full token matrix to match bit-for-bit.
struct CachedEmbedding {
    token_bits: Vec<u32>,
    embedding: Matrix,
    log_card: f32,
}

/// The per-database featurization module: per-table encoders plus the
/// column metadata needed for value normalization.
///
/// Cloning is cheap and *shares* the encoder parameters (they are frozen
/// after [`FeaturizationModule::fit`]), which lets several model variants —
/// e.g. the multi-task model and its single-task ablations — reuse one
/// fitted featurizer.
#[derive(Clone)]
pub struct FeaturizationModule {
    db_name: String,
    encoders: Vec<TableEncoder>,
    /// `[table][column] -> (min, max)` numeric view ranges.
    col_ranges: Vec<Vec<(f64, f64)>>,
    /// Rows per table (for the log-size feature on scan nodes).
    table_rows: Vec<usize>,
    max_cols: usize,
    needle_buckets: usize,
    d_model: usize,
    /// Memoized encoder forwards keyed by `(table, token-bits hash)`, with
    /// exact token verification per entry. Shared across clones (encoders
    /// are frozen after [`FeaturizationModule::fit`], so entries never go
    /// stale) and bounded by [`EMBED_CACHE_CAP`].
    embed_cache: Arc<Mutex<HashMap<(usize, u64), Vec<CachedEmbedding>>>>,
}

impl FeaturizationModule {
    /// Width of one predicate token.
    pub fn token_width(config: &MtmlfConfig) -> usize {
        config.max_cols + PRED_KINDS + 2 + config.needle_buckets + 1
    }

    /// Builds and pre-trains the module for a database: collects column
    /// ranges, generates single-table filter queries per table, and fits
    /// each `Enc_i` on single-table CardEst (paper Algorithm 1, line 4).
    pub fn fit(db: &Database, config: &MtmlfConfig) -> Result<Self> {
        let mut module = Self::untrained(db, config)?;
        for (tid, _) in db.tables() {
            let samples: Vec<(Matrix, u64)> =
                single_table_queries(db, tid, config.enc_queries, config.seed ^ 0xF17)
                    .into_iter()
                    .map(|q| {
                        let tokens = module.predicate_tokens(tid, &q.filters);
                        (tokens, q.cardinality)
                    })
                    .collect();
            module.encoders[tid.index()].fit(
                &samples,
                config.enc_epochs,
                config.enc_lr,
                config.seed ^ u64::from(tid.0),
            );
        }
        Ok(module)
    }

    /// Builds the module without pre-training the encoders (tests and
    /// custom training loops).
    pub fn untrained(db: &Database, config: &MtmlfConfig) -> Result<Self> {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xFEA7);
        let mut encoders = Vec::with_capacity(db.table_count());
        let mut col_ranges = Vec::with_capacity(db.table_count());
        let mut table_rows = Vec::with_capacity(db.table_count());
        let token_width = Self::token_width(config);
        for (_, table) in db.tables() {
            if table.arity() > config.max_cols {
                return Err(MtmlfError::TooManyColumns {
                    got: table.arity(),
                    max: config.max_cols,
                });
            }
            encoders.push(TableEncoder::new(
                token_width,
                config.d_model,
                config.heads,
                config.enc_blocks,
                &mut rng,
            ));
            // `read_column` works on resident and spilled tables alike, so
            // featurizers can be fitted over buffer-managed databases.
            let mut ranges = Vec::with_capacity(table.arity());
            for c in 0..table.arity() {
                let col = table
                    .read_column(mtmlf_storage::ColumnId(c as u32))
                    .map_err(MtmlfError::from)?;
                ranges.push(column_range(&col));
            }
            col_ranges.push(ranges);
            table_rows.push(table.rows());
        }
        Ok(Self {
            db_name: db.name().to_string(),
            encoders,
            col_ranges,
            table_rows,
            max_cols: config.max_cols,
            needle_buckets: config.needle_buckets,
            d_model: config.d_model,
            embed_cache: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Name of the database this module was fitted on.
    pub fn db_name(&self) -> &str {
        &self.db_name
    }

    /// Embedding width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Number of tables covered.
    pub fn table_count(&self) -> usize {
        self.encoders.len()
    }

    /// Rows of a table (catalog metadata visible to any component).
    pub fn table_rows(&self, table: TableId) -> usize {
        self.table_rows.get(table.index()).copied().unwrap_or(0)
    }

    /// Tokenizes a conjunction of filters on `table` (F.i). An empty filter
    /// set yields one pass-through token spanning the full value range.
    pub fn predicate_tokens(&self, table: TableId, filters: &[FilterPredicate]) -> Matrix {
        let width = self.max_cols + PRED_KINDS + 2 + self.needle_buckets + 1;
        if filters.is_empty() {
            let mut t = Matrix::zeros(1, width);
            t.set(0, self.max_cols + PRED_KINDS + 1, 1.0); // hi = full range
            return t;
        }
        let mut rows = Matrix::zeros(filters.len(), width);
        for (r, f) in filters.iter().enumerate() {
            let col = f.column().index().min(self.max_cols - 1);
            rows.set(r, col, 1.0);
            let kind_base = self.max_cols;
            let value_base = self.max_cols + PRED_KINDS;
            let needle_base = value_base + 2;
            let flag = width - 1;
            rows.set(r, flag, 1.0);
            let range = self
                .col_ranges
                .get(table.index())
                .and_then(|t| t.get(f.column().index()))
                .copied()
                .unwrap_or((0.0, 1.0));
            match f {
                FilterPredicate::Cmp { op, value, .. } => {
                    let slot = match op {
                        CmpOp::Eq => 0,
                        CmpOp::Neq => 1,
                        CmpOp::Lt => 2,
                        CmpOp::Le => 3,
                        CmpOp::Gt => 4,
                        CmpOp::Ge => 5,
                    };
                    rows.set(r, kind_base + slot, 1.0);
                    let v = normalize(range, value);
                    let (lo, hi) = match op {
                        CmpOp::Eq | CmpOp::Neq => (v, v),
                        CmpOp::Lt | CmpOp::Le => (0.0, v),
                        CmpOp::Gt | CmpOp::Ge => (v, 1.0),
                    };
                    rows.set(r, value_base, lo);
                    rows.set(r, value_base + 1, hi);
                }
                FilterPredicate::Between { lo, hi, .. } => {
                    rows.set(r, kind_base + 6, 1.0);
                    rows.set(r, value_base, normalize(range, lo));
                    rows.set(r, value_base + 1, normalize(range, hi));
                }
                FilterPredicate::Like { pattern, .. } => {
                    let slot = match pattern {
                        LikePattern::Contains(_) => 7,
                        LikePattern::Prefix(_) => 8,
                        LikePattern::Suffix(_) => 9,
                    };
                    rows.set(r, kind_base + slot, 1.0);
                    let bucket = hash_needle(pattern.needle(), self.needle_buckets);
                    rows.set(r, needle_base + bucket, 1.0);
                }
                FilterPredicate::InSet { values, .. } => {
                    rows.set(r, kind_base + 10, 1.0);
                    // Represent the set by its normalized extremes and size.
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for v in values {
                        let nv = normalize(range, v) as f64;
                        lo = lo.min(nv);
                        hi = hi.max(nv);
                    }
                    if lo.is_finite() {
                        rows.set(r, value_base, lo as f32);
                        rows.set(r, value_base + 1, hi as f32);
                    }
                }
            }
        }
        rows
    }

    /// The table-distribution embedding `E(f(T_i))` as a detached matrix
    /// `(1, d_model)`.
    pub fn table_embedding(&self, table: TableId, filters: &[FilterPredicate]) -> Result<Matrix> {
        Ok(self.table_embedding_with_logcard(table, filters)?.0)
    }

    /// The table-distribution embedding plus the encoder's own predicted
    /// log-cardinality for the filters (its pre-training head's output).
    /// The serializer feeds both to the shared module: the embedding is the
    /// learned distribution summary, the log-cardinality an explicit
    /// filtered-size signal (both are (F)-module outputs, detached).
    ///
    /// Both values come from *one* encoder forward
    /// ([`TableEncoder::embed_with_logcard`]) and are memoized per exact
    /// token matrix: repeated filter shapes — the common case in serving
    /// workloads — skip the transformer entirely. Cached results are the
    /// stored matrices themselves, so hits are bitwise-identical to misses.
    pub fn table_embedding_with_logcard(
        &self,
        table: TableId,
        filters: &[FilterPredicate],
    ) -> Result<(Matrix, f32)> {
        let enc = self
            .encoders
            .get(table.index())
            .ok_or(MtmlfError::EncoderMissing(table.0))?;
        let tokens = self.predicate_tokens(table, filters);
        let bits: Vec<u32> = tokens.data().iter().map(|v| v.to_bits()).collect();
        let key = (table.index(), hash_token_bits(&bits));
        {
            let cache = self.embed_cache.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(bucket) = cache.get(&key) {
                for entry in bucket {
                    if entry.token_bits == bits {
                        return Ok((entry.embedding.clone(), entry.log_card));
                    }
                }
            }
        }
        let (embedding, log_card) = enc.embed_with_logcard(&tokens);
        let mut cache = self.embed_cache.lock().unwrap_or_else(|p| p.into_inner());
        if cache.len() < EMBED_CACHE_CAP {
            cache.entry(key).or_default().push(CachedEmbedding {
                token_bits: bits,
                embedding: embedding.clone(),
                log_card,
            });
        }
        Ok((embedding, log_card))
    }

    /// Drops all memoized encoder forwards. Must be called after any
    /// in-place mutation of encoder parameters — e.g. loading persisted
    /// weights — otherwise later lookups would serve embeddings computed
    /// from the old weights.
    pub fn invalidate_embedding_cache(&self) {
        self.embed_cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }

    /// Borrow a table's encoder (evaluation of encoder quality).
    pub fn encoder(&self, table: TableId) -> Result<&TableEncoder> {
        self.encoders
            .get(table.index())
            .ok_or(MtmlfError::EncoderMissing(table.0))
    }
}

fn column_range(column: &Column) -> (f64, f64) {
    let n = column.len();
    if n == 0 {
        return (0.0, 1.0);
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in 0..n {
        let v = column.numeric_at(r);
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

fn normalize(range: (f64, f64), value: &Value) -> f32 {
    let v = match value {
        Value::Str(_) => return 0.5, // string literals carry no numeric view
        v => v.as_numeric().unwrap_or(0.0),
    };
    let (lo, hi) = range;
    if hi > lo {
        (((v - lo) / (hi - lo)).clamp(0.0, 1.0)) as f32
    } else {
        0.5
    }
}

fn hash_needle(needle: &str, buckets: usize) -> usize {
    let mut h = mtmlf_exec::hasher::FxHasher::default();
    needle.hash(&mut h);
    (h.finish() as usize) % buckets.max(1)
}

fn hash_token_bits(bits: &[u32]) -> u64 {
    let mut h = mtmlf_exec::hasher::FxHasher::default();
    bits.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_datagen::{imdb::ImdbScale, imdb_lite};
    use mtmlf_storage::ColumnId;

    fn small_db() -> Database {
        imdb_lite(1, ImdbScale { scale: 0.02 }).unwrap()
    }

    #[test]
    fn token_shapes() {
        let db = small_db();
        let cfg = MtmlfConfig::tiny();
        let f = FeaturizationModule::untrained(&db, &cfg).unwrap();
        let empty = f.predicate_tokens(TableId(0), &[]);
        assert_eq!(empty.shape(), (1, FeaturizationModule::token_width(&cfg)));
        let filters = vec![
            FilterPredicate::Cmp {
                column: ColumnId(1),
                op: CmpOp::Le,
                value: Value::Int(1990),
            },
            FilterPredicate::Like {
                column: ColumnId(3),
                pattern: LikePattern::Contains("dark".into()),
            },
        ];
        let tokens = f.predicate_tokens(TableId(0), &filters);
        assert_eq!(tokens.shape(), (2, FeaturizationModule::token_width(&cfg)));
    }

    #[test]
    fn normalization_monotone() {
        let db = small_db();
        let cfg = MtmlfConfig::tiny();
        let f = FeaturizationModule::untrained(&db, &cfg).unwrap();
        let tok = |year: i64| {
            f.predicate_tokens(
                TableId(0),
                &[FilterPredicate::Cmp {
                    column: ColumnId(1),
                    op: CmpOp::Le,
                    value: Value::Int(year),
                }],
            )
        };
        let value_base = cfg.max_cols + PRED_KINDS;
        let early = tok(1950).get(0, value_base + 1);
        let late = tok(2015).get(0, value_base + 1);
        assert!(late > early, "normalized bound must grow with the literal");
    }

    #[test]
    fn distinct_needles_usually_distinct_buckets() {
        let db = small_db();
        let cfg = MtmlfConfig::tiny();
        let f = FeaturizationModule::untrained(&db, &cfg).unwrap();
        let bucket_of = |needle: &str| {
            let t = f.predicate_tokens(
                TableId(0),
                &[FilterPredicate::Like {
                    column: ColumnId(3),
                    pattern: LikePattern::Contains(needle.into()),
                }],
            );
            let needle_base = cfg.max_cols + PRED_KINDS + 2;
            (0..cfg.needle_buckets)
                .find(|&b| t.get(0, needle_base + b) == 1.0)
                .unwrap()
        };
        let distinct: std::collections::HashSet<usize> = ["dark", "light", "house", "star", "king"]
            .iter()
            .map(|n| bucket_of(n))
            .collect();
        assert!(distinct.len() >= 3, "hash spreads needles: {distinct:?}");
        assert_eq!(bucket_of("dark"), bucket_of("dark"), "deterministic");
    }

    #[test]
    fn embedding_shape_and_determinism() {
        let db = small_db();
        let cfg = MtmlfConfig::tiny();
        let f = FeaturizationModule::untrained(&db, &cfg).unwrap();
        let e1 = f.table_embedding(TableId(2), &[]).unwrap();
        let e2 = f.table_embedding(TableId(2), &[]).unwrap();
        assert_eq!(e1.shape(), (1, cfg.d_model));
        assert_eq!(e1, e2);
    }

    #[test]
    fn logcard_embedding_memoized_and_bitwise_stable() {
        let db = small_db();
        let cfg = MtmlfConfig::tiny();
        let f = FeaturizationModule::untrained(&db, &cfg).unwrap();
        let filters = vec![FilterPredicate::Cmp {
            column: ColumnId(1),
            op: CmpOp::Le,
            value: Value::Int(1990),
        }];
        // Reference: the historical pair of separate encoder forwards.
        let enc = f.encoder(TableId(0)).unwrap();
        let tokens = f.predicate_tokens(TableId(0), &filters);
        let reference = (enc.embed(&tokens), enc.predict_log_card(&tokens).item());
        // Cache miss, then hit: both must match the reference bitwise.
        let miss = f.table_embedding_with_logcard(TableId(0), &filters).unwrap();
        let hit = f.table_embedding_with_logcard(TableId(0), &filters).unwrap();
        assert_eq!(miss.0, reference.0);
        assert_eq!(miss.1.to_bits(), reference.1.to_bits());
        assert_eq!(hit.0, miss.0);
        assert_eq!(hit.1.to_bits(), miss.1.to_bits());
        // Clones share the memo (encoder parameters are frozen/shared too).
        let clone = f.clone();
        let via_clone = clone
            .table_embedding_with_logcard(TableId(0), &filters)
            .unwrap();
        assert_eq!(via_clone.0, miss.0);
        assert_eq!(via_clone.1.to_bits(), miss.1.to_bits());
        // The plain-embedding entry point rides the same cache.
        assert_eq!(f.table_embedding(TableId(0), &filters).unwrap(), miss.0);
    }

    #[test]
    fn fit_trains_encoders_to_predict_cardinality() {
        let db = small_db();
        let mut cfg = MtmlfConfig::tiny();
        cfg.enc_queries = 60;
        cfg.enc_epochs = 20;
        let f = FeaturizationModule::fit(&db, &cfg).unwrap();
        // The trained encoder's cardinality head should track truth within
        // an order of magnitude on fresh single-table queries.
        let fresh = single_table_queries(&db, TableId(0), 30, 999);
        let enc = f.encoder(TableId(0)).unwrap();
        let mut good = 0;
        for q in &fresh {
            let tokens = f.predicate_tokens(TableId(0), &q.filters);
            let pred = mtmlf_nn::loss::log_pred_to_estimate(enc.predict_log_card(&tokens).item());
            let q_err = mtmlf_optd::q_error(pred, q.cardinality as f64);
            if q_err < 12.0 {
                good += 1;
            }
        }
        assert!(
            good * 2 > fresh.len(),
            "most fresh queries within q-error 12: {good}/{}",
            fresh.len()
        );
    }

    #[test]
    fn too_many_columns_rejected() {
        let db = small_db();
        let cfg = MtmlfConfig {
            max_cols: 2,
            ..MtmlfConfig::tiny()
        };
        assert!(matches!(
            FeaturizationModule::untrained(&db, &cfg),
            Err(MtmlfError::TooManyColumns { .. })
        ));
    }
}

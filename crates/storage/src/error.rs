//! Error type for the storage engine.

use std::fmt;

/// Errors produced by storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table name was not found in the catalog.
    UnknownTable(String),
    /// A column name was not found in a table.
    UnknownColumn { table: String, column: String },
    /// A table id was out of range for the database.
    TableIdOutOfRange(u32),
    /// A column id was out of range for the table.
    ColumnIdOutOfRange { table: String, column: u32 },
    /// A value's type did not match the column's declared type.
    TypeMismatch {
        column: String,
        expected: &'static str,
        got: &'static str,
    },
    /// Row arity did not match the schema arity on insert.
    ArityMismatch { expected: usize, got: usize },
    /// Columns of a single table had inconsistent lengths.
    LengthMismatch { expected: usize, got: usize },
    /// A duplicate table name was registered in a database.
    DuplicateTable(String),
    /// Statistics were requested before being built.
    StatsNotBuilt(String),
    /// A borrow-only accessor reached a column that has been spilled to a
    /// buffer pool (use `Table::read_column`, which pins transparently).
    ColumnSpilled { table: String, column: u32 },
    /// Every frame in the buffer pool is pinned; nothing can be evicted to
    /// make room (or the pool was configured with a zero budget).
    BufferExhausted { budget: usize },
    /// A spill file failed its integrity envelope (bad magic, truncation,
    /// checksum mismatch, or malformed payload).
    Corrupt(String),
    /// An underlying filesystem operation failed.
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            Self::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            Self::TableIdOutOfRange(id) => write!(f, "table id {id} out of range"),
            Self::ColumnIdOutOfRange { table, column } => {
                write!(f, "column id {column} out of range for table `{table}`")
            }
            Self::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch on column `{column}`: expected {expected}, got {got}"
            ),
            Self::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: expected {expected} values, got {got}"
                )
            }
            Self::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "column length mismatch: expected {expected} rows, got {got}"
                )
            }
            Self::DuplicateTable(name) => write!(f, "duplicate table `{name}`"),
            Self::StatsNotBuilt(name) => {
                write!(f, "statistics for table `{name}` have not been built")
            }
            Self::ColumnSpilled { table, column } => write!(
                f,
                "column {column} of table `{table}` is spilled; read it through read_column"
            ),
            Self::BufferExhausted { budget } => write!(
                f,
                "buffer pool exhausted: all {budget} frames are pinned"
            ),
            Self::Corrupt(msg) => write!(f, "corrupt spill data: {msg}"),
            Self::Io(msg) => write!(f, "storage io error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

//! Error type for the storage engine.

use std::fmt;

/// Errors produced by storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table name was not found in the catalog.
    UnknownTable(String),
    /// A column name was not found in a table.
    UnknownColumn { table: String, column: String },
    /// A table id was out of range for the database.
    TableIdOutOfRange(u32),
    /// A column id was out of range for the table.
    ColumnIdOutOfRange { table: String, column: u32 },
    /// A value's type did not match the column's declared type.
    TypeMismatch {
        column: String,
        expected: &'static str,
        got: &'static str,
    },
    /// Row arity did not match the schema arity on insert.
    ArityMismatch { expected: usize, got: usize },
    /// Columns of a single table had inconsistent lengths.
    LengthMismatch { expected: usize, got: usize },
    /// A duplicate table name was registered in a database.
    DuplicateTable(String),
    /// Statistics were requested before being built.
    StatsNotBuilt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            Self::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            Self::TableIdOutOfRange(id) => write!(f, "table id {id} out of range"),
            Self::ColumnIdOutOfRange { table, column } => {
                write!(f, "column id {column} out of range for table `{table}`")
            }
            Self::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch on column `{column}`: expected {expected}, got {got}"
            ),
            Self::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: expected {expected} values, got {got}"
                )
            }
            Self::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "column length mismatch: expected {expected} rows, got {got}"
                )
            }
            Self::DuplicateTable(name) => write!(f, "duplicate table `{name}`"),
            Self::StatsNotBuilt(name) => {
                write!(f, "statistics for table `{name}` have not been built")
            }
        }
    }
}

impl std::error::Error for StorageError {}

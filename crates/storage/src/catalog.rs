//! Databases and catalogs: named collections of tables plus the join schema.

use crate::error::StorageError;
use crate::schema::{ColumnId, KeyRole, TableId};
use crate::table::Table;
use crate::Result;
use std::collections::HashMap;

/// One edge of the join schema: `from.column` is a foreign key referencing
/// `to`'s primary key (PK–FK), or both are foreign keys into the same fact
/// table (transitive FK–FK, see the paper's Section 6.2 S1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinEdge {
    /// Referencing table.
    pub from: TableId,
    /// Foreign-key column in `from`.
    pub from_col: ColumnId,
    /// Referenced table.
    pub to: TableId,
    /// Key column in `to` (its primary key for PK–FK edges).
    pub to_col: ColumnId,
    /// True for PK–FK edges, false for derived FK–FK edges.
    pub pk_fk: bool,
}

/// A database: an ordered set of tables with unique names.
#[derive(Debug, Clone, Default)]
pub struct Database {
    name: String,
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
}

impl Database {
    /// Creates an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tables: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a table, returning its id.
    pub fn add_table(&mut self, table: Table) -> Result<TableId> {
        let name = table.name().to_string();
        if self.by_name.contains_key(&name) {
            return Err(StorageError::DuplicateTable(name));
        }
        let id = TableId(self.tables.len() as u32);
        self.by_name.insert(name, id);
        self.tables.push(table);
        Ok(id)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Borrow a table by id.
    pub fn table(&self, id: TableId) -> Result<&Table> {
        self.tables
            .get(id.index())
            .ok_or(StorageError::TableIdOutOfRange(id.0))
    }

    /// Mutably borrow a table by id.
    pub fn table_mut(&mut self, id: TableId) -> Result<&mut Table> {
        self.tables
            .get_mut(id.index())
            .ok_or(StorageError::TableIdOutOfRange(id.0))
    }

    /// Find a table id by name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Borrow a table by name.
    pub fn table_by_name(&self, name: &str) -> Result<&Table> {
        self.table(self.table_id(name)?)
    }

    /// Iterate `(id, table)` pairs.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }

    /// Runs `ANALYZE` on every table.
    pub fn analyze_all(&mut self, buckets: usize, mcvs: usize) {
        for t in &mut self.tables {
            t.analyze(buckets, mcvs);
        }
    }

    /// Derives the join schema from foreign-key metadata: one PK–FK edge per
    /// foreign key (in both directions the executor cares about only one
    /// canonical direction: from = FK side), plus FK–FK edges between pairs
    /// of foreign keys referencing the same table.
    pub fn join_edges(&self) -> Vec<JoinEdge> {
        let mut edges = Vec::new();
        // (referenced table -> list of (referencing table, fk column))
        let mut fks_by_target: HashMap<TableId, Vec<(TableId, ColumnId)>> = HashMap::new();
        for (tid, table) in self.tables() {
            for (col_idx, def) in table.schema().columns.iter().enumerate() {
                if let KeyRole::ForeignKey { table: target } = def.key {
                    let Ok(target_table) = self.table(target) else {
                        continue;
                    };
                    let Some(pk) = target_table.schema().primary_key() else {
                        continue;
                    };
                    let from_col = ColumnId(col_idx as u32);
                    edges.push(JoinEdge {
                        from: tid,
                        from_col,
                        to: target,
                        to_col: pk,
                        pk_fk: true,
                    });
                    fks_by_target
                        .entry(target)
                        .or_default()
                        .push((tid, from_col));
                }
            }
        }
        // Transitive FK–FK edges: two different tables' FKs into the same
        // target can equi-join directly.
        for refs in fks_by_target.values() {
            for i in 0..refs.len() {
                for j in (i + 1)..refs.len() {
                    let (ta, ca) = refs[i];
                    let (tb, cb) = refs[j];
                    if ta == tb {
                        continue;
                    }
                    edges.push(JoinEdge {
                        from: ta,
                        from_col: ca,
                        to: tb,
                        to_col: cb,
                        pk_fk: false,
                    });
                }
            }
        }
        edges
    }
}

/// A catalog of databases, keyed by name. Used by the meta-learning driver,
/// which trains across many generated databases.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    databases: Vec<Database>,
    by_name: HashMap<String, usize>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a database, returning its index.
    pub fn add_database(&mut self, db: Database) -> Result<usize> {
        if self.by_name.contains_key(db.name()) {
            return Err(StorageError::DuplicateTable(db.name().to_string()));
        }
        let idx = self.databases.len();
        self.by_name.insert(db.name().to_string(), idx);
        self.databases.push(db);
        Ok(idx)
    }

    /// Number of databases.
    pub fn len(&self) -> usize {
        self.databases.len()
    }

    /// True when no databases are registered.
    pub fn is_empty(&self) -> bool {
        self.databases.is_empty()
    }

    /// Borrow a database by index.
    pub fn database(&self, idx: usize) -> Option<&Database> {
        self.databases.get(idx)
    }

    /// Borrow a database by name.
    pub fn database_by_name(&self, name: &str) -> Option<&Database> {
        self.by_name.get(name).map(|&i| &self.databases[i])
    }

    /// Iterate databases in registration order.
    pub fn databases(&self) -> impl Iterator<Item = &Database> {
        self.databases.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::{ColumnDef, ColumnType, TableSchema};

    fn make_db() -> Database {
        let mut db = Database::new("test");
        let fact = Table::from_columns(
            TableSchema::new(
                "fact",
                vec![ColumnDef::pk("id"), ColumnDef::attr("x", ColumnType::Int)],
            ),
            vec![Column::Int(vec![0, 1, 2]), Column::Int(vec![5, 6, 7])],
        )
        .unwrap();
        let fact_id = db.add_table(fact).unwrap();
        let dim1 = Table::from_columns(
            TableSchema::new(
                "dim1",
                vec![ColumnDef::pk("id"), ColumnDef::fk("fact_id", fact_id)],
            ),
            vec![Column::Int(vec![0, 1]), Column::Int(vec![0, 2])],
        )
        .unwrap();
        db.add_table(dim1).unwrap();
        let dim2 = Table::from_columns(
            TableSchema::new(
                "dim2",
                vec![ColumnDef::pk("id"), ColumnDef::fk("fact_id", fact_id)],
            ),
            vec![Column::Int(vec![0]), Column::Int(vec![1])],
        )
        .unwrap();
        db.add_table(dim2).unwrap();
        db
    }

    #[test]
    fn add_and_lookup_tables() {
        let db = make_db();
        assert_eq!(db.table_count(), 3);
        assert_eq!(db.table_id("dim1").unwrap(), TableId(1));
        assert!(db.table_id("nope").is_err());
        assert_eq!(db.table_by_name("fact").unwrap().rows(), 3);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = make_db();
        let dup = Table::empty(TableSchema::new("fact", vec![ColumnDef::pk("id")]));
        assert!(matches!(
            db.add_table(dup),
            Err(StorageError::DuplicateTable(_))
        ));
    }

    #[test]
    fn join_edges_pk_fk_and_fk_fk() {
        let db = make_db();
        let edges = db.join_edges();
        let pk_fk: Vec<_> = edges.iter().filter(|e| e.pk_fk).collect();
        let fk_fk: Vec<_> = edges.iter().filter(|e| !e.pk_fk).collect();
        assert_eq!(pk_fk.len(), 2, "one PK-FK edge per dimension table");
        assert_eq!(fk_fk.len(), 1, "dim1 and dim2 share the fact target");
        assert_eq!(fk_fk[0].from, TableId(1));
        assert_eq!(fk_fk[0].to, TableId(2));
    }

    #[test]
    fn analyze_all_builds_stats() {
        let mut db = make_db();
        db.analyze_all(4, 2);
        for (_, t) in db.tables() {
            assert!(t.has_stats());
        }
    }

    #[test]
    fn catalog_registration() {
        let mut cat = Catalog::new();
        cat.add_database(make_db()).unwrap();
        assert_eq!(cat.len(), 1);
        assert!(cat.database_by_name("test").is_some());
        assert!(cat.add_database(make_db()).is_err());
    }
}

//! Scalar values exchanged at the storage boundary.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single scalar value.
///
/// `Value` is the row-oriented exchange type used when inserting rows,
/// writing literals in predicates, and reading individual cells. Bulk data
/// lives in typed [`crate::Column`]s and never round-trips through `Value`.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer (also used for all key columns).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned string.
    Str(Arc<str>),
}

impl Value {
    /// Name of the value's runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A numeric view of the value used by histograms: ints and floats map to
    /// their numeric value, strings have no numeric view.
    pub fn as_numeric(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Constructs a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), None);
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::str("abc").as_str(), Some("abc"));
    }

    #[test]
    fn numeric_view() {
        assert_eq!(Value::Int(7).as_numeric(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_numeric(), Some(1.5));
        assert_eq!(Value::str("x").as_numeric(), None);
    }

    #[test]
    fn cross_type_comparison_is_none() {
        assert_eq!(Value::Int(1).partial_cmp(&Value::str("1")), None);
        assert!(Value::Int(1) != Value::Float(1.0));
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Float(1.0) < Value::Float(1.5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("abc").to_string(), "'abc'");
    }
}

//! # mtmlf-storage
//!
//! In-memory columnar storage engine used as the data substrate for the
//! MTMLF reproduction (*A Unified Transferable Model for ML-Enhanced DBMS*,
//! CIDR 2022).
//!
//! The engine stores relations column-wise with three physical column types
//! (64-bit integers, 64-bit floats, and dictionary-encoded strings), tracks
//! schemas with primary-key / foreign-key metadata (the paper's "join
//! schema"), and computes the per-column statistics (equi-depth histograms,
//! most-common-value lists, distinct counts) that back the PostgreSQL-style
//! baseline estimator in `mtmlf-optd`.
//!
//! Design choices:
//! - Columns are append-only and NOT nullable: all data in this reproduction
//!   is synthetically generated, so null handling would be dead code.
//! - Strings are dictionary encoded (`u32` codes into a sorted dictionary),
//!   which makes `LIKE` evaluation a dictionary scan plus a code lookup and
//!   gives every distinct value a stable id for value embeddings.
//! - Everything is deterministic; sampling takes an explicit seed.
//! - A memory-bounded mode ([`buffer`]): tables larger than RAM spill
//!   their columns to checksummed per-column files under a fixed-budget
//!   [`BufferPool`] with pin/unpin and LRU replacement; the executor reads
//!   through [`table::ColumnRef`] and gets bitwise-identical results.

#![forbid(unsafe_code)]

pub mod buffer;
pub mod catalog;
pub mod column;
pub mod error;
pub mod sample;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use buffer::{BufferPool, BufferPoolConfig, LruReplacer, PinnedColumn, SpillId};
pub use catalog::{Catalog, Database, JoinEdge};
pub use column::{Column, StrDict};
pub use error::StorageError;
pub use schema::{ColumnDef, ColumnId, ColumnType, KeyRole, TableId, TableSchema};
pub use stats::{ColumnStats, Histogram, Mcv, TableStats};
pub use table::{ColumnRef, Table};
pub use value::Value;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;

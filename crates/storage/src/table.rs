//! Tables: a schema plus one column per column definition.
//!
//! A table's columns are either *resident* (plain in-memory [`Column`]s,
//! the default) or *spilled* into a [`BufferPool`]
//! ([`Table::spill_to`]). Readers that must work in both modes go through
//! [`Table::read_column`], which returns a [`ColumnRef`] — a borrowed
//! column for resident data, a pinned buffer-pool frame for spilled data —
//! and is bitwise-equal either way. The borrow-only accessors
//! ([`Table::column`], [`Table::column_by_name`]) keep their cheap
//! signatures and fail with [`StorageError::ColumnSpilled`] on spilled
//! columns.

use crate::buffer::{BufferPool, PinnedColumn, SpillId};
use crate::column::Column;
use crate::error::StorageError;
use crate::schema::{ColumnId, TableSchema};
use crate::stats::{ColumnStats, TableStats};
use crate::value::Value;
use crate::Result;
use std::ops::Deref;
use std::sync::Arc;

/// Physical home of one column: in memory or in a buffer-pool spill file.
#[derive(Debug, Clone)]
enum ColumnStore {
    Resident(Column),
    Spilled(SpillId),
}

/// A readable view of one column, independent of where it lives.
/// Dereferences to [`Column`].
#[derive(Debug)]
pub enum ColumnRef<'a> {
    /// Borrowed from a resident table.
    Borrowed(&'a Column),
    /// Pinned in a buffer pool for the lifetime of this guard.
    Pinned(PinnedColumn),
}

impl Deref for ColumnRef<'_> {
    type Target = Column;

    fn deref(&self) -> &Column {
        match self {
            ColumnRef::Borrowed(c) => c,
            ColumnRef::Pinned(p) => p,
        }
    }
}

/// An in-memory (or partially spilled) table.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    columns: Vec<ColumnStore>,
    rows: usize,
    stats: Option<TableStats>,
    /// Set once any column has been spilled. Clones share the pool and its
    /// spill files, which is sound because spilled columns are immutable
    /// (`insert` refuses spilled tables).
    pool: Option<Arc<BufferPool>>,
}

impl Table {
    /// Creates an empty table with columns matching `schema`.
    pub fn empty(schema: TableSchema) -> Self {
        let columns = schema
            .columns
            .iter()
            .map(|c| ColumnStore::Resident(Column::empty(c.ctype)))
            .collect();
        Self {
            schema,
            columns,
            rows: 0,
            stats: None,
            pool: None,
        }
    }

    /// Creates a table from pre-built columns. All columns must match the
    /// schema types and have equal lengths.
    pub fn from_columns(schema: TableSchema, columns: Vec<Column>) -> Result<Self> {
        if columns.len() != schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: schema.arity(),
                got: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, Column::len);
        for (def, col) in schema.columns.iter().zip(&columns) {
            if col.ctype() != def.ctype {
                return Err(StorageError::TypeMismatch {
                    column: def.name.clone(),
                    expected: def.ctype.name(),
                    got: col.ctype().name(),
                });
            }
            if col.len() != rows {
                return Err(StorageError::LengthMismatch {
                    expected: rows,
                    got: col.len(),
                });
            }
        }
        Ok(Self {
            schema,
            columns: columns.into_iter().map(ColumnStore::Resident).collect(),
            rows,
            stats: None,
            pool: None,
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// True when at least one column lives in a buffer pool.
    pub fn is_spilled(&self) -> bool {
        self.columns
            .iter()
            .any(|c| matches!(c, ColumnStore::Spilled(_)))
    }

    fn store(&self, id: ColumnId) -> Result<&ColumnStore> {
        self.columns
            .get(id.index())
            .ok_or_else(|| StorageError::ColumnIdOutOfRange {
                table: self.schema.name.clone(),
                column: id.0,
            })
    }

    /// Borrow a resident column by id. Spilled columns cannot be borrowed;
    /// read them through [`Table::read_column`].
    pub fn column(&self, id: ColumnId) -> Result<&Column> {
        match self.store(id)? {
            ColumnStore::Resident(c) => Ok(c),
            ColumnStore::Spilled(_) => Err(StorageError::ColumnSpilled {
                table: self.schema.name.clone(),
                column: id.0,
            }),
        }
    }

    /// Borrow a resident column by name (see [`Table::column`]).
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let id = self
            .schema
            .column_id(name)
            .ok_or_else(|| StorageError::UnknownColumn {
                table: self.schema.name.clone(),
                column: name.to_string(),
            })?;
        self.column(id)
    }

    /// Reads a column wherever it lives: a plain borrow for resident
    /// columns, a pinned buffer-pool frame for spilled ones. This is the
    /// executor's access path; results are bitwise identical to the
    /// resident case.
    pub fn read_column(&self, id: ColumnId) -> Result<ColumnRef<'_>> {
        match self.store(id)? {
            ColumnStore::Resident(c) => Ok(ColumnRef::Borrowed(c)),
            ColumnStore::Spilled(spill) => {
                let pool = self.pool.as_ref().ok_or_else(|| {
                    StorageError::Corrupt("spilled column without a buffer pool".into())
                })?;
                Ok(ColumnRef::Pinned(pool.pin(*spill)?))
            }
        }
    }

    /// Moves every column into `pool`, replacing resident data with spill
    /// ids. After this the table's memory footprint is its schema and
    /// stats; reads go through `pool` under its frame budget. Statistics
    /// survive (they are summaries, not row data). Idempotent per column:
    /// already spilled columns are left where they are.
    pub fn spill_to(&mut self, pool: &Arc<BufferPool>) -> Result<()> {
        for slot in &mut self.columns {
            if let ColumnStore::Resident(col) = slot {
                let id = pool.spill(col)?;
                *slot = ColumnStore::Spilled(id);
            }
        }
        self.pool = Some(Arc::clone(pool));
        Ok(())
    }

    /// Appends one row; `row` must match the schema arity and types.
    /// Invalidates previously built statistics. Refused on spilled tables:
    /// spill files are immutable.
    pub fn insert(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        if self.is_spilled() {
            return Err(StorageError::ColumnSpilled {
                table: self.schema.name.clone(),
                column: 0,
            });
        }
        for ((slot, def), v) in self.columns.iter_mut().zip(&self.schema.columns).zip(row) {
            match slot {
                ColumnStore::Resident(col) => col.push(v, &def.name)?,
                // Unreachable: checked above while no mutable borrow lived.
                ColumnStore::Spilled(_) => unreachable!("insert on spilled table"), // lint: allow(panic)
            }
        }
        self.rows += 1;
        self.stats = None;
        Ok(())
    }

    /// Reads a full row (mainly for tests and debugging; the executor works
    /// column-wise). Returns `None` past the end or when a spilled column
    /// cannot be pinned.
    pub fn row(&self, index: usize) -> Option<Vec<Value>> {
        if index >= self.rows {
            return None;
        }
        (0..self.columns.len())
            .map(|c| {
                self.read_column(ColumnId(c as u32))
                    .ok()
                    .map(|col| col.get(index))
            })
            .collect()
    }

    /// Builds and caches per-column statistics with `buckets` histogram
    /// buckets and `mcvs` most-common values (the storage analogue of
    /// PostgreSQL's `ANALYZE`). On a spilled table columns are pinned one
    /// at a time, so the pass runs within the pool's frame budget.
    pub fn try_analyze(&mut self, buckets: usize, mcvs: usize) -> Result<()> {
        let mut per_column = Vec::with_capacity(self.columns.len());
        for c in 0..self.columns.len() {
            let col = self.read_column(ColumnId(c as u32))?;
            per_column.push(ColumnStats::build(&col, buckets, mcvs));
        }
        self.stats = Some(TableStats {
            columns: per_column,
            rows: self.rows as u64,
        });
        Ok(())
    }

    /// [`Table::try_analyze`] for the resident-table common case, where no
    /// error is possible. Panics if a spilled column fails to load (pin the
    /// failure earlier with `try_analyze` when analyzing spilled tables).
    pub fn analyze(&mut self, buckets: usize, mcvs: usize) {
        self.try_analyze(buckets, mcvs)
            .expect("analyze: spilled column failed to load") // lint: allow(panic)
    }

    /// Previously built statistics.
    pub fn stats(&self) -> Result<&TableStats> {
        self.stats
            .as_ref()
            .ok_or_else(|| StorageError::StatsNotBuilt(self.schema.name.clone()))
    }

    /// True if `analyze` has been run since the last mutation.
    pub fn has_stats(&self) -> bool {
        self.stats.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPoolConfig;
    use crate::schema::{ColumnDef, ColumnType};

    fn two_col_schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::attr("a", ColumnType::Int),
                ColumnDef::attr("b", ColumnType::Float),
            ],
        )
    }

    fn small_pool(budget: usize, tag: &str) -> Arc<BufferPool> {
        let dir = std::env::temp_dir().join(format!("mtmlf_table_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        BufferPool::new(BufferPoolConfig {
            frame_budget: budget,
            dir,
        })
        .unwrap()
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = Table::empty(two_col_schema());
        t.insert(&[Value::Int(1), Value::Float(1.5)]).unwrap();
        t.insert(&[Value::Int(2), Value::Float(2.5)]).unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.row(1), Some(vec![Value::Int(2), Value::Float(2.5)]));
        assert_eq!(t.row(2), None);
    }

    #[test]
    fn insert_arity_checked() {
        let mut t = Table::empty(two_col_schema());
        let err = t.insert(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn from_columns_validates_lengths() {
        let schema = two_col_schema();
        let err = Table::from_columns(
            schema.clone(),
            vec![Column::Int(vec![1, 2]), Column::Float(vec![1.0])],
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::LengthMismatch { .. }));
        let t = Table::from_columns(
            schema,
            vec![Column::Int(vec![1, 2]), Column::Float(vec![1.0, 2.0])],
        )
        .unwrap();
        assert_eq!(t.rows(), 2);
    }

    #[test]
    fn from_columns_validates_types() {
        let err = Table::from_columns(
            two_col_schema(),
            vec![Column::Float(vec![1.0]), Column::Float(vec![1.0])],
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn stats_lifecycle() {
        let mut t = Table::empty(two_col_schema());
        t.insert(&[Value::Int(1), Value::Float(1.0)]).unwrap();
        assert!(t.stats().is_err());
        t.analyze(4, 2);
        assert!(t.stats().is_ok());
        t.insert(&[Value::Int(2), Value::Float(2.0)]).unwrap();
        assert!(!t.has_stats(), "mutation invalidates stats");
    }

    #[test]
    fn column_lookup_errors() {
        let t = Table::empty(two_col_schema());
        assert!(t.column_by_name("missing").is_err());
        assert!(t.column(ColumnId(5)).is_err());
    }

    #[test]
    fn spill_then_read_back_bitwise() {
        let mut t = Table::from_columns(
            two_col_schema(),
            vec![
                Column::Int(vec![10, 20, 30]),
                Column::Float(vec![1.25, -0.0, f64::MAX]),
            ],
        )
        .unwrap();
        let before: Vec<Vec<Value>> = (0..3).map(|r| t.row(r).unwrap()).collect();
        let pool = small_pool(1, "bitwise");
        t.spill_to(&pool).unwrap();
        assert!(t.is_spilled());
        assert_eq!(pool.spilled_frames(), 2);

        // Borrow-only accessors refuse; read_column works, bit-for-bit.
        assert!(matches!(
            t.column(ColumnId(0)),
            Err(StorageError::ColumnSpilled { .. })
        ));
        assert!(t.column_by_name("a").is_err());
        let col = t.read_column(ColumnId(0)).unwrap();
        assert_eq!(col.as_int(), Some(&[10i64, 20, 30][..]));
        drop(col);
        for (r, want) in before.iter().enumerate() {
            assert_eq!(t.row(r).as_ref(), Some(want));
        }
    }

    #[test]
    fn spilled_tables_refuse_inserts() {
        let mut t = Table::from_columns(
            two_col_schema(),
            vec![Column::Int(vec![1]), Column::Float(vec![1.0])],
        )
        .unwrap();
        t.spill_to(&small_pool(2, "insert")).unwrap();
        let err = t.insert(&[Value::Int(2), Value::Float(2.0)]).unwrap_err();
        assert!(matches!(err, StorageError::ColumnSpilled { .. }));
        assert_eq!(t.rows(), 1);
    }

    #[test]
    fn analyze_on_spilled_matches_resident() {
        let cols = vec![
            Column::Int((0..50).map(|i| i % 7).collect()),
            Column::Float((0..50).map(|i| i as f64 * 0.25).collect()),
        ];
        let mut resident = Table::from_columns(two_col_schema(), cols.clone()).unwrap();
        resident.analyze(8, 4);
        let mut spilled = Table::from_columns(two_col_schema(), cols).unwrap();
        // Budget of one frame: the analyze pass must pin one column at a time.
        spilled.spill_to(&small_pool(1, "analyze")).unwrap();
        spilled.try_analyze(8, 4).unwrap();
        let a = resident.stats().unwrap();
        let b = spilled.stats().unwrap();
        assert_eq!(a.rows, b.rows);
        for (ca, cb) in a.columns.iter().zip(&b.columns) {
            assert_eq!(ca.distinct, cb.distinct);
            assert_eq!(ca.min.to_bits(), cb.min.to_bits());
            assert_eq!(ca.max.to_bits(), cb.max.to_bits());
            assert_eq!(ca.histogram, cb.histogram);
            assert_eq!(ca.mcvs, cb.mcvs);
        }
    }

    #[test]
    fn stats_survive_spilling() {
        let mut t = Table::from_columns(
            two_col_schema(),
            vec![Column::Int(vec![1, 2]), Column::Float(vec![1.0, 2.0])],
        )
        .unwrap();
        t.analyze(4, 2);
        t.spill_to(&small_pool(1, "stats")).unwrap();
        assert!(t.has_stats(), "spilling loses no statistics");
        assert_eq!(t.stats().unwrap().rows, 2);
    }
}

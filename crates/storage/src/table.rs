//! Tables: a schema plus one column per column definition.

use crate::column::Column;
use crate::error::StorageError;
use crate::schema::{ColumnId, TableSchema};
use crate::stats::TableStats;
use crate::value::Value;
use crate::Result;

/// An in-memory table.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    columns: Vec<Column>,
    rows: usize,
    stats: Option<TableStats>,
}

impl Table {
    /// Creates an empty table with columns matching `schema`.
    pub fn empty(schema: TableSchema) -> Self {
        let columns = schema
            .columns
            .iter()
            .map(|c| Column::empty(c.ctype))
            .collect();
        Self {
            schema,
            columns,
            rows: 0,
            stats: None,
        }
    }

    /// Creates a table from pre-built columns. All columns must match the
    /// schema types and have equal lengths.
    pub fn from_columns(schema: TableSchema, columns: Vec<Column>) -> Result<Self> {
        if columns.len() != schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: schema.arity(),
                got: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, Column::len);
        for (def, col) in schema.columns.iter().zip(&columns) {
            if col.ctype() != def.ctype {
                return Err(StorageError::TypeMismatch {
                    column: def.name.clone(),
                    expected: def.ctype.name(),
                    got: col.ctype().name(),
                });
            }
            if col.len() != rows {
                return Err(StorageError::LengthMismatch {
                    expected: rows,
                    got: col.len(),
                });
            }
        }
        Ok(Self {
            schema,
            columns,
            rows,
            stats: None,
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Borrow a column by id.
    pub fn column(&self, id: ColumnId) -> Result<&Column> {
        self.columns
            .get(id.index())
            .ok_or_else(|| StorageError::ColumnIdOutOfRange {
                table: self.schema.name.clone(),
                column: id.0,
            })
    }

    /// Borrow a column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let id = self
            .schema
            .column_id(name)
            .ok_or_else(|| StorageError::UnknownColumn {
                table: self.schema.name.clone(),
                column: name.to_string(),
            })?;
        self.column(id)
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Appends one row; `row` must match the schema arity and types.
    /// Invalidates previously built statistics.
    pub fn insert(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        for ((col, def), v) in self.columns.iter_mut().zip(&self.schema.columns).zip(row) {
            col.push(v, &def.name)?;
        }
        self.rows += 1;
        self.stats = None;
        Ok(())
    }

    /// Reads a full row (mainly for tests and debugging; the executor works
    /// column-wise).
    pub fn row(&self, index: usize) -> Option<Vec<Value>> {
        if index >= self.rows {
            return None;
        }
        Some(self.columns.iter().map(|c| c.get(index)).collect())
    }

    /// Builds and caches per-column statistics with `buckets` histogram
    /// buckets and `mcvs` most-common values (the storage analogue of
    /// PostgreSQL's `ANALYZE`, which the paper's user-side workflow invokes).
    pub fn analyze(&mut self, buckets: usize, mcvs: usize) {
        self.stats = Some(TableStats::build(
            &self.schema,
            &self.columns,
            buckets,
            mcvs,
        ));
    }

    /// Previously built statistics.
    pub fn stats(&self) -> Result<&TableStats> {
        self.stats
            .as_ref()
            .ok_or_else(|| StorageError::StatsNotBuilt(self.schema.name.clone()))
    }

    /// True if `analyze` has been run since the last mutation.
    pub fn has_stats(&self) -> bool {
        self.stats.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn two_col_schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::attr("a", ColumnType::Int),
                ColumnDef::attr("b", ColumnType::Float),
            ],
        )
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = Table::empty(two_col_schema());
        t.insert(&[Value::Int(1), Value::Float(1.5)]).unwrap();
        t.insert(&[Value::Int(2), Value::Float(2.5)]).unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.row(1), Some(vec![Value::Int(2), Value::Float(2.5)]));
        assert_eq!(t.row(2), None);
    }

    #[test]
    fn insert_arity_checked() {
        let mut t = Table::empty(two_col_schema());
        let err = t.insert(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn from_columns_validates_lengths() {
        let schema = two_col_schema();
        let err = Table::from_columns(
            schema.clone(),
            vec![Column::Int(vec![1, 2]), Column::Float(vec![1.0])],
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::LengthMismatch { .. }));
        let t = Table::from_columns(
            schema,
            vec![Column::Int(vec![1, 2]), Column::Float(vec![1.0, 2.0])],
        )
        .unwrap();
        assert_eq!(t.rows(), 2);
    }

    #[test]
    fn from_columns_validates_types() {
        let err = Table::from_columns(
            two_col_schema(),
            vec![Column::Float(vec![1.0]), Column::Float(vec![1.0])],
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn stats_lifecycle() {
        let mut t = Table::empty(two_col_schema());
        t.insert(&[Value::Int(1), Value::Float(1.0)]).unwrap();
        assert!(t.stats().is_err());
        t.analyze(4, 2);
        assert!(t.stats().is_ok());
        t.insert(&[Value::Int(2), Value::Float(2.0)]).unwrap();
        assert!(!t.has_stats(), "mutation invalidates stats");
    }

    #[test]
    fn column_lookup_errors() {
        let t = Table::empty(two_col_schema());
        assert!(t.column_by_name("missing").is_err());
        assert!(t.column(ColumnId(5)).is_err());
    }
}

//! Per-column statistics: equi-depth histograms, most-common values,
//! distinct counts.
//!
//! These are the inputs of the PostgreSQL-style baseline estimator in
//! `mtmlf-optd` and of the "ANALYZE"-like step the paper's user-side
//! workflow performs before fine-tuning (Section 2.3).

use crate::column::Column;
use crate::schema::{ColumnType, TableSchema};
use std::collections::HashMap;

/// An equi-depth histogram over the numeric view of a column (dictionary
/// codes for string columns).
///
/// `bounds` has `buckets + 1` entries; bucket `i` covers
/// `[bounds[i], bounds[i+1])` (the last bucket is closed on the right) and
/// holds approximately `rows / buckets` rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket boundaries, ascending, `len = buckets + 1`.
    pub bounds: Vec<f64>,
    /// Exact per-bucket row counts (equi-depth up to rounding).
    pub counts: Vec<u64>,
    /// Total rows summarized.
    pub total: u64,
}

impl Histogram {
    /// Builds an equi-depth histogram with at most `buckets` buckets from
    /// unsorted values. Returns `None` for empty input or `buckets == 0`.
    pub fn build(values: &[f64], buckets: usize) -> Option<Self> {
        if values.is_empty() || buckets == 0 {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let buckets = buckets.min(n);
        let mut bounds = Vec::with_capacity(buckets + 1);
        let mut counts = Vec::with_capacity(buckets);
        bounds.push(sorted[0]);
        let mut start = 0usize;
        for b in 1..=buckets {
            let end = (n * b) / buckets;
            // Extend the bucket to the last duplicate of its boundary value so
            // equal values never straddle a bucket edge.
            let mut end = end.max(start + 1).min(n);
            if b < buckets {
                let boundary = sorted[end - 1];
                while end < n && sorted[end] == boundary {
                    end += 1;
                }
            } else {
                end = n;
            }
            if start >= n {
                break;
            }
            bounds.push(sorted[end - 1]);
            counts.push((end - start) as u64);
            start = end;
        }
        Some(Self {
            bounds,
            counts,
            total: n as u64,
        })
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Estimated fraction of rows with value `< x` (strict), assuming uniform
    /// spread inside each bucket — the same interpolation PostgreSQL uses.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if x <= self.bounds[0] {
            return 0.0;
        }
        if self.bounds.last().is_some_and(|&hi| x > hi) {
            return 1.0;
        }
        let mut acc = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            let lo = self.bounds[i];
            let hi = self.bounds[i + 1];
            if x > hi {
                acc += count;
                continue;
            }
            let inside = if hi > lo {
                ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
            } else {
                0.0
            };
            return (acc as f64 + inside * count as f64) / self.total as f64;
        }
        1.0
    }

    /// Estimated fraction of rows in `[lo, hi]` (inclusive ends).
    pub fn fraction_between(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        // Widen `hi` infinitesimally by using <= semantics at the top bound:
        // fraction_below is strict, so below(next_up(hi)) - below(lo).
        let upper = self.fraction_below(next_up(hi));
        let lower = self.fraction_below(lo);
        (upper - lower).clamp(0.0, 1.0)
    }
}

fn next_up(x: f64) -> f64 {
    // Smallest float strictly greater than x (finite inputs only).
    if x == f64::INFINITY {
        return x;
    }
    let bits = x.to_bits();
    let next = if x >= 0.0 { bits + 1 } else { bits - 1 };
    f64::from_bits(next)
}

/// One most-common-value entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Mcv {
    /// The value's numeric view.
    pub value: f64,
    /// Fraction of rows equal to the value.
    pub frequency: f64,
}

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Logical type of the column.
    pub ctype: ColumnType,
    /// Total rows.
    pub rows: u64,
    /// Number of distinct values.
    pub distinct: u64,
    /// Minimum numeric view.
    pub min: f64,
    /// Maximum numeric view.
    pub max: f64,
    /// Equi-depth histogram (absent for empty columns).
    pub histogram: Option<Histogram>,
    /// Most common values, descending by frequency.
    pub mcvs: Vec<Mcv>,
}

impl ColumnStats {
    /// Builds statistics for one column.
    pub fn build(column: &Column, buckets: usize, mcv_count: usize) -> Self {
        let rows = column.len();
        let values: Vec<f64> = (0..rows).map(|r| column.numeric_at(r)).collect();
        let mut freq: HashMap<u64, u64> = HashMap::with_capacity(rows.min(1 << 16));
        for &v in &values {
            *freq.entry(v.to_bits()).or_insert(0) += 1;
        }
        let distinct = freq.len() as u64;
        let (min, max) = values
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        let mut pairs: Vec<(f64, u64)> = freq
            .into_iter()
            .map(|(bits, c)| (f64::from_bits(bits), c))
            .collect();
        pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.total_cmp(&b.0)));
        let mcvs = pairs
            .iter()
            .take(mcv_count)
            .filter(|(_, c)| *c > 1 || rows <= mcv_count)
            .map(|&(value, c)| Mcv {
                value,
                frequency: c as f64 / rows.max(1) as f64,
            })
            .collect();
        Self {
            ctype: column.ctype(),
            rows: rows as u64,
            distinct,
            min: if rows == 0 { 0.0 } else { min },
            max: if rows == 0 { 0.0 } else { max },
            histogram: Histogram::build(&values, buckets),
            mcvs,
        }
    }

    /// Frequency of `value` according to the MCV list, if tracked there.
    pub fn mcv_frequency(&self, value: f64) -> Option<f64> {
        self.mcvs
            .iter()
            .find(|m| m.value == value)
            .map(|m| m.frequency)
    }
}

/// Statistics for all columns of a table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
    /// Total rows.
    pub rows: u64,
}

impl TableStats {
    /// Builds statistics for every column.
    pub fn build(_schema: &TableSchema, columns: &[Column], buckets: usize, mcvs: usize) -> Self {
        let per_column = columns
            .iter()
            .map(|c| ColumnStats::build(c, buckets, mcvs))
            .collect::<Vec<_>>();
        let rows = columns.first().map_or(0, |c| c.len() as u64);
        Self {
            columns: per_column,
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_depth_buckets_balanced() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(&values, 10).unwrap();
        assert_eq!(h.buckets(), 10);
        assert_eq!(h.total, 1000);
        for &c in &h.counts {
            assert!((90..=110).contains(&(c as i64)), "bucket count {c}");
        }
    }

    #[test]
    fn duplicates_do_not_straddle_buckets() {
        // 500 copies of 1.0 and 500 distinct values.
        let mut values = vec![1.0f64; 500];
        values.extend((2..502).map(|i| i as f64));
        let h = Histogram::build(&values, 4).unwrap();
        // Sum of counts equals total.
        assert_eq!(h.counts.iter().sum::<u64>(), 1000);
        // fraction_below(1.0 + eps) should be ~0.5.
        let f = h.fraction_below(1.0001);
        assert!((f - 0.5).abs() < 0.05, "fraction {f}");
    }

    #[test]
    fn fraction_below_interpolates() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::build(&values, 5).unwrap();
        assert_eq!(h.fraction_below(-1.0), 0.0);
        assert_eq!(h.fraction_below(1000.0), 1.0);
        let mid = h.fraction_below(49.5);
        assert!((mid - 0.5).abs() < 0.06, "mid fraction {mid}");
    }

    #[test]
    fn fraction_between_inclusive() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::build(&values, 10).unwrap();
        let f = h.fraction_between(0.0, 99.0);
        assert!(f > 0.99, "full range fraction {f}");
        assert_eq!(h.fraction_between(10.0, 5.0), 0.0);
    }

    #[test]
    fn column_stats_basics() {
        let col = Column::Int(vec![1, 1, 1, 2, 3]);
        let s = ColumnStats::build(&col, 4, 2);
        assert_eq!(s.rows, 5);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        let f = s.mcv_frequency(1.0).unwrap();
        assert!((f - 0.6).abs() < 1e-9);
        assert_eq!(s.mcv_frequency(9.0), None);
    }

    #[test]
    fn empty_column_stats() {
        let col = Column::Int(vec![]);
        let s = ColumnStats::build(&col, 4, 2);
        assert_eq!(s.rows, 0);
        assert!(s.histogram.is_none());
        assert!(s.mcvs.is_empty());
    }

    #[test]
    fn string_stats_use_dictionary_codes() {
        let col = Column::str_from_strings(&["b", "a", "b", "c"]);
        let s = ColumnStats::build(&col, 2, 2);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 2.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Bucket counts always sum to the population size.
        #[test]
        fn counts_sum_to_total(
            values in proptest::collection::vec(-1000i64..1000, 1..300),
            buckets in 1usize..16,
        ) {
            let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
            let h = Histogram::build(&floats, buckets).unwrap();
            prop_assert_eq!(h.counts.iter().sum::<u64>(), floats.len() as u64);
            prop_assert_eq!(h.bounds.len(), h.counts.len() + 1);
        }

        /// `fraction_below` is monotone non-decreasing and bounded in [0,1].
        #[test]
        fn fraction_below_monotone(
            values in proptest::collection::vec(-1000i64..1000, 1..300),
            probes in proptest::collection::vec(-1200f64..1200.0, 2..8),
        ) {
            let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
            let h = Histogram::build(&floats, 8).unwrap();
            let mut sorted = probes.clone();
            sorted.sort_by(f64::total_cmp);
            let mut last = 0.0f64;
            for p in sorted {
                let f = h.fraction_below(p);
                prop_assert!((0.0..=1.0).contains(&f));
                prop_assert!(f + 1e-9 >= last, "monotonicity violated");
                last = f;
            }
        }

        /// The histogram's range estimate is exact for the full domain and
        /// within one bucket's mass of the truth for arbitrary ranges.
        #[test]
        fn range_estimate_bounded_error(
            values in proptest::collection::vec(0i64..100, 20..300),
            lo in 0i64..100,
            width in 0i64..100,
        ) {
            let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
            let buckets = 10usize;
            let h = Histogram::build(&floats, buckets).unwrap();
            let hi = lo + width;
            let est = h.fraction_between(lo as f64, hi as f64) * floats.len() as f64;
            let truth = values.iter().filter(|&&v| v >= lo && v <= hi).count() as f64;
            // Interpolation error is bounded by ~2 bucket masses.
            let bucket_mass = floats.len() as f64 / buckets as f64;
            prop_assert!(
                (est - truth).abs() <= 2.0 * bucket_mass + 1.0,
                "est {} truth {} mass {}", est, truth, bucket_mass
            );
        }

        /// MCV frequencies are true relative frequencies.
        #[test]
        fn mcv_frequencies_exact(
            values in proptest::collection::vec(0i64..8, 10..200),
        ) {
            let col = Column::Int(values.clone());
            let stats = ColumnStats::build(&col, 4, 4);
            for mcv in &stats.mcvs {
                let count = values.iter().filter(|&&v| v as f64 == mcv.value).count();
                let expected = count as f64 / values.len() as f64;
                prop_assert!((mcv.frequency - expected).abs() < 1e-9);
            }
        }
    }
}

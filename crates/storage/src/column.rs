//! Typed, append-only columns.

use crate::error::StorageError;
use crate::schema::ColumnType;
use crate::value::Value;
use crate::Result;
use std::collections::HashMap;
use std::sync::Arc;

/// A dictionary for string columns: distinct values sorted lexicographically,
/// so code order equals lexicographic order and range/LIKE predicates can be
/// evaluated on codes.
#[derive(Debug, Clone, Default)]
pub struct StrDict {
    values: Vec<Arc<str>>,
}

impl StrDict {
    /// Builds a dictionary from any iterator of strings (deduplicated and
    /// sorted internally).
    pub fn from_values<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut v: Vec<Arc<str>> = values.into_iter().map(|s| Arc::from(s.as_ref())).collect();
        v.sort_unstable();
        v.dedup();
        Self { values: v }
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The string for a code.
    pub fn decode(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(|s| s.as_ref())
    }

    /// The code for a string (binary search).
    pub fn encode(&self, s: &str) -> Option<u32> {
        self.values
            .binary_search_by(|probe| probe.as_ref().cmp(s))
            .ok()
            .map(|i| i as u32)
    }

    /// Iterates `(code, value)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_ref()))
    }
}

/// A typed column of values.
///
/// Integer and float columns store raw values; string columns store `u32`
/// codes into a shared [`StrDict`].
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Dictionary-encoded strings.
    Str {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// The shared dictionary.
        dict: Arc<StrDict>,
    },
}

impl Column {
    /// Creates an empty column of the given type (string columns get an
    /// empty dictionary; use [`Column::str_from_strings`] for real data).
    pub fn empty(ctype: ColumnType) -> Self {
        match ctype {
            ColumnType::Int => Column::Int(Vec::new()),
            ColumnType::Float => Column::Float(Vec::new()),
            ColumnType::Str => Column::Str {
                codes: Vec::new(),
                dict: Arc::new(StrDict::default()),
            },
        }
    }

    /// Builds a string column directly from row values, constructing the
    /// dictionary in one pass.
    pub fn str_from_strings<S: AsRef<str>>(rows: &[S]) -> Self {
        let dict = Arc::new(StrDict::from_values(rows.iter().map(|s| s.as_ref())));
        let mut index: HashMap<&str, u32> = HashMap::with_capacity(dict.len());
        for (code, value) in dict.iter() {
            index.insert(value, code);
        }
        let codes = rows.iter().map(|s| index[s.as_ref()]).collect();
        // `index` borrows from `dict`'s Arc contents; drop before move is fine
        // because codes are plain integers.
        drop(index);
        Column::Str { codes, dict }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str { codes, .. } => codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical type of the column.
    pub fn ctype(&self) -> ColumnType {
        match self {
            Column::Int(_) => ColumnType::Int,
            Column::Float(_) => ColumnType::Float,
            Column::Str { .. } => ColumnType::Str,
        }
    }

    /// Reads one cell as a [`Value`]. Panics if `row` is out of bounds
    /// (callers iterate within `0..len()`).
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Float(v) => Value::Float(v[row]),
            Column::Str { codes, dict } => {
                let code = codes[row];
                // Codes are only ever produced by this column's own dictionary,
                // and `get` returns `Value` (not `Result`) by API contract.
                Value::Str(Arc::from(
                    dict.decode(code).expect("dictionary code in range"), // lint: allow(panic)
                ))
            }
        }
    }

    /// Integer slice view (for key columns and histogram building).
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Float slice view.
    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// String column view: `(codes, dict)`.
    pub fn as_str(&self) -> Option<(&[u32], &StrDict)> {
        match self {
            Column::Str { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Appends one value, checking its type.
    pub fn push(&mut self, value: &Value, column_name: &str) -> Result<()> {
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => {
                v.push(*x);
                Ok(())
            }
            (Column::Float(v), Value::Float(x)) => {
                v.push(*x);
                Ok(())
            }
            (Column::Str { codes, dict }, Value::Str(s)) => {
                // Appending to a dictionary-encoded column is only supported
                // when the value already exists in the dictionary: bulk
                // construction should use `str_from_strings`.
                match dict.encode(s.as_ref()) {
                    Some(code) => {
                        codes.push(code);
                        Ok(())
                    }
                    None => Err(StorageError::TypeMismatch {
                        column: column_name.to_string(),
                        expected: "str present in dictionary",
                        got: "str absent from dictionary",
                    }),
                }
            }
            (col, v) => Err(StorageError::TypeMismatch {
                column: column_name.to_string(),
                expected: col.ctype().name(),
                got: v.type_name(),
            }),
        }
    }

    /// A numeric view of row `row`: ints and floats map to their value,
    /// string columns map to their dictionary code (monotone in lexicographic
    /// order, which is what histograms need).
    pub fn numeric_at(&self, row: usize) -> f64 {
        match self {
            Column::Int(v) => v[row] as f64,
            Column::Float(v) => v[row],
            Column::Str { codes, .. } => codes[row] as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_orders_and_roundtrips() {
        let d = StrDict::from_values(["beta", "alpha", "beta", "gamma"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.decode(0), Some("alpha"));
        assert_eq!(d.encode("gamma"), Some(2));
        assert_eq!(d.encode("delta"), None);
    }

    #[test]
    fn str_column_from_strings() {
        let c = Column::str_from_strings(&["b", "a", "b"]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0).as_str(), Some("b"));
        assert_eq!(c.get(1).as_str(), Some("a"));
        let (codes, dict) = c.as_str().unwrap();
        assert_eq!(codes, &[1, 0, 1]);
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn push_type_checked() {
        let mut c = Column::empty(ColumnType::Int);
        c.push(&Value::Int(1), "x").unwrap();
        let err = c.push(&Value::Float(1.0), "x").unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn push_str_requires_dictionary_membership() {
        let mut c = Column::str_from_strings(&["a", "b"]);
        c.push(&Value::str("a"), "s").unwrap();
        assert!(c.push(&Value::str("zz"), "s").is_err());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn numeric_views() {
        let c = Column::Float(vec![1.5, 2.5]);
        assert_eq!(c.numeric_at(1), 2.5);
        let s = Column::str_from_strings(&["b", "a"]);
        assert_eq!(s.numeric_at(0), 1.0); // "b" has code 1
    }
}

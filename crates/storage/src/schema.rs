//! Table schemas, column definitions, and id types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a table within a [`crate::Database`] (index into its table
/// vector). Stable for the lifetime of the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub u32);

/// Identifier of a column within a table (index into its column vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ColumnId(pub u32);

impl TableId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ColumnId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer; all primary/foreign keys use this type.
    Int,
    /// 64-bit float.
    Float,
    /// Dictionary-encoded string.
    Str,
}

impl ColumnType {
    /// Human-readable type name.
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Str => "str",
        }
    }
}

/// Key role of a column in the join schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum KeyRole {
    /// A plain attribute column.
    #[default]
    None,
    /// The table's primary key (unique, dense `0..rows`).
    PrimaryKey,
    /// A foreign key referencing `table`'s primary key.
    ForeignKey {
        /// Referenced table.
        table: TableId,
    },
}

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name, unique within the table.
    pub name: String,
    /// Logical type.
    pub ctype: ColumnType,
    /// Whether this column is a primary or foreign key.
    pub key: KeyRole,
}

impl ColumnDef {
    /// A plain attribute column.
    pub fn attr(name: impl Into<String>, ctype: ColumnType) -> Self {
        Self {
            name: name.into(),
            ctype,
            key: KeyRole::None,
        }
    }

    /// A primary-key column (always `Int`).
    pub fn pk(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ctype: ColumnType::Int,
            key: KeyRole::PrimaryKey,
        }
    }

    /// A foreign-key column referencing `table` (always `Int`).
    pub fn fk(name: impl Into<String>, table: TableId) -> Self {
        Self {
            name: name.into(),
            ctype: ColumnType::Int,
            key: KeyRole::ForeignKey { table },
        }
    }
}

/// Schema of one table: an ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name, unique within the database.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Creates a schema from a name and column definitions.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        Self {
            name: name.into(),
            columns,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Finds a column id by name.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|i| ColumnId(i as u32))
    }

    /// The column definition for `id`, if in range.
    pub fn column(&self, id: ColumnId) -> Option<&ColumnDef> {
        self.columns.get(id.index())
    }

    /// Id of the primary-key column, if the table has one.
    pub fn primary_key(&self) -> Option<ColumnId> {
        self.columns
            .iter()
            .position(|c| c.key == KeyRole::PrimaryKey)
            .map(|i| ColumnId(i as u32))
    }

    /// Ids of all foreign-key columns together with their referenced tables.
    pub fn foreign_keys(&self) -> Vec<(ColumnId, TableId)> {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match c.key {
                KeyRole::ForeignKey { table } => Some((ColumnId(i as u32), table)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> TableSchema {
        TableSchema::new(
            "orders",
            vec![
                ColumnDef::pk("id"),
                ColumnDef::fk("customer_id", TableId(2)),
                ColumnDef::attr("amount", ColumnType::Float),
                ColumnDef::attr("status", ColumnType::Str),
            ],
        )
    }

    #[test]
    fn column_lookup_by_name() {
        let s = sample_schema();
        assert_eq!(s.column_id("amount"), Some(ColumnId(2)));
        assert_eq!(s.column_id("missing"), None);
    }

    #[test]
    fn key_roles() {
        let s = sample_schema();
        assert_eq!(s.primary_key(), Some(ColumnId(0)));
        assert_eq!(s.foreign_keys(), vec![(ColumnId(1), TableId(2))]);
    }

    #[test]
    fn arity_and_column_access() {
        let s = sample_schema();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.column(ColumnId(3)).unwrap().ctype, ColumnType::Str);
        assert!(s.column(ColumnId(9)).is_none());
    }

    #[test]
    fn display_ids() {
        assert_eq!(TableId(3).to_string(), "T3");
        assert_eq!(ColumnId(1).to_string(), "c1");
    }
}

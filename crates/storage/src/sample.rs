//! Deterministic reservoir sampling over table rows.
//!
//! The featurization module of MTMLF summarizes single-table distributions;
//! for large tables it trains on a sample, mirroring the paper's note that
//! single-table statistics are cheap to obtain (an `ANALYZE`-style pass).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a uniform sample of `k` distinct row indices from `0..n` using
/// reservoir sampling (Algorithm R). Deterministic in `seed`. If `k >= n`
/// all indices are returned in order.
pub fn reservoir_indices(n: usize, k: usize, seed: u64) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir: Vec<usize> = (0..k).collect();
    for i in k..n {
        let j = rng.gen_range(0..=i);
        if j < k {
            reservoir[j] = i;
        }
    }
    reservoir.sort_unstable();
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_population_returns_all() {
        assert_eq!(reservoir_indices(3, 10, 1), vec![0, 1, 2]);
        assert_eq!(reservoir_indices(3, 3, 1), vec![0, 1, 2]);
    }

    #[test]
    fn sample_size_and_range() {
        let s = reservoir_indices(1000, 50, 42);
        assert_eq!(s.len(), 50);
        assert!(s.iter().all(|&i| i < 1000));
        let mut dedup = s.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 50, "indices are distinct");
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(reservoir_indices(500, 20, 7), reservoir_indices(500, 20, 7));
        assert_ne!(reservoir_indices(500, 20, 7), reservoir_indices(500, 20, 8));
    }

    #[test]
    fn roughly_uniform() {
        // Each index should appear with probability k/n across seeds.
        let n = 100;
        let k = 10;
        let trials = 400;
        let mut counts = vec![0u32; n];
        for seed in 0..trials {
            for &i in &reservoir_indices(n, k, seed) {
                counts[i] += 1;
            }
        }
        let expected = trials as f64 * k as f64 / n as f64; // 40
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.8,
                "index {i} count {c} vs expected {expected}"
            );
        }
    }
}

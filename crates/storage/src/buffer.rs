//! A buffer-manager-style memory-bounded mode for columnar storage.
//!
//! The unit of buffering (a *frame*) is one column: the executor touches
//! whole columns at a time, so column granularity gives the replacement
//! policy exactly the working set the workload expresses. A [`BufferPool`]
//! owns a directory of per-column spill files and a fixed budget of frames;
//! [`Table::spill_to`](crate::Table::spill_to) moves a table's columns into
//! the pool, and the executor's reads transparently pin them back in via
//! [`crate::table::ColumnRef`].
//!
//! # Spill file format
//!
//! Each spilled column is one file `col_<id>.spill` in the pool directory,
//! wrapped in the same integrity envelope the model weight files use
//! (magic + payload length + FNV-1a 64 checksum), so a torn or bit-rotted
//! spill surfaces as [`StorageError::Corrupt`] instead of garbage data:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"MTMLFCL\x01"
//!      8     8  payload length, u64 LE
//!     16     8  FNV-1a 64 checksum of the payload, u64 LE
//!     24     n  payload (typed column encoding, see `encode_column`)
//! ```
//!
//! # Replacement
//!
//! [`LruReplacer`] holds the *evictable* frames (resident and unpinned) in
//! least-recently-unpinned order. Pinning removes a frame from the
//! replacer; unpinning the last pin re-inserts it at the MRU end. The two
//! invariants the property suite pins:
//!
//! 1. a pinned frame is never chosen as a victim, and
//! 2. resident frames never exceed the pool's frame budget.
//!
//! When every frame is pinned and a miss needs a free frame, [`BufferPool::pin`]
//! fails with [`StorageError::BufferExhausted`] rather than overcommitting.

use crate::column::{Column, StrDict};
use crate::error::StorageError;
use crate::Result;
use std::collections::HashMap;
use std::ops::Deref;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Magic + format version of a spill file envelope.
const SPILL_MAGIC: &[u8; 8] = b"MTMLFCL\x01";
/// Envelope bytes before the payload: magic + length + checksum.
const HEADER_LEN: usize = 24;

/// FNV-1a 64-bit over the payload (integrity, not authenticity).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Identifier of a spilled column within one [`BufferPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpillId(pub u64);

/// Serializes a column to its spill payload (no envelope).
///
/// Layout: one type tag byte, then the typed body:
/// - `0` Int: `u64` row count, rows as `i64` LE
/// - `1` Float: `u64` row count, rows as `f64::to_bits` LE (bit-exact)
/// - `2` Str: `u64` dictionary size, each entry as `u32` byte length +
///   UTF-8 bytes, then `u64` row count and rows as `u32` LE codes
pub fn encode_column(column: &Column) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + column.len() * 8);
    match column {
        Column::Int(v) => {
            out.push(0);
            out.extend_from_slice(&(v.len() as u64).to_le_bytes());
            for &x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Column::Float(v) => {
            out.push(1);
            out.extend_from_slice(&(v.len() as u64).to_le_bytes());
            for &x in v {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        Column::Str { codes, dict } => {
            out.push(2);
            out.extend_from_slice(&(dict.len() as u64).to_le_bytes());
            for (_, value) in dict.iter() {
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value.as_bytes());
            }
            out.extend_from_slice(&(codes.len() as u64).to_le_bytes());
            for &c in codes {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    out
}

/// Cursor over a spill payload with bounds-checked reads.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| StorageError::Corrupt("spill payload truncated".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    fn count(&mut self, elem_size: usize) -> Result<usize> {
        let n = self.u64()? as usize;
        // Reject counts the remaining bytes cannot possibly hold, before
        // allocating for them.
        if n.checked_mul(elem_size)
            .is_none_or(|total| total > self.bytes.len() - self.pos)
        {
            return Err(StorageError::Corrupt(
                "spill payload declares more rows than it carries".into(),
            ));
        }
        Ok(n)
    }
}

/// Deserializes a spill payload produced by [`encode_column`]. Bit-exact:
/// `decode_column(&encode_column(c))` reproduces every value bitwise.
pub fn decode_column(payload: &[u8]) -> Result<Column> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let column = match r.u8()? {
        0 => {
            let n = r.count(8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u64()? as i64);
            }
            Column::Int(v)
        }
        1 => {
            let n = r.count(8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(f64::from_bits(r.u64()?));
            }
            Column::Float(v)
        }
        2 => {
            let dict_len = r.count(4)?;
            let mut values = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                let len = r.u32()? as usize;
                let bytes = r.take(len)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| StorageError::Corrupt("non-UTF-8 dictionary entry".into()))?;
                values.push(s.to_string());
            }
            // `StrDict::from_values` re-sorts and dedups; the payload was
            // written in code order from an already-sorted dictionary, so
            // this is an identity pass that re-validates the invariant.
            let dict = Arc::new(StrDict::from_values(&values));
            if dict.len() != dict_len {
                return Err(StorageError::Corrupt(
                    "spill dictionary has duplicate or unsorted entries".into(),
                ));
            }
            let n = r.count(4)?;
            let mut codes = Vec::with_capacity(n);
            for _ in 0..n {
                let c = r.u32()?;
                if c as usize >= dict_len {
                    return Err(StorageError::Corrupt(
                        "spill code out of dictionary range".into(),
                    ));
                }
                codes.push(c);
            }
            Column::Str { codes, dict }
        }
        tag => {
            return Err(StorageError::Corrupt(format!(
                "unknown spill column tag {tag}"
            )))
        }
    };
    if r.pos != payload.len() {
        return Err(StorageError::Corrupt(
            "trailing bytes after spill payload".into(),
        ));
    }
    Ok(column)
}

/// Wraps a payload in the spill envelope.
fn envelope(payload: &[u8]) -> Vec<u8> {
    let mut file = Vec::with_capacity(HEADER_LEN + payload.len());
    file.extend_from_slice(SPILL_MAGIC);
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    file.extend_from_slice(payload);
    file
}

/// Validates a spill envelope and returns the payload slice.
fn validate_envelope(bytes: &[u8]) -> Result<&[u8]> {
    if bytes.len() < HEADER_LEN || &bytes[..8] != SPILL_MAGIC {
        return Err(StorageError::Corrupt(
            "not a spill file (bad or truncated magic header)".into(),
        ));
    }
    let declared = u64::from_le_bytes(bytes[8..16].try_into().unwrap_or([0; 8]));
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap_or([0; 8]));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != declared {
        return Err(StorageError::Corrupt(format!(
            "truncated spill file: header declares {declared} payload bytes, found {}",
            payload.len()
        )));
    }
    let actual = fnv1a64(payload);
    if actual != checksum {
        return Err(StorageError::Corrupt(format!(
            "spill payload checksum mismatch: header {checksum:#018x}, computed {actual:#018x}"
        )));
    }
    Ok(payload)
}

/// LRU victim selection over evictable (resident, unpinned) frames.
///
/// Deliberately standalone and allocation-light so its two invariants —
/// never evicting a pinned frame, never tracking more frames than told —
/// are directly property-testable without a pool or filesystem behind it.
#[derive(Debug, Default)]
pub struct LruReplacer {
    /// Evictable frames, least recently unpinned first.
    order: Vec<SpillId>,
}

impl LruReplacer {
    /// An empty replacer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `id` evictable at the MRU end (newly loaded-and-unpinned or
    /// last pin dropped). Re-inserting an already tracked frame refreshes
    /// its recency instead of duplicating it.
    pub fn unpin(&mut self, id: SpillId) {
        self.remove(id);
        self.order.push(id);
    }

    /// Removes `id` from the evictable set (it gained a pin or was
    /// evicted). A no-op when the frame is not tracked.
    pub fn remove(&mut self, id: SpillId) {
        self.order.retain(|&x| x != id);
    }

    /// Pops the least-recently-unpinned frame, or `None` when every
    /// resident frame is pinned.
    pub fn victim(&mut self) -> Option<SpillId> {
        if self.order.is_empty() {
            None
        } else {
            Some(self.order.remove(0))
        }
    }

    /// Number of evictable frames.
    pub fn evictable(&self) -> usize {
        self.order.len()
    }

    /// True when `id` is currently evictable.
    pub fn contains(&self, id: SpillId) -> bool {
        self.order.contains(&id)
    }
}

/// Configuration of a [`BufferPool`].
#[derive(Debug, Clone)]
pub struct BufferPoolConfig {
    /// Maximum columns resident in memory at once (≥ 1).
    pub frame_budget: usize,
    /// Directory holding the per-column spill files (created on demand).
    pub dir: PathBuf,
}

/// One resident column plus its pin count.
#[derive(Debug)]
struct Frame {
    col: Arc<Column>,
    pins: u32,
}

#[derive(Debug, Default)]
struct PoolInner {
    frames: HashMap<u64, Frame>,
    replacer: LruReplacer,
    next_id: u64,
}

/// A fixed-budget buffer pool of spilled columns. See the [module
/// docs](self) for the design.
#[derive(Debug)]
pub struct BufferPool {
    budget: usize,
    dir: PathBuf,
    inner: Mutex<PoolInner>,
    spilled_frames: AtomicU64,
    frame_loads: AtomicU64,
    evictions: AtomicU64,
}

impl BufferPool {
    /// Creates the pool, creating `config.dir` if needed.
    pub fn new(config: BufferPoolConfig) -> Result<Arc<Self>> {
        if config.frame_budget == 0 {
            return Err(StorageError::BufferExhausted { budget: 0 });
        }
        std::fs::create_dir_all(&config.dir)
            .map_err(|e| StorageError::Io(format!("create spill dir: {e}")))?;
        Ok(Arc::new(Self {
            budget: config.frame_budget,
            dir: config.dir,
            inner: Mutex::new(PoolInner::default()),
            spilled_frames: AtomicU64::new(0),
            frame_loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }))
    }

    /// The frame budget the pool enforces.
    pub fn frame_budget(&self) -> usize {
        self.budget
    }

    fn path_of(&self, id: SpillId) -> PathBuf {
        self.dir.join(format!("col_{}.spill", id.0))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Writes `column` to a checksummed spill file and returns its id. The
    /// column is *not* kept resident: spilling is the act of releasing its
    /// memory, and the first [`BufferPool::pin`] loads it back.
    pub fn spill(&self, column: &Column) -> Result<SpillId> {
        let id = {
            let mut inner = self.lock();
            let id = SpillId(inner.next_id);
            inner.next_id += 1;
            id
        };
        let file = envelope(&encode_column(column));
        std::fs::write(self.path_of(id), file)
            .map_err(|e| StorageError::Io(format!("write spill file: {e}")))?;
        self.spilled_frames.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Pins a spilled column into a frame, loading it from disk on a miss
    /// (evicting the LRU unpinned frame when the budget is full). The
    /// returned guard keeps the frame pinned until dropped.
    pub fn pin(self: &Arc<Self>, id: SpillId) -> Result<PinnedColumn> {
        {
            let mut inner = self.lock();
            if let Some(frame) = inner.frames.get_mut(&id.0) {
                frame.pins += 1;
                let col = Arc::clone(&frame.col);
                inner.replacer.remove(id);
                return Ok(PinnedColumn {
                    pool: Arc::clone(self),
                    id,
                    col,
                });
            }
            // Miss: free a frame first so the load never overcommits.
            if inner.frames.len() >= self.budget {
                let victim = inner
                    .replacer
                    .victim()
                    .ok_or(StorageError::BufferExhausted {
                        budget: self.budget,
                    })?;
                inner.frames.remove(&victim.0);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            // Reserve the slot with a placeholder pin while the file loads
            // outside the lock? Loads here are synchronous and the pool
            // lock is coarse by design (simplicity over concurrency for a
            // reproduction); hold the lock across the read instead, which
            // also makes double-loads impossible.
            let bytes = std::fs::read(self.path_of(id))
                .map_err(|e| StorageError::Io(format!("read spill file: {e}")))?;
            let col = Arc::new(decode_column(validate_envelope(&bytes)?)?);
            self.frame_loads.fetch_add(1, Ordering::Relaxed);
            inner.frames.insert(
                id.0,
                Frame {
                    col: Arc::clone(&col),
                    pins: 1,
                },
            );
            Ok(PinnedColumn {
                pool: Arc::clone(self),
                id,
                col,
            })
        }
    }

    /// Drops one pin on `id`; the frame becomes evictable when its pin
    /// count reaches zero. Called by [`PinnedColumn::drop`].
    fn unpin(&self, id: SpillId) {
        let mut inner = self.lock();
        if let Some(frame) = inner.frames.get_mut(&id.0) {
            frame.pins = frame.pins.saturating_sub(1);
            if frame.pins == 0 {
                inner.replacer.unpin(id);
            }
        }
    }

    /// Columns currently resident in frames.
    pub fn resident_frames(&self) -> usize {
        self.lock().frames.len()
    }

    /// Resident frames with at least one pin.
    pub fn pinned_frames(&self) -> usize {
        self.lock().frames.values().filter(|f| f.pins > 0).count()
    }

    /// Total columns ever spilled to this pool.
    pub fn spilled_frames(&self) -> u64 {
        self.spilled_frames.load(Ordering::Relaxed)
    }

    /// Total frame loads from disk (misses).
    pub fn frame_loads(&self) -> u64 {
        self.frame_loads.load(Ordering::Relaxed)
    }

    /// Total evictions performed to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// A pinned, resident column. Dereferences to [`Column`]; dropping it
/// releases the pin (the data stays valid for this guard regardless of
/// later evictions, via the shared `Arc`).
#[derive(Debug)]
pub struct PinnedColumn {
    pool: Arc<BufferPool>,
    id: SpillId,
    col: Arc<Column>,
}

impl PinnedColumn {
    /// The spill id this guard pins.
    pub fn id(&self) -> SpillId {
        self.id
    }
}

impl Deref for PinnedColumn {
    type Target = Column;

    fn deref(&self) -> &Column {
        &self.col
    }
}

impl Drop for PinnedColumn {
    fn drop(&mut self) {
        self.pool.unpin(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn test_pool(budget: usize, tag: &str) -> Arc<BufferPool> {
        let dir = std::env::temp_dir().join(format!(
            "mtmlf_buffer_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        BufferPool::new(BufferPoolConfig {
            frame_budget: budget,
            dir,
        })
        .unwrap()
    }

    fn sample_columns() -> Vec<Column> {
        vec![
            Column::Int((0..100).collect()),
            Column::Float((0..100).map(|i| i as f64 * 0.5 - 3.25).collect()),
            Column::str_from_strings(&["cherry", "apple", "banana", "apple", "fig"]),
            Column::Int(vec![]),
            Column::Float(vec![f64::NEG_INFINITY, -0.0, 0.0, f64::MAX]),
        ]
    }

    #[test]
    fn column_roundtrip_is_bitwise() {
        for col in sample_columns() {
            let decoded = decode_column(&encode_column(&col)).unwrap();
            assert_eq!(decoded.len(), col.len());
            assert_eq!(decoded.ctype(), col.ctype());
            for row in 0..col.len() {
                assert_eq!(
                    decoded.numeric_at(row).to_bits(),
                    col.numeric_at(row).to_bits(),
                    "row {row}"
                );
                assert_eq!(decoded.get(row), col.get(row), "row {row}");
            }
        }
    }

    #[test]
    fn spill_and_pin_roundtrip() {
        let pool = test_pool(2, "roundtrip");
        let cols = sample_columns();
        let ids: Vec<SpillId> = cols.iter().map(|c| pool.spill(c).unwrap()).collect();
        assert_eq!(pool.spilled_frames(), cols.len() as u64);
        assert_eq!(pool.resident_frames(), 0, "spill frees memory");
        for (id, col) in ids.iter().zip(&cols) {
            let pinned = pool.pin(*id).unwrap();
            assert_eq!(pinned.len(), col.len());
            for row in 0..col.len() {
                assert_eq!(pinned.get(row), col.get(row));
            }
        }
        assert!(pool.resident_frames() <= 2);
    }

    #[test]
    fn eviction_respects_budget_and_pins() {
        let pool = test_pool(2, "evict");
        let a = pool.spill(&Column::Int(vec![1])).unwrap();
        let b = pool.spill(&Column::Int(vec![2])).unwrap();
        let c = pool.spill(&Column::Int(vec![3])).unwrap();
        let pa = pool.pin(a).unwrap();
        let pb = pool.pin(b).unwrap();
        // Budget full, everything pinned: a third pin must fail cleanly.
        let err = pool.pin(c).unwrap_err();
        assert!(matches!(err, StorageError::BufferExhausted { budget: 2 }));
        // Release one pin; now c can evict it.
        drop(pa);
        let pc = pool.pin(c).unwrap();
        assert_eq!(pool.resident_frames(), 2);
        assert_eq!(pc.as_int(), Some(&[3i64][..]));
        assert_eq!(pb.as_int(), Some(&[2i64][..]));
        assert_eq!(pool.evictions(), 1);
    }

    #[test]
    fn guard_outlives_eviction() {
        let pool = test_pool(1, "outlive");
        let a = pool.spill(&Column::Int(vec![7, 8])).unwrap();
        let b = pool.spill(&Column::Int(vec![9])).unwrap();
        let pa = pool.pin(a).unwrap();
        let data = pa.as_int().unwrap();
        drop(pool.pin(b).unwrap_err()); // budget 1, a pinned: must fail
        assert_eq!(data, &[7, 8]);
        drop(pa);
        // Now b can displace a.
        let pb = pool.pin(b).unwrap();
        assert_eq!(pb.as_int(), Some(&[9i64][..]));
    }

    #[test]
    fn corrupt_spill_files_are_rejected() {
        let pool = test_pool(2, "corrupt");
        let col = Column::str_from_strings(&["x", "y", "z"]);
        let id = pool.spill(&col).unwrap();
        let path = pool.path_of(id);
        let mut bytes = std::fs::read(&path).unwrap();

        // Bit flip in the payload: checksum mismatch.
        bytes[HEADER_LEN + 2] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = pool.pin(id).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(ref m) if m.contains("checksum")), "{err}");

        // Truncation: length mismatch.
        bytes[HEADER_LEN + 2] ^= 0x10; // restore
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let err = pool.pin(id).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(ref m) if m.contains("truncated")), "{err}");

        // Foreign file: bad magic.
        std::fs::write(&path, b"not a spill file at all........").unwrap();
        let err = pool.pin(id).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(ref m) if m.contains("magic")), "{err}");

        // Restore and the pin works again: corruption never poisons state.
        std::fs::write(&path, &bytes).unwrap();
        let pinned = pool.pin(id).unwrap();
        assert_eq!(pinned.get(0), col.get(0));
    }

    #[test]
    fn zero_budget_rejected() {
        let err = BufferPool::new(BufferPoolConfig {
            frame_budget: 0,
            dir: std::env::temp_dir().join("mtmlf_buffer_zero"),
        })
        .unwrap_err();
        assert!(matches!(err, StorageError::BufferExhausted { budget: 0 }));
    }

    #[test]
    fn replacer_lru_order() {
        let mut r = LruReplacer::new();
        r.unpin(SpillId(1));
        r.unpin(SpillId(2));
        r.unpin(SpillId(3));
        r.unpin(SpillId(1)); // refresh: 1 becomes MRU
        assert_eq!(r.victim(), Some(SpillId(2)));
        assert_eq!(r.victim(), Some(SpillId(3)));
        assert_eq!(r.victim(), Some(SpillId(1)));
        assert_eq!(r.victim(), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Replacer invariants: a removed (pinned) frame is never chosen as
        /// a victim, victims come out in least-recently-unpinned order, and
        /// the evictable count tracks the reference model exactly.
        #[test]
        fn replacer_never_yields_a_pinned_frame(
            ops in proptest::collection::vec((0u8..3, 0u64..8), 1..120)
        ) {
            let mut replacer = LruReplacer::new();
            // Reference model: evictable ids, LRU first.
            let mut model: Vec<u64> = Vec::new();
            let mut pinned: Vec<u64> = Vec::new();
            for (op, id) in ops {
                match op {
                    0 => { // unpin: becomes evictable at MRU
                        replacer.unpin(SpillId(id));
                        model.retain(|&x| x != id);
                        model.push(id);
                        pinned.retain(|&x| x != id);
                    }
                    1 => { // pin: leaves the evictable set
                        replacer.remove(SpillId(id));
                        model.retain(|&x| x != id);
                        if !pinned.contains(&id) { pinned.push(id); }
                    }
                    _ => { // victim
                        let got = replacer.victim();
                        let want = if model.is_empty() { None } else { Some(model.remove(0)) };
                        prop_assert_eq!(got.map(|s| s.0), want);
                        if let Some(v) = got {
                            prop_assert!(!pinned.contains(&v.0), "victim {} was pinned", v.0);
                        }
                    }
                }
                prop_assert_eq!(replacer.evictable(), model.len());
            }
        }

        /// Pool invariants under arbitrary pin/unpin schedules: resident
        /// frames never exceed the budget, pinned data is always readable
        /// and correct, and a pin only fails when every frame is pinned.
        #[test]
        fn pool_never_exceeds_budget(
            budget in 1usize..4,
            ops in proptest::collection::vec((0u8..2, 0usize..6), 1..60)
        ) {
            let pool = test_pool(budget, "prop");
            let cols: Vec<Column> = (0..6).map(|i| Column::Int((0..=i as i64).collect())).collect();
            let ids: Vec<SpillId> = cols.iter().map(|c| pool.spill(c).unwrap()).collect();
            let mut guards: Vec<Option<PinnedColumn>> = (0..6).map(|_| None).collect();
            for (op, slot) in ops {
                match op {
                    0 => {
                        match pool.pin(ids[slot]) {
                            Ok(g) => {
                                prop_assert_eq!(g.as_int(), cols[slot].as_int());
                                guards[slot] = Some(g);
                            }
                            Err(StorageError::BufferExhausted { .. }) => {
                                let held = guards.iter().flatten()
                                    .map(|g| g.id()).collect::<std::collections::HashSet<_>>();
                                prop_assert!(held.len() >= budget,
                                    "exhausted with only {} distinct pins under budget {budget}", held.len());
                            }
                            Err(e) => prop_assert!(false, "unexpected error: {e}"),
                        }
                    }
                    _ => { guards[slot] = None; }
                }
                prop_assert!(pool.resident_frames() <= budget,
                    "resident {} exceeds budget {budget}", pool.resident_frames());
                prop_assert!(pool.pinned_frames() <= pool.resident_frames());
            }
        }
    }
}

//! Differential kernel-equivalence suite (the test layer the blocked and
//! parallel kernels are contractually pinned by — see `kernel`'s module
//! docs and DESIGN.md §11).
//!
//! Every tuned configuration must agree with the always-compiled naive
//! reference kernels:
//!
//! - **Tolerantly** (≤ [`ULP_TOLERANCE`] ULPs per element) for *any* valid
//!   `KernelConfig` — the contractual bound future kernel work may use.
//! - **Exactly** (`to_bits` equal) for single-threaded configurations,
//!   whose fixed per-element accumulation order is part of the contract.
//! - In practice the current kernels preserve the reference accumulation
//!   order on every path, so these tests assert *bitwise* equality for the
//!   parallel configurations too; if a future kernel trades that away it
//!   must loosen the parallel assertions here to the ULP bound — and must
//!   then also revisit the batched-planning and plan-cache guarantees in
//!   `crates/core` that lean on bitwise reproducibility.
//!
//! The CI `kernel-diff` job runs this binary across a thread/block matrix
//! via `MTMLF_KERNEL_THREADS` / `MTMLF_KERNEL_BLOCK` (see
//! `differential_suite_at_env_selected_config`).

use mtmlf_nn::kernel::{self, KernelConfig, ULP_TOLERANCE};
use mtmlf_nn::{no_grad, Matrix, Module, MultiHeadAttention, TransformerEncoder, Var};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The tuned configurations the suite sweeps: both block extremes, with
/// and without the thread pool. `KernelConfig::reference()` is the oracle,
/// never a sweep point.
const SWEEP: [KernelConfig; 4] = [
    KernelConfig {
        threads: 1,
        block_size: 8,
    },
    KernelConfig {
        threads: 1,
        block_size: 64,
    },
    KernelConfig {
        threads: 4,
        block_size: 8,
    },
    KernelConfig {
        threads: 4,
        block_size: 64,
    },
];

/// Seeded test matrix with exact zeros sprinkled in, so the zero-skip
/// branch of the row-major kernels is exercised alongside dense data.
fn seeded(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::xavier(rows, cols, rng).map(|v| if v.abs() < 0.02 { 0.0 } else { v })
}

fn max_ulp(a: &Matrix, b: &Matrix) -> u32 {
    assert_eq!(a.shape(), b.shape());
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| kernel::ulp_distance(x, y))
        .max()
        .unwrap_or(0)
}

fn assert_equivalent(tuned: &Matrix, reference: &Matrix, cfg: KernelConfig, what: &str) {
    let ulp = max_ulp(tuned, reference);
    assert!(
        ulp <= ULP_TOLERANCE,
        "{what} drifted {ulp} ULPs under {cfg:?} (tolerance {ULP_TOLERANCE})"
    );
    // The current kernels preserve the reference accumulation order on
    // every path, so equality is exact — see the module docs above before
    // weakening this for threads > 1.
    let bitwise = tuned
        .data()
        .iter()
        .zip(reference.data())
        .all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(bitwise, "{what} is ULP-close but not bitwise under {cfg:?}");
}

/// Runs the full differential check for one configuration over one shape.
fn check_shapes(cfg: KernelConfig, m: usize, k: usize, n: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = seeded(m, k, &mut rng);
    let b = seeded(k, n, &mut rng);
    let bt = seeded(n, k, &mut rng);

    let ref_mm = a.matmul_reference(&b);
    let ref_nt = a.matmul_nt_reference(&bt);
    let (mm, nt) = kernel::scoped(cfg, || (a.matmul(&b), a.matmul_nt(&bt)));
    assert_equivalent(&mm, &ref_mm, cfg, "matmul");
    assert_equivalent(&nt, &ref_nt, cfg, "matmul_nt");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary shapes and seeds: every sweep configuration matches the
    /// naive reference within the ULP tolerance, and single-threaded
    /// configurations (fixed accumulation order) match it exactly.
    #[test]
    fn tuned_kernels_match_reference(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..10_000,
    ) {
        for cfg in SWEEP {
            check_shapes(cfg, m, k, n, seed);
        }
    }

    /// The fused attention score+softmax kernel is bitwise stable across
    /// configurations, masked and unmasked.
    #[test]
    fn fused_attention_matches_reference_config(
        rows in 1usize..24,
        dim in 1usize..48,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = seeded(rows, dim, &mut rng);
        let keys = seeded(rows, dim, &mut rng);
        let scale = 1.0 / (dim as f32).sqrt();
        let mut mask = Matrix::zeros(rows, rows);
        for r in 0..rows {
            for c in (r + 1)..rows {
                mask.set(r, c, -1e9);
            }
        }
        for masked in [None, Some(&mask)] {
            let reference = q.attention_scores(&keys, scale, masked);
            for cfg in SWEEP {
                let tuned = kernel::scoped(cfg, || q.attention_scores(&keys, scale, masked));
                assert_equivalent(&tuned, &reference, cfg, "attention_scores");
            }
        }
    }
}

/// Shapes big enough to cross the parallel-dispatch threshold: the
/// thread-pool split over output rows must reassemble to exactly the
/// single-threaded result.
#[test]
fn parallel_split_is_bitwise_equal_to_single_thread() {
    let mut rng = StdRng::seed_from_u64(77);
    let a = seeded(128, 96, &mut rng);
    let b = seeded(96, 96, &mut rng);
    let bt = seeded(96, 96, &mut rng);
    let single = KernelConfig::single_threaded(64);
    let (s_mm, s_nt) = kernel::scoped(single, || (a.matmul(&b), a.matmul_nt(&bt)));
    for threads in [2, 4, 8] {
        let cfg = KernelConfig {
            threads,
            block_size: 64,
        };
        let (p_mm, p_nt) = kernel::scoped(cfg, || (a.matmul(&b), a.matmul_nt(&bt)));
        assert_eq!(
            s_mm.data(),
            p_mm.data(),
            "matmul split drifted at {threads} threads"
        );
        assert_eq!(
            s_nt.data(),
            p_nt.data(),
            "matmul_nt split drifted at {threads} threads"
        );
    }
    // And both agree with the naive oracle.
    assert_eq!(s_mm.data(), a.matmul_reference(&b).data());
    assert_eq!(s_nt.data(), a.matmul_nt_reference(&bt).data());
}

/// A full transformer forward — projections, fused attention, feed-forward,
/// layer norms — is bitwise reproducible across every sweep configuration.
#[test]
fn transformer_forward_is_bitwise_stable_across_configs() {
    let mut rng = StdRng::seed_from_u64(5);
    let enc = TransformerEncoder::new(64, 4, 2, &mut rng);
    assert!(enc.parameter_count() > 0);
    let x = Var::constant(seeded(9, 64, &mut rng));
    let reference = no_grad(|| enc.forward(&x).to_matrix());
    for cfg in SWEEP {
        let tuned = kernel::scoped(cfg, || no_grad(|| enc.forward(&x).to_matrix()));
        assert_eq!(
            reference.data(),
            tuned.data(),
            "transformer forward drifted under {cfg:?}"
        );
    }
}

/// Attention with a block-diagonal mask (the batched-planning packing) is
/// bitwise stable under tuned kernels — the property the `crates/core`
/// batch-equals-sequential guarantee rests on.
#[test]
fn masked_attention_module_is_bitwise_stable() {
    let mut rng = StdRng::seed_from_u64(21);
    let attn = MultiHeadAttention::new(64, 4, &mut rng);
    let x = Var::constant(seeded(12, 64, &mut rng));
    let mask = MultiHeadAttention::block_diagonal_mask(&[5, 4, 3]);
    let reference = no_grad(|| attn.forward(&x, &x, Some(&mask)).to_matrix());
    for cfg in SWEEP {
        let tuned = kernel::scoped(cfg, || {
            no_grad(|| attn.forward(&x, &x, Some(&mask)).to_matrix())
        });
        assert_eq!(
            reference.data(),
            tuned.data(),
            "masked attention drifted under {cfg:?}"
        );
    }
}

/// The CI matrix entry point: runs the deterministic differential shapes
/// under the configuration named by `MTMLF_KERNEL_THREADS` /
/// `MTMLF_KERNEL_BLOCK` (defaulting to the reference config when unset,
/// which makes the check a self-comparison that must trivially hold).
#[test]
fn differential_suite_at_env_selected_config() {
    let parse = |name: &str, default: usize| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(default)
    };
    let cfg = KernelConfig {
        threads: parse("MTMLF_KERNEL_THREADS", 1),
        block_size: parse("MTMLF_KERNEL_BLOCK", 0),
    };
    cfg.validate()
        .unwrap_or_else(|why| panic!("CI passed an invalid kernel config {cfg:?}: {why}"));
    // Shapes chosen to land on every dispatch path: tiny (naive), medium
    // (blocked), large (parallel when threads > 1), plus degenerate edges.
    let shapes: [(usize, usize, usize); 7] = [
        (1, 1, 1),
        (3, 7, 5),
        (17, 33, 9),
        (32, 32, 32),
        (40, 64, 24),
        (64, 64, 64),
        (128, 96, 96),
    ];
    for (i, (m, k, n)) in shapes.into_iter().enumerate() {
        check_shapes(cfg, m, k, n, 1000 + i as u64);
    }
}

//! Pins the op-profiling counters: exact matmul FLOP and allocation
//! deltas, zero cost (no counting) without a live guard, nested guard
//! windows, and attention/block attribution through the real transformer
//! stack.
//!
//! The counters are process-global, so every test that asserts an exact
//! delta serializes behind one lock — parallel test threads would
//! otherwise bleed counts into each other's windows.

use mtmlf_nn::{
    Matrix, Module, MultiHeadAttention, OpStats, ProfileGuard, TransformerEncoder, Var,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn matmul_flops_and_allocations_are_exact() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let a = Matrix::full(3, 5, 1.0);
    let b = Matrix::full(5, 7, 1.0);
    let guard = ProfileGuard::begin();
    let _ = a.matmul(&b);
    let stats = guard.stats();
    assert_eq!(stats.matmul_calls, 1);
    assert_eq!(stats.matmul_flops, 2 * 3 * 7 * 5);
    // The output buffer is the only allocation inside matmul.
    assert_eq!(stats.allocations, 1);
    assert_eq!(stats.allocated_floats, 3 * 7);
}

#[test]
fn transposed_variants_count_their_flops() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let a = Matrix::full(4, 6, 1.0);
    let b = Matrix::full(3, 6, 1.0);
    let c = Matrix::full(6, 4, 1.0);
    let d = Matrix::full(6, 3, 1.0);
    let guard = ProfileGuard::begin();
    let _ = a.matmul_nt(&b); // (4,6) × (3,6)ᵀ → 4×3
    let nt = guard.stats();
    assert_eq!(nt.matmul_flops, 2 * 4 * 3 * 6);
    let _ = c.matmul_tn(&d); // (6,4)ᵀ × (6,3) → 4×3
    let both = guard.stats();
    assert_eq!(both.matmul_calls, 2);
    assert_eq!(both.matmul_flops, nt.matmul_flops + 2 * 4 * 3 * 6);
}

#[test]
fn no_live_guard_means_no_counting() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Work done with no guard alive must be invisible to a later guard.
    let a = Matrix::full(8, 8, 1.0);
    let _ = a.matmul(&a);
    let guard = ProfileGuard::begin();
    assert_eq!(guard.stats(), OpStats::default());
}

#[test]
fn guards_nest_and_report_their_own_window() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let a = Matrix::full(2, 2, 1.0);
    let outer = ProfileGuard::begin();
    let _ = a.matmul(&a);
    {
        let inner = ProfileGuard::begin();
        let _ = a.matmul(&a);
        assert_eq!(inner.stats().matmul_calls, 1);
    }
    // The inner guard dropping must not disable the still-live outer scope.
    let _ = a.matmul(&a);
    assert_eq!(outer.stats().matmul_calls, 3);
}

#[test]
fn encoder_forward_attributes_attention_and_blocks() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = StdRng::seed_from_u64(11);
    let depth = 3;
    let enc = TransformerEncoder::new(8, 2, depth, &mut rng);
    assert!(enc.parameter_count() > 0);
    let x = Var::constant(Matrix::full(4, 8, 0.1));
    let guard = ProfileGuard::begin();
    let _ = enc.forward(&x);
    let stats = guard.stats();
    assert_eq!(stats.block_forwards, depth as u64);
    assert_eq!(
        stats.attention_calls, depth as u64,
        "one attention per block"
    );
    assert!(stats.matmul_calls > 0, "attention projections run matmuls");
    assert!(stats.matmul_flops > 0);

    // A lone attention forward counts exactly one attention, zero blocks.
    let attn = MultiHeadAttention::new(8, 2, &mut rng);
    let attn_guard = ProfileGuard::begin();
    let _ = attn.forward(&x, &x, None);
    let attn_stats = attn_guard.stats();
    assert_eq!(attn_stats.attention_calls, 1);
    assert_eq!(attn_stats.block_forwards, 0);
}

#[test]
fn steady_state_forward_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Fresh arena so the reuse counts below are deterministic.
    mtmlf_nn::kernel::arena_clear();
    let mut rng = StdRng::seed_from_u64(7);
    let enc = TransformerEncoder::new(32, 2, 2, &mut rng);
    let x = Var::constant(Matrix::full(6, 32, 0.1));
    mtmlf_nn::no_grad(|| {
        // Warm-up forwards seed the per-thread arena with every
        // intermediate buffer size the pass needs; after that, a
        // steady-state inference forward must be allocation-free.
        for _ in 0..2 {
            let _ = enc.forward(&x);
        }
        let guard = ProfileGuard::begin();
        let _ = enc.forward(&x);
        let stats = guard.stats();
        // CI greps this line out of the test log (run with --nocapture).
        println!(
            "opstats: steady-state forward allocations={} allocated_floats={} arena_reuses={}",
            stats.allocations, stats.allocated_floats, stats.arena_reuses
        );
        assert_eq!(
            stats.allocations, 0,
            "steady-state forward must run entirely off the arena"
        );
        assert_eq!(stats.allocated_floats, 0);
        assert!(stats.arena_reuses > 0, "the arena was never consulted");
    });
}

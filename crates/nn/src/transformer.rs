//! Transformer encoder and decoder stacks (pre-norm variant).
//!
//! The paper uses "a transformer with 3 blocks and 4 headers" for each
//! `Enc_i`, `Trans_Share`, and `Trans_JO` (Section 6.1 hyper-parameters);
//! these stacks are configurable in depth, width, and head count.

use crate::attention::MultiHeadAttention;
use crate::autograd::Var;
use crate::layers::{FeedForward, LayerNorm, Module};
use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// One pre-norm encoder block: self-attention and feed-forward, each with a
/// residual connection.
#[derive(Clone)]
pub struct EncoderBlock {
    attention: MultiHeadAttention,
    feed_forward: FeedForward,
    norm1: LayerNorm,
    norm2: LayerNorm,
}

impl EncoderBlock {
    /// Builds one block.
    pub fn new(d_model: usize, heads: usize, rng: &mut StdRng) -> Self {
        Self {
            attention: MultiHeadAttention::new(d_model, heads, rng),
            feed_forward: FeedForward::new(d_model, d_model * 4, rng),
            norm1: LayerNorm::new(d_model),
            norm2: LayerNorm::new(d_model),
        }
    }

    /// Forward pass over a `(seq, d_model)` sequence.
    pub fn forward(&self, x: &Var) -> Var {
        self.forward_masked(x, None)
    }

    /// Forward pass with an optional `(seq, seq)` additive attention mask
    /// (e.g. a block-diagonal mask when several sequences are packed into
    /// one input).
    pub fn forward_masked(&self, x: &Var, mask: Option<&Matrix>) -> Var {
        crate::profile::record_block_forward();
        let attended = self
            .attention
            .forward(&self.norm1.forward(x), &self.norm1.forward(x), mask);
        let x = x.add(&attended);
        let fed = self.feed_forward.forward(&self.norm2.forward(&x));
        x.add(&fed)
    }

    /// Packed inference forward: each sequence in the row-wise packing
    /// attends only within itself, via segment-local attention instead of
    /// a block-diagonal mask. Bitwise-equal to [`Self::forward`] per
    /// sequence; see [`MultiHeadAttention::forward_segmented`].
    pub fn forward_segmented(&self, x: &Var, lens: &[usize], identity: &[usize]) -> Var {
        crate::profile::record_block_forward();
        let normed = self.norm1.forward(x);
        let attended = self
            .attention
            .forward_segmented(&normed, &normed, lens, lens, identity, false);
        let x = x.add(&attended);
        let fed = self.feed_forward.forward(&self.norm2.forward(&x));
        x.add(&fed)
    }
}

impl Module for EncoderBlock {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.attention.parameters();
        p.extend(self.feed_forward.parameters());
        p.extend(self.norm1.parameters());
        p.extend(self.norm2.parameters());
        p
    }
}

/// A stack of encoder blocks with a final layer norm.
#[derive(Clone)]
pub struct TransformerEncoder {
    blocks: Vec<EncoderBlock>,
    final_norm: LayerNorm,
}

impl TransformerEncoder {
    /// Builds `depth` blocks of width `d_model` with `heads` heads.
    pub fn new(d_model: usize, heads: usize, depth: usize, rng: &mut StdRng) -> Self {
        Self {
            blocks: (0..depth)
                .map(|_| EncoderBlock::new(d_model, heads, rng))
                .collect(),
            final_norm: LayerNorm::new(d_model),
        }
    }

    /// Forward pass over a `(seq, d_model)` sequence.
    pub fn forward(&self, x: &Var) -> Var {
        self.forward_masked(x, None)
    }

    /// Forward pass with an optional additive attention mask applied in
    /// every block.
    pub fn forward_masked(&self, x: &Var, mask: Option<&Matrix>) -> Var {
        let mut h = x.clone();
        for block in &self.blocks {
            h = block.forward_masked(&h, mask);
        }
        self.final_norm.forward(&h)
    }

    /// Forward pass over several sequences packed row-wise into one
    /// `(Σlen, d_model)` input. A block-diagonal mask keeps attention
    /// within each sequence, so the output rows equal what per-sequence
    /// [`TransformerEncoder::forward`] calls would produce, while every
    /// linear layer runs as a single batched matmul.
    pub fn forward_packed(&self, x: &Var, lens: &[usize]) -> Var {
        if lens.len() <= 1 {
            return self.forward(x);
        }
        if !crate::autograd::grad_enabled() {
            // Inference: segment-local attention — linear in the number of
            // packed sequences where the masked path is quadratic in total
            // rows. Bitwise-equal per sequence.
            let identity: Vec<usize> = (0..lens.len()).collect();
            let mut h = x.clone();
            for block in &self.blocks {
                h = block.forward_segmented(&h, lens, &identity);
            }
            return self.final_norm.forward(&h);
        }
        let mask = MultiHeadAttention::block_diagonal_mask(lens);
        self.forward_masked(x, Some(&mask))
    }

    /// Batched forward: packs `xs` into one matrix, runs one packed
    /// forward, and splits the result back into per-sequence outputs.
    pub fn forward_batch(&self, xs: &[Var]) -> Vec<Var> {
        match xs {
            [] => Vec::new(),
            [x] => vec![self.forward(x)],
            _ => {
                let lens: Vec<usize> = xs.iter().map(|x| x.shape().0).collect();
                let packed = Var::concat_rows(xs);
                self.forward_packed(&packed, &lens).split_rows(&lens)
            }
        }
    }
}

impl Module for TransformerEncoder {
    fn parameters(&self) -> Vec<Var> {
        let mut p: Vec<Var> = self
            .blocks
            .iter()
            .flat_map(EncoderBlock::parameters)
            .collect();
        p.extend(self.final_norm.parameters());
        p
    }
}

/// One pre-norm decoder block: causal self-attention, cross-attention over
/// the encoder output, and feed-forward, each with a residual connection.
#[derive(Clone)]
pub struct DecoderBlock {
    self_attention: MultiHeadAttention,
    cross_attention: MultiHeadAttention,
    feed_forward: FeedForward,
    norm1: LayerNorm,
    norm2: LayerNorm,
    norm3: LayerNorm,
}

impl DecoderBlock {
    /// Builds one block.
    pub fn new(d_model: usize, heads: usize, rng: &mut StdRng) -> Self {
        Self {
            self_attention: MultiHeadAttention::new(d_model, heads, rng),
            cross_attention: MultiHeadAttention::new(d_model, heads, rng),
            feed_forward: FeedForward::new(d_model, d_model * 4, rng),
            norm1: LayerNorm::new(d_model),
            norm2: LayerNorm::new(d_model),
            norm3: LayerNorm::new(d_model),
        }
    }

    /// Forward pass: `x` is the `(t, d_model)` decoded prefix, `memory` the
    /// `(s, d_model)` encoder output, `causal` the `(t, t)` causal mask.
    pub fn forward(&self, x: &Var, memory: &Var, causal: &Matrix) -> Var {
        self.forward_masked(x, memory, causal, None)
    }

    /// Forward pass with explicit masks on both attention stages:
    /// `self_mask` is the `(t, t)` additive mask for self-attention
    /// (causal, or block-causal when several prefixes are packed), and
    /// `cross_mask` an optional `(t, s)` additive mask restricting each
    /// packed segment to its own memory block.
    pub fn forward_masked(
        &self,
        x: &Var,
        memory: &Var,
        self_mask: &Matrix,
        cross_mask: Option<&Matrix>,
    ) -> Var {
        crate::profile::record_block_forward();
        let q = self.norm1.forward(x);
        let self_attended = self.self_attention.forward(&q, &q, Some(self_mask));
        let x = x.add(&self_attended);
        let cross = self
            .cross_attention
            .forward(&self.norm2.forward(&x), memory, cross_mask);
        let x = x.add(&cross);
        let fed = self.feed_forward.forward(&self.norm3.forward(&x));
        x.add(&fed)
    }

    /// Packed inference forward: causal segment-local self-attention over
    /// each prefix, segment-local cross-attention from each prefix to its
    /// own memory block. Bitwise-equal to per-prefix [`Self::forward`];
    /// see [`MultiHeadAttention::forward_segmented`].
    pub fn forward_segmented(
        &self,
        x: &Var,
        memory: &Var,
        x_lens: &[usize],
        identity: &[usize],
        mem_lens: &[usize],
        mem_of: &[usize],
    ) -> Var {
        crate::profile::record_block_forward();
        let q = self.norm1.forward(x);
        let self_attended = self
            .self_attention
            .forward_segmented(&q, &q, x_lens, x_lens, identity, true);
        let x = x.add(&self_attended);
        let cross = self.cross_attention.forward_segmented(
            &self.norm2.forward(&x),
            memory,
            x_lens,
            mem_lens,
            mem_of,
            false,
        );
        let x = x.add(&cross);
        let fed = self.feed_forward.forward(&self.norm3.forward(&x));
        x.add(&fed)
    }
}

impl Module for DecoderBlock {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.self_attention.parameters();
        p.extend(self.cross_attention.parameters());
        p.extend(self.feed_forward.parameters());
        p.extend(self.norm1.parameters());
        p.extend(self.norm2.parameters());
        p.extend(self.norm3.parameters());
        p
    }
}

/// A stack of decoder blocks with a final layer norm.
#[derive(Clone)]
pub struct TransformerDecoder {
    blocks: Vec<DecoderBlock>,
    final_norm: LayerNorm,
}

impl TransformerDecoder {
    /// Builds `depth` blocks of width `d_model` with `heads` heads.
    pub fn new(d_model: usize, heads: usize, depth: usize, rng: &mut StdRng) -> Self {
        Self {
            blocks: (0..depth)
                .map(|_| DecoderBlock::new(d_model, heads, rng))
                .collect(),
            final_norm: LayerNorm::new(d_model),
        }
    }

    /// Forward pass with an auto-generated causal mask.
    pub fn forward(&self, x: &Var, memory: &Var) -> Var {
        let (t, _) = x.shape();
        let causal = MultiHeadAttention::causal_mask(t);
        let mut h = x.clone();
        for block in &self.blocks {
            h = block.forward(&h, memory, &causal);
        }
        self.final_norm.forward(&h)
    }

    /// Forward pass over several decoded prefixes packed row-wise into one
    /// `(Σx_lens, d_model)` input. Self-attention is block-causal within
    /// each prefix; cross-attention restricts each prefix to its own memory
    /// block (`mem_of[i]` indexes into `mem_lens`, whose blocks are packed
    /// row-wise into `memory`). Output rows equal what per-prefix
    /// [`TransformerDecoder::forward`] calls against the prefix's own
    /// memory block would produce, bitwise, while every linear layer runs
    /// as a single batched matmul.
    pub fn forward_packed(
        &self,
        x: &Var,
        memory: &Var,
        x_lens: &[usize],
        mem_lens: &[usize],
        mem_of: &[usize],
    ) -> Var {
        if x_lens.len() <= 1 {
            return self.forward(x, memory);
        }
        if !crate::autograd::grad_enabled() {
            // Inference: segment-local attention on both stages — linear
            // in the number of packed prefixes where the masked path is
            // quadratic in total rows. Bitwise-equal per prefix.
            let identity: Vec<usize> = (0..x_lens.len()).collect();
            let mut h = x.clone();
            for block in &self.blocks {
                h = block.forward_segmented(&h, memory, x_lens, &identity, mem_lens, mem_of);
            }
            return self.final_norm.forward(&h);
        }
        let self_mask = MultiHeadAttention::block_causal_mask(x_lens);
        // A single shared memory block needs no cross mask: every segment
        // attends over all of it, exactly as the sequential path does.
        let cross_mask = if mem_lens.len() <= 1 {
            None
        } else {
            Some(MultiHeadAttention::cross_block_mask(
                x_lens, mem_lens, mem_of,
            ))
        };
        let mut h = x.clone();
        for block in &self.blocks {
            h = block.forward_masked(&h, memory, &self_mask, cross_mask.as_ref());
        }
        self.final_norm.forward(&h)
    }
}

impl Module for TransformerDecoder {
    fn parameters(&self) -> Vec<Var> {
        let mut p: Vec<Var> = self
            .blocks
            .iter()
            .flat_map(DecoderBlock::parameters)
            .collect();
        p.extend(self.final_norm.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::SeedableRng;

    #[test]
    fn encoder_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let enc = TransformerEncoder::new(16, 4, 2, &mut rng);
        let x = Var::constant(Matrix::xavier(5, 16, &mut rng));
        assert_eq!(enc.forward(&x).shape(), (5, 16));
    }

    #[test]
    fn decoder_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let dec = TransformerDecoder::new(16, 4, 2, &mut rng);
        let x = Var::constant(Matrix::xavier(3, 16, &mut rng));
        let memory = Var::constant(Matrix::xavier(7, 16, &mut rng));
        assert_eq!(dec.forward(&x, &memory).shape(), (3, 16));
    }

    #[test]
    fn decoder_is_causal() {
        let mut rng = StdRng::seed_from_u64(3);
        let dec = TransformerDecoder::new(8, 2, 1, &mut rng);
        let memory = Var::constant(Matrix::xavier(4, 8, &mut rng));
        let a = Matrix::xavier(3, 8, &mut rng);
        let mut b = a.clone();
        for c in 0..8 {
            b.set(2, c, 5.0); // perturb only the last position
        }
        let oa = dec.forward(&Var::constant(a), &memory).to_matrix();
        let ob = dec.forward(&Var::constant(b), &memory).to_matrix();
        for c in 0..8 {
            assert!((oa.get(0, c) - ob.get(0, c)).abs() < 1e-4);
            assert!((oa.get(1, c) - ob.get(1, c)).abs() < 1e-4);
        }
    }

    #[test]
    fn encoder_is_permutation_sensitive_via_content() {
        // Without positional encodings an encoder is permutation
        // *equivariant*: permuting input rows permutes output rows.
        let mut rng = StdRng::seed_from_u64(4);
        let enc = TransformerEncoder::new(8, 2, 1, &mut rng);
        let x = Matrix::xavier(3, 8, &mut rng);
        let out = enc.forward(&Var::constant(x.clone())).to_matrix();
        // Swap rows 0 and 2.
        let mut swapped = Matrix::zeros(3, 8);
        swapped.row_mut(0).copy_from_slice(x.row(2));
        swapped.row_mut(1).copy_from_slice(x.row(1));
        swapped.row_mut(2).copy_from_slice(x.row(0));
        let out_swapped = enc.forward(&Var::constant(swapped)).to_matrix();
        for c in 0..8 {
            assert!((out.get(0, c) - out_swapped.get(2, c)).abs() < 1e-4);
            assert!((out.get(2, c) - out_swapped.get(0, c)).abs() < 1e-4);
        }
    }

    #[test]
    fn encoder_overfits_tiny_regression() {
        // A 1-block encoder + mean pool should fit two separable inputs.
        let mut rng = StdRng::seed_from_u64(5);
        let enc = TransformerEncoder::new(8, 2, 1, &mut rng);
        let head = crate::layers::Linear::new(8, 1, &mut rng);
        let mut params = enc.parameters();
        params.extend(head.parameters());
        let mut opt = Adam::new(params, 1e-2);
        let a = Matrix::xavier(4, 8, &mut rng);
        let b = Matrix::xavier(4, 8, &mut rng);
        let mut last = f32::INFINITY;
        for _ in 0..100 {
            opt.zero_grad();
            let mut total = Var::constant(Matrix::scalar(0.0));
            for (x, target) in [(&a, 1.0f32), (&b, -1.0)] {
                let h = enc.forward(&Var::constant(x.clone()));
                let pooled = h.mean_rows();
                let pred = head.forward(&pooled);
                let t = Var::constant(Matrix::scalar(target));
                let d = pred.sub(&t);
                total = total.add(&d.hadamard(&d).sum());
            }
            total.backward();
            opt.step();
            last = total.item();
        }
        assert!(last < 0.05, "final loss {last}");
    }

    #[test]
    fn packed_forward_is_bitwise_identical_to_per_sequence() {
        // The serving fast path packs several plans into one forward; cached
        // and batched answers must match one-at-a-time inference exactly.
        let mut rng = StdRng::seed_from_u64(7);
        let enc = TransformerEncoder::new(16, 4, 2, &mut rng);
        let seqs: Vec<Var> = [3usize, 5, 1, 4]
            .iter()
            .map(|&len| Var::constant(Matrix::xavier(len, 16, &mut rng)))
            .collect();
        let individual: Vec<Matrix> = seqs.iter().map(|s| enc.forward(s).to_matrix()).collect();
        let batched: Vec<Matrix> = enc
            .forward_batch(&seqs)
            .iter()
            .map(Var::to_matrix)
            .collect();
        assert_eq!(individual, batched);
    }

    #[test]
    fn packed_forward_grads_flow_per_sequence() {
        let mut rng = StdRng::seed_from_u64(8);
        let enc = TransformerEncoder::new(8, 2, 1, &mut rng);
        let a = Var::parameter(Matrix::xavier(2, 8, &mut rng));
        let b = Var::parameter(Matrix::xavier(3, 8, &mut rng));
        let outs = enc.forward_batch(&[a.clone(), b.clone()]);
        outs[0].sum().backward();
        assert!(a.grad().norm() > 0.0, "first sequence receives gradient");
        // Attention is blocked across sequences, but the packed layer norm /
        // linear path still ties them to one graph; `b`'s rows contribute
        // zero to `outs[0]`'s loss.
        let out_b_alone = enc.forward(&b).to_matrix();
        assert_eq!(outs[1].to_matrix(), out_b_alone);
    }

    #[test]
    fn forward_batch_handles_empty_and_single() {
        let mut rng = StdRng::seed_from_u64(9);
        let enc = TransformerEncoder::new(8, 2, 1, &mut rng);
        assert!(enc.forward_batch(&[]).is_empty());
        let x = Var::constant(Matrix::xavier(4, 8, &mut rng));
        let one = enc.forward_batch(std::slice::from_ref(&x));
        assert_eq!(one[0].to_matrix(), enc.forward(&x).to_matrix());
    }

    #[test]
    fn packed_decoder_is_bitwise_identical_to_per_prefix() {
        // The batched beam path packs every live prefix of every query into
        // one decoder forward; its rows must equal one-prefix-at-a-time
        // decoding exactly, or beam results drift.
        let mut rng = StdRng::seed_from_u64(11);
        let dec = TransformerDecoder::new(16, 4, 2, &mut rng);
        let memories: Vec<Var> = [4usize, 6]
            .iter()
            .map(|&s| Var::constant(Matrix::xavier(s, 16, &mut rng)))
            .collect();
        // Prefixes of assorted lengths, each tied to one of the two
        // memories (interleaved to exercise the cross-block mask).
        let prefixes: Vec<(usize, Var)> = [(0usize, 3usize), (1, 2), (0, 1), (1, 3), (0, 2)]
            .iter()
            .map(|&(m, t)| (m, Var::constant(Matrix::xavier(t, 16, &mut rng))))
            .collect();
        let individual: Vec<Matrix> = prefixes
            .iter()
            .map(|(m, x)| dec.forward(x, &memories[*m]).to_matrix())
            .collect();
        let x_lens: Vec<usize> = prefixes.iter().map(|(_, x)| x.shape().0).collect();
        let mem_lens: Vec<usize> = memories.iter().map(|m| m.shape().0).collect();
        let mem_of: Vec<usize> = prefixes.iter().map(|(m, _)| *m).collect();
        let packed_x = Var::concat_rows(&prefixes.iter().map(|(_, x)| x.clone()).collect::<Vec<_>>());
        let packed_mem = Var::concat_rows(&memories);
        let packed = dec
            .forward_packed(&packed_x, &packed_mem, &x_lens, &mem_lens, &mem_of)
            .split_rows(&x_lens);
        let batched: Vec<Matrix> = packed.iter().map(Var::to_matrix).collect();
        assert_eq!(individual, batched);
    }

    #[test]
    fn packed_decoder_single_memory_matches_sequential() {
        // One query, many live prefixes: the common beam case. No cross
        // mask is needed — every segment sees the whole (only) memory.
        let mut rng = StdRng::seed_from_u64(12);
        let dec = TransformerDecoder::new(8, 2, 1, &mut rng);
        let memory = Var::constant(Matrix::xavier(5, 8, &mut rng));
        let prefixes: Vec<Var> = [2usize, 2, 3, 1]
            .iter()
            .map(|&t| Var::constant(Matrix::xavier(t, 8, &mut rng)))
            .collect();
        let individual: Vec<Matrix> = prefixes
            .iter()
            .map(|x| dec.forward(x, &memory).to_matrix())
            .collect();
        let lens: Vec<usize> = prefixes.iter().map(|x| x.shape().0).collect();
        let packed = dec
            .forward_packed(&Var::concat_rows(&prefixes), &memory, &lens, &[5], &vec![0; 4])
            .split_rows(&lens);
        let batched: Vec<Matrix> = packed.iter().map(Var::to_matrix).collect();
        assert_eq!(individual, batched);
    }

    #[test]
    fn parameter_counts_positive() {
        let mut rng = StdRng::seed_from_u64(6);
        let enc = TransformerEncoder::new(16, 4, 3, &mut rng);
        let dec = TransformerDecoder::new(16, 4, 3, &mut rng);
        assert!(enc.parameter_count() > 3 * (4 * 16 * 16));
        assert!(dec.parameter_count() > enc.parameter_count());
    }
}

//! Dense row-major `f32` matrices.
//!
//! Buffers are recycled through [`kernel`]'s per-thread arena: every
//! constructor asks the arena for its backing `Vec<f32>` and [`Drop`]
//! returns it, so steady-state forward passes allocate nothing. The
//! `profile::OpStats` counters reflect this — `allocations` counts arena
//! *misses* (a genuine heap allocation), `arena_reuses` counts hits.
//!
//! The matmul family dispatches through [`kernel::gemm`], which selects
//! the reference, cache-blocked, or row-parallel path based on
//! [`kernel::current`]. All paths are bitwise-identical for finite inputs
//! (see the `kernel` module docs); `matmul_reference` / `matmul_nt_reference`
//! pin the naive kernels unconditionally for the differential suite.

use crate::kernel;
use crate::profile;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: kernel::take_copy(&self.data),
        }
    }
}

impl Drop for Matrix {
    fn drop(&mut self) {
        kernel::recycle(std::mem::take(&mut self.data));
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: kernel::take(rows * cols, 0.0),
        }
    }

    /// A matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: kernel::take(rows * cols, value),
        }
    }

    /// Builds from a row-major vector; `data.len()` must equal
    /// `rows * cols`. The buffer arrives from outside the arena, so this
    /// always counts as an allocation.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        profile::record_alloc((rows * cols) as u64);
        Self { rows, cols, data }
    }

    /// A 1×1 matrix (scalar).
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(1, 1, vec![v])
    }

    /// A row vector.
    pub fn row_vec(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self::from_vec(1, cols, data)
    }

    /// Xavier/Glorot-uniform initialization: `U(-a, a)` with
    /// `a = sqrt(6 / (rows + cols))`.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        let mut data = kernel::take_empty(rows * cols);
        data.extend((0..rows * cols).map(|_| rng.gen_range(-a..a)));
        Self { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw data slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a 1×1 matrix.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on non-scalar {self:?}");
        self.data[0]
    }

    /// Matrix product `self × other`, via the configured kernel
    /// ([`kernel::current`]). Bitwise-identical to [`Self::matmul_reference`]
    /// for finite inputs on every configuration.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        profile::record_matmul(2 * (self.rows * other.cols * self.cols) as u64);
        let mut out = Matrix::zeros(self.rows, other.cols);
        kernel::gemm(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            kernel::BKind::RowMajor,
            &mut out.data,
        );
        out
    }

    /// `self × otherᵀ` without materializing the transpose, via the
    /// configured kernel.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        profile::record_matmul(2 * (self.rows * other.rows * self.cols) as u64);
        let mut out = Matrix::zeros(self.rows, other.rows);
        kernel::gemm(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.rows,
            kernel::BKind::Transposed,
            &mut out.data,
        );
        out
    }

    /// [`Self::matmul`] pinned to the naive reference kernel regardless of
    /// the installed [`kernel::KernelConfig`] — the differential suite's
    /// ground truth.
    pub fn matmul_reference(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        profile::record_matmul(2 * (self.rows * other.cols * self.cols) as u64);
        let mut out = Matrix::zeros(self.rows, other.cols);
        kernel::reference_gemm(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            kernel::BKind::RowMajor,
            &mut out.data,
        );
        out
    }

    /// [`Self::matmul_nt`] pinned to the naive reference kernel.
    pub fn matmul_nt_reference(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        profile::record_matmul(2 * (self.rows * other.rows * self.cols) as u64);
        let mut out = Matrix::zeros(self.rows, other.rows);
        kernel::reference_gemm(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.rows,
            kernel::BKind::Transposed,
            &mut out.data,
        );
        out
    }

    /// `selfᵀ × other` without materializing the transpose. Only the
    /// backward pass uses this, so it stays on the naive kernel.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        profile::record_matmul(2 * (self.cols * other.cols * self.rows) as u64);
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Fused attention scores: `softmax_rows(self × keysᵀ · scale [+ mask])`
    /// in one pass over one buffer, instead of the scale/add/softmax chain
    /// of intermediates. Bitwise-identical to the composed form (Rust
    /// never contracts the `*`/`+` pair into an FMA).
    pub fn attention_scores(&self, keys: &Matrix, scale: f32, mask: Option<&Matrix>) -> Matrix {
        let mut scores = self.matmul_nt(keys);
        match mask {
            Some(m) => {
                assert_eq!(scores.shape(), m.shape(), "attention mask shape mismatch");
                for (o, &mv) in scores.data.iter_mut().zip(&m.data) {
                    *o = *o * scale + mv;
                }
            }
            None => {
                for o in scores.data.iter_mut() {
                    *o *= scale;
                }
            }
        }
        scores.softmax_rows_in_place();
        scores
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise sum (same shape).
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `row` (a 1×cols matrix) to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(row.data()) {
                *o += b;
            }
        }
        out
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let mut data = kernel::take_empty(self.data.len());
        data.extend(self.data.iter().map(|&v| f(v)));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise zip-map.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        let mut data = kernel::take_empty(self.data.len());
        data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place elementwise accumulate: `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for empty).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Copy of rows `lo..hi`.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.rows, "row slice out of range");
        Matrix {
            rows: hi - lo,
            cols: self.cols,
            data: kernel::take_copy(&self.data[lo * self.cols..hi * self.cols]),
        }
    }

    /// Copy of columns `lo..hi`.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.cols, "col slice out of range");
        let mut out = Matrix::zeros(self.rows, hi - lo);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[lo..hi]);
        }
        out
    }

    /// Vertical concatenation (equal column counts).
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat of nothing");
        let cols = parts[0].cols;
        let rows = parts.iter().map(|m| m.rows).sum();
        let mut data = kernel::take_empty(rows * cols);
        for m in parts {
            assert_eq!(m.cols, cols, "concat_rows width mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Horizontal concatenation (equal row counts).
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat of nothing");
        let rows = parts[0].rows;
        let cols = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for m in parts {
                assert_eq!(m.rows, rows, "concat_cols height mismatch");
                out.row_mut(r)[offset..offset + m.cols].copy_from_slice(m.row(r));
                offset += m.cols;
            }
        }
        out
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        out.softmax_rows_in_place();
        out
    }

    /// Row-wise softmax in place (the allocation-free half of
    /// [`Self::softmax_rows`], shared with the fused attention kernel).
    fn softmax_rows_in_place(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use rand::SeedableRng;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_known() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::xavier(4, 5, &mut rng);
        let b = Matrix::xavier(3, 5, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::xavier(5, 4, &mut rng);
        let b = Matrix::xavier(5, 3, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn blocked_kernel_is_bitwise_equal_to_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::xavier(33, 50, &mut rng);
        let b = Matrix::xavier(50, 41, &mut rng);
        let bt = Matrix::xavier(41, 50, &mut rng);
        let blocked = crate::kernel::scoped(KernelConfig::single_threaded(8), || {
            (a.matmul(&b), a.matmul_nt(&bt))
        });
        assert_eq!(blocked.0.data(), a.matmul_reference(&b).data());
        assert_eq!(blocked.1.data(), a.matmul_nt_reference(&bt).data());
    }

    #[test]
    fn fused_attention_scores_match_composed_chain_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let q = Matrix::xavier(6, 8, &mut rng);
        let k = Matrix::xavier(6, 8, &mut rng);
        let mask = Matrix::full(6, 6, -0.5);
        let scale = 1.0 / (8f32).sqrt();
        let fused = q.attention_scores(&k, scale, Some(&mask));
        let composed = q.matmul_nt(&k).scale(scale).add(&mask).softmax_rows();
        assert_eq!(fused.data(), composed.data());
        let fused_nomask = q.attention_scores(&k, scale, None);
        let composed_nomask = q.matmul_nt(&k).scale(scale).softmax_rows();
        assert_eq!(fused_nomask.data(), composed_nomask.data());
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.hadamard(&b).data(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
    }

    #[test]
    fn broadcast_add() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let row = m(1, 2, &[10., 20.]);
        assert_eq!(a.add_row_broadcast(&row).data(), &[11., 22., 13., 24.]);
    }

    #[test]
    fn reductions() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.norm() - 30f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn slicing_and_concat() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.slice_rows(1, 3).data(), &[3., 4., 5., 6.]);
        assert_eq!(a.slice_cols(1, 2).data(), &[2., 4., 6.]);
        let top = a.slice_rows(0, 1);
        let bottom = a.slice_rows(1, 3);
        assert_eq!(Matrix::concat_rows(&[&top, &bottom]), a);
        let left = a.slice_cols(0, 1);
        let right = a.slice_cols(1, 2);
        assert_eq!(Matrix::concat_cols(&[&left, &right]), a);
    }

    #[test]
    fn softmax_rows_normalized() {
        let a = m(2, 3, &[1., 2., 3., 1000., 1000., 1000.]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large inputs don't overflow (max-subtraction).
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Matrix::xavier(10, 10, &mut rng);
        let a = (6.0f32 / 20.0).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= a));
        assert!(w.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}

//! Dense row-major `f32` matrices.

use crate::profile;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        profile::record_alloc((rows * cols) as u64);
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        profile::record_alloc((rows * cols) as u64);
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds from a row-major vector; `data.len()` must equal
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        profile::record_alloc((rows * cols) as u64);
        Self { rows, cols, data }
    }

    /// A 1×1 matrix (scalar).
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(1, 1, vec![v])
    }

    /// A row vector.
    pub fn row_vec(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self::from_vec(1, cols, data)
    }

    /// Xavier/Glorot-uniform initialization: `U(-a, a)` with
    /// `a = sqrt(6 / (rows + cols))`.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
        profile::record_alloc((rows * cols) as u64);
        Self { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw data slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a 1×1 matrix.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on non-scalar {self:?}");
        self.data[0]
    }

    /// Matrix product `self × other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        profile::record_matmul(2 * (self.rows * other.cols * self.cols) as u64);
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: the inner loop walks contiguous rows of
        // `other` and `out`, which the compiler auto-vectorizes.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        profile::record_matmul(2 * (self.rows * other.rows * self.cols) as u64);
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                *o = dot(a_row, b_row);
            }
        }
        out
    }

    /// `selfᵀ × other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        profile::record_matmul(2 * (self.cols * other.cols * self.rows) as u64);
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise sum (same shape).
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `row` (a 1×cols matrix) to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(row.data()) {
                *o += b;
            }
        }
        out
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise zip-map.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place elementwise accumulate: `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for empty).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Copy of rows `lo..hi`.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.rows, "row slice out of range");
        Matrix {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }

    /// Copy of columns `lo..hi`.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.cols, "col slice out of range");
        let mut out = Matrix::zeros(self.rows, hi - lo);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[lo..hi]);
        }
        out
    }

    /// Vertical concatenation (equal column counts).
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat of nothing");
        let cols = parts[0].cols;
        let rows = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in parts {
            assert_eq!(m.cols, cols, "concat_rows width mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Horizontal concatenation (equal row counts).
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat of nothing");
        let rows = parts[0].rows;
        let cols = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for m in parts {
                assert_eq!(m.rows, rows, "concat_cols height mismatch");
                out.row_mut(r)[offset..offset + m.cols].copy_from_slice(m.row(r));
                offset += m.cols;
            }
        }
        out
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_known() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::xavier(4, 5, &mut rng);
        let b = Matrix::xavier(3, 5, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::xavier(5, 4, &mut rng);
        let b = Matrix::xavier(5, 3, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.hadamard(&b).data(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
    }

    #[test]
    fn broadcast_add() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let row = m(1, 2, &[10., 20.]);
        assert_eq!(a.add_row_broadcast(&row).data(), &[11., 22., 13., 24.]);
    }

    #[test]
    fn reductions() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.norm() - 30f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn slicing_and_concat() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.slice_rows(1, 3).data(), &[3., 4., 5., 6.]);
        assert_eq!(a.slice_cols(1, 2).data(), &[2., 4., 6.]);
        let top = a.slice_rows(0, 1);
        let bottom = a.slice_rows(1, 3);
        assert_eq!(Matrix::concat_rows(&[&top, &bottom]), a);
        let left = a.slice_cols(0, 1);
        let right = a.slice_cols(1, 2);
        assert_eq!(Matrix::concat_cols(&[&left, &right]), a);
    }

    #[test]
    fn softmax_rows_normalized() {
        let a = m(2, 3, &[1., 2., 3., 1000., 1000., 1000.]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large inputs don't overflow (max-subtraction).
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Matrix::xavier(10, 10, &mut rng);
        let a = (6.0f32 / 20.0).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= a));
        assert!(w.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}

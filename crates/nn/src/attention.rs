//! Multi-head scaled dot-product attention.

use crate::autograd::Var;
use crate::layers::{Linear, Module};
use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// Multi-head attention over sequences.
///
/// Inputs are `(seq, d_model)` matrices. With `query == keys/values` this is
/// self-attention; with different inputs it is cross-attention (used by the
/// `Trans_JO` decoder over the shared representation).
#[derive(Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Builds attention with `heads` heads over `d_model` features
    /// (`d_model` must be divisible by `heads`).
    pub fn new(d_model: usize, heads: usize, rng: &mut StdRng) -> Self {
        assert_eq!(d_model % heads, 0, "d_model must divide into heads");
        Self {
            wq: Linear::new(d_model, d_model, rng),
            wk: Linear::new(d_model, d_model, rng),
            wv: Linear::new(d_model, d_model, rng),
            wo: Linear::new(d_model, d_model, rng),
            heads,
            head_dim: d_model / heads,
        }
    }

    /// Forward pass. `mask`, if given, is a `(q_len, kv_len)` matrix added
    /// to the attention logits (use large negative values to forbid
    /// positions — e.g. a causal mask in the decoder).
    pub fn forward(&self, query: &Var, keys_values: &Var, mask: Option<&Matrix>) -> Var {
        crate::profile::record_attention();
        let q = self.wq.forward(query);
        let k = self.wk.forward(keys_values);
        let v = self.wv.forward(keys_values);
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let lo = h * self.head_dim;
            let hi = lo + self.head_dim;
            let qh = q.slice_cols(lo, hi);
            let kh = k.slice_cols(lo, hi);
            let vh = v.slice_cols(lo, hi);
            // Fused score+softmax kernel: one buffer instead of the
            // scale/add/softmax chain, bitwise-identical output.
            let attention = qh.attention_scores(&kh, scale, mask);
            head_outputs.push(attention.matmul(&vh));
        }
        let concat = Var::concat_cols(&head_outputs);
        self.wo.forward(&concat)
    }

    /// Segment-local packed attention for the inference decode path.
    ///
    /// Query segments of lengths `q_lens` are packed row-wise into
    /// `query`; key/value blocks of lengths `kv_lens` are packed row-wise
    /// into `keys_values`; segment `s` attends only to block `kv_of[s]`
    /// (causally within it when `causal` is set, which requires
    /// `q_lens[s] == kv_lens[kv_of[s]]`). The q/k/v/output projections
    /// still run as single packed matmuls — the win over the masked dense
    /// formulation is that scores, softmax, and the weighted sum run per
    /// segment, so their cost is linear in the number of segments instead
    /// of quadratic in total packed rows.
    ///
    /// Bitwise-identical to the additive-mask path: a masked logit scores
    /// `s·scale − 1e9`, which is never the row max and underflows to
    /// exactly `+0.0` after softmax, so it adds nothing to the row sum
    /// (`x + 0.0 == x` for the non-negative partial sums) and is skipped
    /// by the weighted-sum matmul's skip-zero rule. What remains is the
    /// in-block arithmetic, in the same ascending order. Gradients do not
    /// flow through this path — callers gate on [`crate::grad_enabled`].
    // lint: hot-path
    pub fn forward_segmented(
        &self,
        query: &Var,
        keys_values: &Var,
        q_lens: &[usize],
        kv_lens: &[usize],
        kv_of: &[usize],
        causal: bool,
    ) -> Var {
        crate::profile::record_attention();
        let q = self.wq.forward(query);
        let k = self.wk.forward(keys_values);
        let v = self.wv.forward(keys_values);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let (q_rows, d_model) = q.shape();
        let kv_rows = k.shape().0;
        debug_assert_eq!(q_lens.iter().sum::<usize>(), q_rows);
        debug_assert_eq!(kv_lens.iter().sum::<usize>(), kv_rows);
        debug_assert_eq!(q_lens.len(), kv_of.len());
        // One tiny usize vec per forward (not per segment); an f32 arena
        // buffer can't hold offsets.
        // lint: allow(hot-path)
        let mut kv_offs = Vec::with_capacity(kv_lens.len());
        let mut off = 0;
        for &len in kv_lens {
            kv_offs.push(off);
            off += len;
        }

        let hd = self.head_dim;
        let mut concat = Matrix::zeros(q_rows, d_model);
        {
            // Three read guards on three *distinct* per-node RwLocks —
            // read-read on separate locks cannot deadlock; the analyzer
            // folds every `.value()` into one global tape identity.
            let qv = q.value(); // lint: allow(lock-cycle)
            let kv = k.value(); // lint: allow(lock-cycle)
            let vv = v.value(); // lint: allow(lock-cycle)
            // Per-head column gathers (the same copies `slice_cols` makes)
            // and per-segment score/output scratch — all pooled, so the
            // steady-state serve loop allocates nothing here.
            let mut qh = crate::kernel::take(q_rows * hd, 0.0);
            let mut kh = crate::kernel::take(kv_rows * hd, 0.0);
            let mut vh = crate::kernel::take(kv_rows * hd, 0.0);
            let mut scores = crate::kernel::take_empty(0);
            let mut seg_out = crate::kernel::take_empty(0);
            for h in 0..self.heads {
                let lo = h * hd;
                for (r, dst) in qh.chunks_exact_mut(hd).enumerate() {
                    dst.copy_from_slice(&qv.row(r)[lo..lo + hd]);
                }
                for (r, (dk, dv)) in kh
                    .chunks_exact_mut(hd)
                    .zip(vh.chunks_exact_mut(hd))
                    .enumerate()
                {
                    dk.copy_from_slice(&kv.row(r)[lo..lo + hd]);
                    dv.copy_from_slice(&vv.row(r)[lo..lo + hd]);
                }
                let mut q_off = 0;
                for (s, &ql) in q_lens.iter().enumerate() {
                    let (ko, kl) = (kv_offs[kv_of[s]], kv_lens[kv_of[s]]);
                    crate::profile::record_matmul(2 * (ql * kl * hd) as u64);
                    scores.clear();
                    scores.resize(ql * kl, 0.0);
                    // Pool recv under the value guards is deadlock-free by
                    // the kernel drain-loop progress guarantee (see
                    // `Var::matmul`).
                    // lint: allow(block-under-guard)
                    crate::kernel::gemm(
                        &qh[q_off * hd..(q_off + ql) * hd],
                        ql,
                        hd,
                        &kh[ko * hd..(ko + kl) * hd],
                        kl,
                        crate::kernel::BKind::Transposed,
                        &mut scores,
                    );
                    // Scale (+ causal mask): the literal masked formula for
                    // causal rows, the maskless one otherwise — matching
                    // what the per-sequence path applies in each case.
                    if causal {
                        debug_assert_eq!(ql, kl);
                        for (r, row) in scores.chunks_exact_mut(kl).enumerate() {
                            for (c, o) in row.iter_mut().enumerate() {
                                *o = *o * scale + if c <= r { 0.0 } else { -1e9 };
                            }
                        }
                    } else {
                        for o in scores.iter_mut() {
                            *o *= scale;
                        }
                    }
                    // Row-wise softmax, the exact op order of
                    // `Matrix::softmax_rows`.
                    for row in scores.chunks_exact_mut(kl) {
                        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                        let mut sum = 0.0;
                        for x in row.iter_mut() {
                            *x = (*x - max).exp();
                            sum += *x;
                        }
                        if sum > 0.0 {
                            for x in row.iter_mut() {
                                *x /= sum;
                            }
                        }
                    }
                    crate::profile::record_matmul(2 * (ql * hd * kl) as u64);
                    seg_out.clear();
                    seg_out.resize(ql * hd, 0.0);
                    // Same argument as the scores GEMM above.
                    // lint: allow(block-under-guard)
                    crate::kernel::gemm(
                        &scores,
                        ql,
                        kl,
                        &vh[ko * hd..(ko + kl) * hd],
                        hd,
                        crate::kernel::BKind::RowMajor,
                        &mut seg_out,
                    );
                    for (r, src) in seg_out.chunks_exact(hd).enumerate() {
                        concat.row_mut(q_off + r)[lo..lo + hd].copy_from_slice(src);
                    }
                    q_off += ql;
                }
            }
            crate::kernel::recycle(qh);
            crate::kernel::recycle(kh);
            crate::kernel::recycle(vh);
            crate::kernel::recycle(scores);
            crate::kernel::recycle(seg_out);
        }
        self.wo.forward(&Var::constant(concat))
    }

    /// A causal (lower-triangular) mask for decoder self-attention:
    /// position `i` may attend to positions `0..=i` only.
    pub fn causal_mask(len: usize) -> Matrix {
        let mut m = Matrix::zeros(len, len);
        for r in 0..len {
            for c in (r + 1)..len {
                m.set(r, c, -1e9);
            }
        }
        m
    }

    /// A block-diagonal mask for packed batched self-attention: several
    /// sequences of lengths `lens` are concatenated row-wise into one
    /// `(Σlen, d_model)` input, and each position may attend only within
    /// its own sequence. Off-block logits get `-1e9`, which underflows to
    /// exactly zero attention weight after softmax, so a packed forward is
    /// equivalent to running each sequence separately.
    pub fn block_diagonal_mask(lens: &[usize]) -> Matrix {
        let total: usize = lens.iter().sum();
        let mut m = Matrix::full(total, total, -1e9);
        let mut offset = 0;
        for &len in lens {
            for r in offset..offset + len {
                for c in offset..offset + len {
                    m.set(r, c, 0.0);
                }
            }
            offset += len;
        }
        m
    }

    /// A block-causal mask for packed batched *decoder* self-attention:
    /// several prefixes of lengths `lens` are concatenated row-wise, and
    /// position `i` of a prefix may attend to positions `0..=i` of the
    /// same prefix only. The intersection of [`Self::causal_mask`] per
    /// segment with [`Self::block_diagonal_mask`] across segments.
    pub fn block_causal_mask(lens: &[usize]) -> Matrix {
        let total: usize = lens.iter().sum();
        let mut m = Matrix::full(total, total, -1e9);
        let mut offset = 0;
        for &len in lens {
            for r in 0..len {
                for c in 0..=r {
                    m.set(offset + r, offset + c, 0.0);
                }
            }
            offset += len;
        }
        m
    }

    /// A rectangular cross-attention mask for packed multi-query decoding:
    /// query segments of lengths `q_lens` are concatenated row-wise, memory
    /// blocks of lengths `mem_lens` are concatenated row-wise, and query
    /// segment `i` may attend only to memory block `mem_of[i]`.
    pub fn cross_block_mask(q_lens: &[usize], mem_lens: &[usize], mem_of: &[usize]) -> Matrix {
        assert_eq!(q_lens.len(), mem_of.len(), "one memory block per segment");
        let q_total: usize = q_lens.iter().sum();
        let mem_total: usize = mem_lens.iter().sum();
        let mut mem_offsets = Vec::with_capacity(mem_lens.len());
        let mut off = 0;
        for &len in mem_lens {
            mem_offsets.push(off);
            off += len;
        }
        let mut m = Matrix::full(q_total, mem_total, -1e9);
        let mut q_off = 0;
        for (seg, &q_len) in q_lens.iter().enumerate() {
            let block = mem_of[seg];
            let (m_off, m_len) = (mem_offsets[block], mem_lens[block]);
            for r in q_off..q_off + q_len {
                for c in m_off..m_off + m_len {
                    m.set(r, c, 0.0);
                }
            }
            q_off += q_len;
        }
        m
    }
}

impl Module for MultiHeadAttention {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.wq.parameters();
        p.extend(self.wk.parameters());
        p.extend(self.wv.parameters());
        p.extend(self.wo.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_query() {
        let mut rng = StdRng::seed_from_u64(1);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        let q = Var::constant(Matrix::xavier(3, 8, &mut rng));
        let kv = Var::constant(Matrix::xavier(5, 8, &mut rng));
        let out = attn.forward(&q, &kv, None);
        assert_eq!(out.shape(), (3, 8));
    }

    #[test]
    fn causal_mask_blocks_future() {
        let mut rng = StdRng::seed_from_u64(2);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        // Two inputs identical in the past, different in the future: masked
        // attention outputs at position 0 must agree.
        let mut a = Matrix::xavier(3, 8, &mut rng);
        let b = {
            let mut b = a.clone();
            for c in 0..8 {
                b.set(2, c, -b.get(2, c) + 0.7);
            }
            b
        };
        a.set(2, 0, a.get(2, 0)); // no-op, keep a as-is
        let mask = MultiHeadAttention::causal_mask(3);
        let out_a = attn
            .forward(&Var::constant(a.clone()), &Var::constant(a), Some(&mask))
            .to_matrix();
        let out_b = attn
            .forward(&Var::constant(b.clone()), &Var::constant(b), Some(&mask))
            .to_matrix();
        for c in 0..8 {
            assert!(
                (out_a.get(0, c) - out_b.get(0, c)).abs() < 1e-5,
                "position 0 must not see position 2"
            );
            assert!(
                (out_a.get(1, c) - out_b.get(1, c)).abs() < 1e-5,
                "position 1 must not see position 2"
            );
        }
    }

    #[test]
    fn attention_weights_rows_sum_to_one_implicitly() {
        // With identical value rows the output equals that row regardless of
        // the attention distribution — a cheap normalization check.
        let mut rng = StdRng::seed_from_u64(3);
        let attn = MultiHeadAttention::new(4, 1, &mut rng);
        let kv_data: Vec<f32> = (0..2).flat_map(|_| vec![0.3, -0.2, 0.8, 0.1]).collect();
        let kv = Var::constant(Matrix::from_vec(2, 4, kv_data));
        let q = Var::constant(Matrix::xavier(1, 4, &mut rng));
        let out1 = attn.forward(&q, &kv, None).to_matrix();
        // Changing the query must not change the output when all values are
        // identical.
        let q2 = Var::constant(Matrix::xavier(1, 4, &mut rng));
        let out2 = attn.forward(&q2, &kv, None).to_matrix();
        for c in 0..4 {
            assert!((out1.get(0, c) - out2.get(0, c)).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_flow_to_all_projections() {
        let mut rng = StdRng::seed_from_u64(4);
        let attn = MultiHeadAttention::new(8, 4, &mut rng);
        let x = Var::constant(Matrix::xavier(3, 8, &mut rng));
        let loss = attn.forward(&x, &x, None).sum();
        loss.backward();
        for p in attn.parameters() {
            // Weight matrices must all receive gradient (biases of wk may be
            // near zero by symmetry; check weights only via shape).
            let (r, _) = p.shape();
            if r > 1 {
                assert!(p.grad().norm() > 0.0, "projection got no gradient");
            }
        }
    }

    #[test]
    #[should_panic(expected = "d_model must divide into heads")]
    fn head_divisibility_checked() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = MultiHeadAttention::new(10, 3, &mut rng);
    }
}

//! Multi-head scaled dot-product attention.

use crate::autograd::Var;
use crate::layers::{Linear, Module};
use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// Multi-head attention over sequences.
///
/// Inputs are `(seq, d_model)` matrices. With `query == keys/values` this is
/// self-attention; with different inputs it is cross-attention (used by the
/// `Trans_JO` decoder over the shared representation).
#[derive(Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Builds attention with `heads` heads over `d_model` features
    /// (`d_model` must be divisible by `heads`).
    pub fn new(d_model: usize, heads: usize, rng: &mut StdRng) -> Self {
        assert_eq!(d_model % heads, 0, "d_model must divide into heads");
        Self {
            wq: Linear::new(d_model, d_model, rng),
            wk: Linear::new(d_model, d_model, rng),
            wv: Linear::new(d_model, d_model, rng),
            wo: Linear::new(d_model, d_model, rng),
            heads,
            head_dim: d_model / heads,
        }
    }

    /// Forward pass. `mask`, if given, is a `(q_len, kv_len)` matrix added
    /// to the attention logits (use large negative values to forbid
    /// positions — e.g. a causal mask in the decoder).
    pub fn forward(&self, query: &Var, keys_values: &Var, mask: Option<&Matrix>) -> Var {
        crate::profile::record_attention();
        let q = self.wq.forward(query);
        let k = self.wk.forward(keys_values);
        let v = self.wv.forward(keys_values);
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let lo = h * self.head_dim;
            let hi = lo + self.head_dim;
            let qh = q.slice_cols(lo, hi);
            let kh = k.slice_cols(lo, hi);
            let vh = v.slice_cols(lo, hi);
            // Fused score+softmax kernel: one buffer instead of the
            // scale/add/softmax chain, bitwise-identical output.
            let attention = qh.attention_scores(&kh, scale, mask);
            head_outputs.push(attention.matmul(&vh));
        }
        let concat = Var::concat_cols(&head_outputs);
        self.wo.forward(&concat)
    }

    /// A causal (lower-triangular) mask for decoder self-attention:
    /// position `i` may attend to positions `0..=i` only.
    pub fn causal_mask(len: usize) -> Matrix {
        let mut m = Matrix::zeros(len, len);
        for r in 0..len {
            for c in (r + 1)..len {
                m.set(r, c, -1e9);
            }
        }
        m
    }

    /// A block-diagonal mask for packed batched self-attention: several
    /// sequences of lengths `lens` are concatenated row-wise into one
    /// `(Σlen, d_model)` input, and each position may attend only within
    /// its own sequence. Off-block logits get `-1e9`, which underflows to
    /// exactly zero attention weight after softmax, so a packed forward is
    /// equivalent to running each sequence separately.
    pub fn block_diagonal_mask(lens: &[usize]) -> Matrix {
        let total: usize = lens.iter().sum();
        let mut m = Matrix::full(total, total, -1e9);
        let mut offset = 0;
        for &len in lens {
            for r in offset..offset + len {
                for c in offset..offset + len {
                    m.set(r, c, 0.0);
                }
            }
            offset += len;
        }
        m
    }
}

impl Module for MultiHeadAttention {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.wq.parameters();
        p.extend(self.wk.parameters());
        p.extend(self.wv.parameters());
        p.extend(self.wo.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_query() {
        let mut rng = StdRng::seed_from_u64(1);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        let q = Var::constant(Matrix::xavier(3, 8, &mut rng));
        let kv = Var::constant(Matrix::xavier(5, 8, &mut rng));
        let out = attn.forward(&q, &kv, None);
        assert_eq!(out.shape(), (3, 8));
    }

    #[test]
    fn causal_mask_blocks_future() {
        let mut rng = StdRng::seed_from_u64(2);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        // Two inputs identical in the past, different in the future: masked
        // attention outputs at position 0 must agree.
        let mut a = Matrix::xavier(3, 8, &mut rng);
        let b = {
            let mut b = a.clone();
            for c in 0..8 {
                b.set(2, c, -b.get(2, c) + 0.7);
            }
            b
        };
        a.set(2, 0, a.get(2, 0)); // no-op, keep a as-is
        let mask = MultiHeadAttention::causal_mask(3);
        let out_a = attn
            .forward(&Var::constant(a.clone()), &Var::constant(a), Some(&mask))
            .to_matrix();
        let out_b = attn
            .forward(&Var::constant(b.clone()), &Var::constant(b), Some(&mask))
            .to_matrix();
        for c in 0..8 {
            assert!(
                (out_a.get(0, c) - out_b.get(0, c)).abs() < 1e-5,
                "position 0 must not see position 2"
            );
            assert!(
                (out_a.get(1, c) - out_b.get(1, c)).abs() < 1e-5,
                "position 1 must not see position 2"
            );
        }
    }

    #[test]
    fn attention_weights_rows_sum_to_one_implicitly() {
        // With identical value rows the output equals that row regardless of
        // the attention distribution — a cheap normalization check.
        let mut rng = StdRng::seed_from_u64(3);
        let attn = MultiHeadAttention::new(4, 1, &mut rng);
        let kv_data: Vec<f32> = (0..2).flat_map(|_| vec![0.3, -0.2, 0.8, 0.1]).collect();
        let kv = Var::constant(Matrix::from_vec(2, 4, kv_data));
        let q = Var::constant(Matrix::xavier(1, 4, &mut rng));
        let out1 = attn.forward(&q, &kv, None).to_matrix();
        // Changing the query must not change the output when all values are
        // identical.
        let q2 = Var::constant(Matrix::xavier(1, 4, &mut rng));
        let out2 = attn.forward(&q2, &kv, None).to_matrix();
        for c in 0..4 {
            assert!((out1.get(0, c) - out2.get(0, c)).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_flow_to_all_projections() {
        let mut rng = StdRng::seed_from_u64(4);
        let attn = MultiHeadAttention::new(8, 4, &mut rng);
        let x = Var::constant(Matrix::xavier(3, 8, &mut rng));
        let loss = attn.forward(&x, &x, None).sum();
        loss.backward();
        for p in attn.parameters() {
            // Weight matrices must all receive gradient (biases of wk may be
            // near zero by symmetry; check weights only via shape).
            let (r, _) = p.shape();
            if r > 1 {
                assert!(p.grad().norm() > 0.0, "projection got no gradient");
            }
        }
    }

    #[test]
    #[should_panic(expected = "d_model must divide into heads")]
    fn head_divisibility_checked() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = MultiHeadAttention::new(10, 3, &mut rng);
    }
}

//! # mtmlf-nn
//!
//! A from-scratch neural-network stack for the MTMLF reproduction: the
//! paper trains transformer encoders (per-table `Enc_i`, `Trans_Share`), a
//! transformer decoder (`Trans_JO`), MLP heads, and a Tree-LSTM baseline —
//! all of which this crate supports on CPU with `f32` dense matrices and
//! reverse-mode (tape) automatic differentiation.
//!
//! Everything is deterministic: weight initialization takes an explicit
//! RNG, and no global state affects results.
//!
//! Layout conventions:
//! - All tensors are 2-D [`Matrix`] values, row-major.
//! - A sequence is a `(seq_len, d_model)` matrix; batching is by iterating
//!   samples and accumulating gradients (sequence lengths vary per query).
//!
//! The autograd [`Var`] is a reference-counted tape node; operators build
//! the graph, [`Var::backward`] runs reverse-mode accumulation, and
//! [`optim::Adam`] updates parameters in place. `Var` is `Send + Sync`, so
//! a trained model can serve inference from many threads at once; wrap
//! serving forwards in [`no_grad`] to skip tape construction.

#![forbid(unsafe_code)]

pub mod attention;
pub mod autograd;
pub mod kernel;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod optim;
pub mod profile;
pub mod serialize;
pub mod transformer;

pub use attention::MultiHeadAttention;
pub use autograd::{grad_enabled, no_grad, Var};
pub use kernel::KernelConfig;
pub use layers::{FeedForward, LayerNorm, Linear, Mlp, Module};
pub use matrix::Matrix;
pub use optim::Adam;
pub use profile::{OpStats, ProfileGuard};
pub use transformer::{DecoderBlock, EncoderBlock, TransformerDecoder, TransformerEncoder};

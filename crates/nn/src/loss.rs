//! Loss functions: Q-error surrogate, cross-entropy, KL divergence.

use crate::autograd::Var;
use crate::matrix::Matrix;

/// Mean squared error between two equal-shaped variables.
pub fn mse(pred: &Var, target: &Var) -> Var {
    let d = pred.sub(target);
    d.hadamard(&d).mean()
}

/// The smooth Q-error surrogate used to train CardEst/CostEst heads: the
/// squared difference of *log* predictions and *log* labels. Minimizing it
/// minimizes `log(q_error)²` because
/// `q_error = exp(|log est − log true|)` (paper L.i/L.ii, following
/// [15, 32]).
///
/// `pred_log` is the model's output interpreted in log space; `truth` is
/// the raw label (floored at 1).
pub fn q_error_log_loss(pred_log: &Var, truth: f64) -> Var {
    let label = (truth.max(1.0)).ln() as f32;
    let t = Var::constant(Matrix::full(pred_log.shape().0, pred_log.shape().1, label));
    mse(pred_log, &t)
}

/// Converts a log-space prediction back to an estimate, floored at one
/// tuple.
pub fn log_pred_to_estimate(pred_log: f32) -> f64 {
    (pred_log as f64).exp().max(1.0)
}

/// Token-level cross-entropy: `logits` is `(t, n)`, `targets[t]` the true
/// class per row. Returns the mean negative log-likelihood (the paper's
/// `L_jo = −(Σ_t P_t · log P̂_t)/m`).
pub fn cross_entropy_rows(logits: &Var, targets: &[usize]) -> Var {
    let (rows, cols) = logits.shape();
    assert_eq!(rows, targets.len(), "one target per row");
    let logp = logits.log_softmax_rows();
    // Select the target entries with a constant one-hot mask, then average.
    let mut mask = Matrix::zeros(rows, cols);
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < cols, "target {t} out of range {cols}");
        mask.set(r, t, -1.0 / rows as f32);
    }
    logp.hadamard(&Var::constant(mask)).sum()
}

/// KL divergence `KL(target ‖ pred)` per row, averaged: `targets` are
/// fixed distributions (e.g. the paper's tree decoding embeddings
/// normalized to sum 1), `logits` the model outputs.
pub fn kl_div_rows(logits: &Var, targets: &Matrix) -> Var {
    let (rows, cols) = logits.shape();
    assert_eq!((rows, cols), targets.shape(), "shape mismatch");
    let logp = logits.log_softmax_rows();
    // KL(t‖p) = Σ t (log t − log p); the entropy term is constant in the
    // model, so the trainable part is −Σ t · log p (plus const).
    let mut weights = targets.clone();
    let scale = -1.0 / rows as f32;
    for v in weights.data_mut() {
        *v *= scale;
    }
    logp.hadamard(&Var::constant(weights)).sum()
}

/// The log-probability (natural log) of one class sequence under per-step
/// logits: `Σ_t log softmax(logits_t)[targets_t]`. Used by the
/// sequence-level join-order loss (paper Section 5, Eq. 3).
pub fn sequence_log_prob(logits: &Var, targets: &[usize]) -> Var {
    let (rows, cols) = logits.shape();
    assert_eq!(rows, targets.len(), "one target per step");
    let logp = logits.log_softmax_rows();
    let mut mask = Matrix::zeros(rows, cols);
    for (r, &t) in targets.iter().enumerate() {
        mask.set(r, t, 1.0);
    }
    logp.hadamard(&Var::constant(mask)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_match() {
        let a = Var::constant(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = Var::constant(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        assert_eq!(mse(&a, &b).item(), 0.0);
    }

    #[test]
    fn q_error_loss_minimized_at_truth() {
        let exact = Var::constant(Matrix::scalar(100.0f32.ln()));
        assert!(q_error_log_loss(&exact, 100.0).item() < 1e-9);
        let off = Var::constant(Matrix::scalar(10.0f32.ln()));
        let l = q_error_log_loss(&off, 100.0).item();
        // |log 10 − log 100|² = (ln 10)² ≈ 5.3.
        assert!((l - (10.0f32.ln()).powi(2)).abs() < 1e-4);
    }

    #[test]
    fn estimate_conversion_floors() {
        assert_eq!(log_pred_to_estimate(-5.0), 1.0);
        assert!((log_pred_to_estimate(100.0f32.ln()) - 100.0).abs() < 1e-3);
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let good = Var::constant(Matrix::from_vec(2, 3, vec![5., 0., 0., 0., 5., 0.]));
        let bad = Var::constant(Matrix::from_vec(2, 3, vec![0., 5., 0., 5., 0., 0.]));
        let lg = cross_entropy_rows(&good, &[0, 1]).item();
        let lb = cross_entropy_rows(&bad, &[0, 1]).item();
        assert!(lg < lb, "good {lg} < bad {lb}");
        assert!(lg > 0.0);
    }

    #[test]
    fn cross_entropy_gradient_direction() {
        let logits = Var::parameter(Matrix::zeros(1, 3));
        let loss = cross_entropy_rows(&logits, &[1]);
        loss.backward();
        let g = logits.grad();
        // Gradient pushes the target logit up (negative grad) and others down.
        assert!(g.get(0, 1) < 0.0);
        assert!(g.get(0, 0) > 0.0);
        assert!(g.get(0, 2) > 0.0);
    }

    #[test]
    fn kl_divergence_zero_at_match() {
        // logits giving softmax == target distribution has minimal loss; the
        // trainable part equals the target entropy.
        let uniform_logits = Var::constant(Matrix::zeros(1, 4));
        let target = Matrix::full(1, 4, 0.25);
        let l = kl_div_rows(&uniform_logits, &target).item();
        // −Σ 0.25 log 0.25 = log 4 ≈ 1.386 (entropy; KL itself is 0).
        assert!((l - 4.0f32.ln()).abs() < 1e-4);
        // A mismatched prediction scores strictly worse.
        let skewed = Var::constant(Matrix::from_vec(1, 4, vec![3., 0., 0., 0.]));
        assert!(kl_div_rows(&skewed, &target).item() > l);
    }

    #[test]
    fn sequence_log_prob_sums_steps() {
        let logits = Var::constant(Matrix::from_vec(2, 2, vec![0., 0., 0., 0.]));
        let lp = sequence_log_prob(&logits, &[0, 1]).item();
        assert!((lp - 2.0 * 0.5f32.ln()).abs() < 1e-5);
    }
}

//! Tuned compute kernels behind the [`Matrix`](crate::Matrix) surface.
//!
//! Three pieces live here, all gated by a process-wide (and thread-locally
//! overridable) [`KernelConfig`]:
//!
//! 1. **Cache-blocked GEMM.** [`gemm`] feeds a `k`-unrolled micro-kernel
//!    ([`blocked_gemm`]) with contiguous column panels. The `A·Bᵀ` variant
//!    packs `B` into panels of `block_size` columns, transposing on the
//!    fly; the row-major `A·B` variant consumes `B` in place — a row-major
//!    matrix already is one full-width panel — so it pays no packing pass
//!    at all. Each panel streams across all rows of `A` while hot in
//!    cache.
//! 2. **A hand-rolled worker pool.** Large products split their output
//!    rows across `threads` persistent workers fed over crossbeam channels
//!    (the same pattern as `mtmlf::serve`'s planner pool — no rayon). The
//!    calling thread computes the first chunk itself, then *drains the
//!    shared job queue* while waiting, so progress never depends on a
//!    worker being alive; chunks whose reply is lost (a worker died
//!    mid-task) are recomputed inline.
//! 3. **A per-thread buffer arena.** Matrix buffers are recycled through a
//!    thread-local free list, so steady-state forward passes allocate
//!    nothing (observable through [`crate::profile::OpStats`]:
//!    `allocations` counts pool misses, `arena_reuses` counts hits).
//!
//! # Equivalence contract
//!
//! The naive kernels remain compiled as the always-available reference
//! path ([`reference_gemm`], reachable as `Matrix::matmul_reference` /
//! `Matrix::matmul_nt_reference`). The blocked and parallel paths preserve
//! the reference *accumulation order*: every output element accumulates
//! its `k` products in ascending-`k` order into a single accumulator, and
//! row-parallel splits never change any element's order. For finite inputs
//! that do not overflow, the tuned paths are therefore *bitwise identical*
//! to the reference on every `{threads, block_size}` combination — which is
//! what lets a `KernelConfig` change ship without perturbing a single
//! serving decision. The differential suite (`crates/nn/tests/kernel_diff.rs`)
//! pins exact equality for single-threaded configs and enforces the
//! documented [`ULP_TOLERANCE`] everywhere else as contractual headroom
//! for future kernels that may reassociate.
//!
//! No clocks, no OS randomness, no unsafe code.

use crate::profile;
use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Upper bound on configured worker threads.
pub const MAX_THREADS: usize = 64;
/// Bounds on a non-zero `block_size` (panel width in columns).
pub const MIN_BLOCK: usize = 4;
/// See [`MIN_BLOCK`].
pub const MAX_BLOCK: usize = 1024;

/// Maximum units-in-the-last-place divergence the differential suite
/// tolerates between the tuned and reference kernels.
///
/// The current kernels are accumulation-order-preserving and therefore
/// exact (0 ULP) for finite, non-overflowing inputs; the tolerance is the
/// *contract*, kept slightly loose so a future kernel that reassociates
/// (e.g. SIMD lane-split reductions) can ship against the same suite. The
/// single-threaded fixed-order configuration is additionally pinned to
/// exact bitwise equality and gets no such headroom.
pub const ULP_TOLERANCE: u32 = 4;

/// Tuning knobs for the `mtmlf_nn` compute kernels.
///
/// `block_size == 0` selects the naive reference kernels (the default, and
/// the seed behavior); any other value selects the cache-blocked path with
/// that column-panel width. `threads > 1` additionally row-parallelizes
/// products large enough to amortize the split. Every combination produces
/// bitwise-identical results for finite inputs (see the module docs), so
/// this is purely a performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Worker threads for large products (`1` = stay on the calling
    /// thread). Clamped to `1..=`[`MAX_THREADS`] on install.
    pub threads: usize,
    /// Column-panel width of the blocked GEMM; `0` selects the reference
    /// kernels. Non-zero values are clamped to
    /// [`MIN_BLOCK`]`..=`[`MAX_BLOCK`] on install.
    pub block_size: usize,
}

impl KernelConfig {
    /// The naive reference kernels (single-threaded, unblocked).
    pub const fn reference() -> Self {
        Self {
            threads: 1,
            block_size: 0,
        }
    }

    /// Single-threaded blocked kernels with the given panel width — the
    /// fixed-accumulation-order configuration the differential suite pins
    /// to exact equality.
    pub const fn single_threaded(block_size: usize) -> Self {
        Self {
            threads: 1,
            block_size,
        }
    }

    /// Blocked kernels with one worker per available core (capped) and a
    /// 64-column panel — a good default for serving hosts.
    pub fn tuned() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self {
            threads: threads.min(8),
            block_size: 64,
        }
    }

    /// Whether this configuration selects the reference kernels.
    pub fn is_reference(&self) -> bool {
        self.block_size == 0
    }

    /// Checks the bounds [`install`] would otherwise clamp to, so config
    /// builders can reject out-of-range values loudly instead.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 || self.threads > MAX_THREADS {
            return Err(format!(
                "kernel.threads must be in 1..={MAX_THREADS}, got {}",
                self.threads
            ));
        }
        if self.block_size != 0 && !(MIN_BLOCK..=MAX_BLOCK).contains(&self.block_size) {
            return Err(format!(
                "kernel.block_size must be 0 (reference) or in \
                 {MIN_BLOCK}..={MAX_BLOCK}, got {}",
                self.block_size
            ));
        }
        Ok(())
    }

    fn clamped(self) -> Self {
        Self {
            threads: self.threads.clamp(1, MAX_THREADS),
            block_size: if self.block_size == 0 {
                0
            } else {
                self.block_size.clamp(MIN_BLOCK, MAX_BLOCK)
            },
        }
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::reference()
    }
}

// ---------------------------------------------------------------------------
// Config plumbing: one process-wide slot plus a thread-local override.
// ---------------------------------------------------------------------------

const fn pack(cfg: KernelConfig) -> u64 {
    ((cfg.threads as u64) << 32) | cfg.block_size as u64
}

fn unpack(bits: u64) -> KernelConfig {
    KernelConfig {
        threads: (bits >> 32) as usize,
        block_size: (bits & 0xffff_ffff) as usize,
    }
}

/// Sentinel meaning "no thread-local override"; an impossible packing
/// (threads would exceed [`MAX_THREADS`]).
const NO_OVERRIDE: u64 = u64::MAX;

static INSTALLED: AtomicU64 = AtomicU64::new(pack(KernelConfig::reference()));

thread_local! {
    static OVERRIDE: Cell<u64> = const { Cell::new(NO_OVERRIDE) };
}

/// Installs `cfg` (clamped to valid bounds) as the process-wide default and
/// returns the previous default. Because every configuration computes
/// bit-identical results, installs can race harmlessly; this is a
/// performance knob, not a correctness one.
pub fn install(cfg: KernelConfig) -> KernelConfig {
    unpack(INSTALLED.swap(pack(cfg.clamped()), Ordering::Relaxed))
}

/// The process-wide default configuration.
pub fn installed() -> KernelConfig {
    unpack(INSTALLED.load(Ordering::Relaxed))
}

/// The configuration kernels on this thread currently dispatch on: the
/// innermost live [`scoped`] override, or the [`installed`] default.
pub fn current() -> KernelConfig {
    let bits = OVERRIDE.with(Cell::get);
    if bits == NO_OVERRIDE {
        installed()
    } else {
        unpack(bits)
    }
}

/// Runs `f` with `cfg` (clamped) as this thread's kernel configuration,
/// restoring the previous override afterwards (panic-safe). This is how
/// `mtmlf`'s planning paths pin a model's configured kernels regardless of
/// what other models in the process installed.
pub fn scoped<T>(cfg: KernelConfig, f: impl FnOnce() -> T) -> T {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.replace(pack(cfg.clamped())));
    let _restore = Restore(prev);
    f()
}

// ---------------------------------------------------------------------------
// Per-thread buffer arena.
// ---------------------------------------------------------------------------

/// Most buffers kept per thread; excess recycles are dropped.
const ARENA_MAX_BUFFERS: usize = 128;
/// Buffers above this capacity are never pooled (bounds worst-case
/// retention at 4 MiB per slot).
const ARENA_MAX_FLOATS: usize = 1 << 20;

thread_local! {
    static ARENA: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Pops the smallest pooled buffer with capacity for `len` floats, if any.
fn pop_fitting(len: usize) -> Option<Vec<f32>> {
    ARENA.with(|a| {
        let mut pool = a.borrow_mut();
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, buf) in pool.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        best.map(|(i, _)| pool.swap_remove(i))
    })
}

/// A buffer of exactly `len` floats, all set to `fill`. Reuses a pooled
/// buffer when one fits (recorded as an arena reuse), otherwise allocates
/// (recorded as an allocation).
pub(crate) fn take(len: usize, fill: f32) -> Vec<f32> {
    match pop_fitting(len) {
        Some(mut buf) => {
            profile::record_arena_reuse();
            buf.clear();
            buf.resize(len, fill);
            buf
        }
        None => {
            profile::record_alloc(len as u64);
            vec![fill; len]
        }
    }
}

/// A buffer holding a copy of `src` (pooled when possible).
pub(crate) fn take_copy(src: &[f32]) -> Vec<f32> {
    match pop_fitting(src.len()) {
        Some(mut buf) => {
            profile::record_arena_reuse();
            buf.clear();
            buf.extend_from_slice(src);
            buf
        }
        None => {
            profile::record_alloc(src.len() as u64);
            src.to_vec()
        }
    }
}

/// An empty buffer with capacity for at least `cap` floats (pooled when
/// possible) — for `extend_from_slice`-style builders.
pub(crate) fn take_empty(cap: usize) -> Vec<f32> {
    match pop_fitting(cap) {
        Some(mut buf) => {
            profile::record_arena_reuse();
            buf.clear();
            buf
        }
        None => {
            profile::record_alloc(cap as u64);
            Vec::with_capacity(cap)
        }
    }
}

/// Returns a buffer to the current thread's pool (dropping it if the pool
/// is full or the buffer is empty/oversized).
pub(crate) fn recycle(buf: Vec<f32>) {
    if buf.capacity() == 0 || buf.capacity() > ARENA_MAX_FLOATS {
        return;
    }
    ARENA.with(|a| {
        let mut pool = a.borrow_mut();
        if pool.len() < ARENA_MAX_BUFFERS {
            pool.push(buf);
        }
    });
}

/// Drops every buffer pooled on the current thread. Tests and benchmarks
/// call this so allocation counts start from a cold, deterministic state.
pub fn arena_clear() {
    ARENA.with(|a| a.borrow_mut().clear());
}

/// Buffers currently pooled on this thread (diagnostics/tests).
pub fn arena_buffers() -> usize {
    ARENA.with(|a| a.borrow().len())
}

// ---------------------------------------------------------------------------
// GEMM: reference, blocked, and row-parallel paths.
// ---------------------------------------------------------------------------

/// How the `B` operand of [`gemm`] is laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BKind {
    /// `B` is `k×n` row-major; compute `A·B`. The reference path skips
    /// zero `A` elements (the featurizer emits very sparse one-hot rows),
    /// and the blocked path mirrors that skip exactly.
    RowMajor,
    /// `B` is `n×k` row-major; compute `A·Bᵀ`. The reference path is a
    /// per-element dot product with no zero skip; the blocked path packs
    /// `Bᵀ` and mirrors the no-skip accumulation exactly.
    Transposed,
}

impl BKind {
    fn skip_zero(self) -> bool {
        matches!(self, BKind::RowMajor)
    }
}

/// Below this FLOP count the blocked path stays on the reference kernel
/// (packing would dominate).
const BLOCKED_MIN_FLOPS: u64 = 2 * 24 * 24 * 24;
/// Below this FLOP count a parallel split is not worth the channel round
/// trip.
const PARALLEL_MIN_FLOPS: u64 = 2 * 96 * 96 * 96;

/// `out += A·B` (or `A·Bᵀ`), dispatching on [`current`]'s configuration.
/// `out` must be zeroed, `m·k`, `k·n` (or `n·k`), and `m·n` sized.
pub(crate) fn gemm(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    bkind: BKind,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let cfg = current();
    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    if cfg.is_reference() || flops < BLOCKED_MIN_FLOPS {
        reference_gemm(a, m, k, b, n, bkind, out);
        return;
    }
    let nb = cfg.block_size;
    if cfg.threads > 1 && flops >= PARALLEL_MIN_FLOPS && m >= cfg.threads * 2 {
        parallel_gemm(a, m, k, b, n, bkind, nb, cfg.threads, out);
    } else {
        match bkind {
            // Row-major `B` needs no re-layout — its column panels are
            // strided slices of `B` itself, so the micro-kernel consumes
            // it in place: no pack, no arena traffic, no extra pass.
            BKind::RowMajor => inplace_blocked_gemm(a, m, k, b, n, out),
            BKind::Transposed => {
                let packed = pack_b(b, k, n, bkind, nb);
                blocked_gemm(a, m, k, &packed, n, nb, bkind.skip_zero(), out);
                recycle(packed);
            }
        }
    }
}

/// The naive kernels, byte-for-byte the loops the seed shipped with. This
/// is the pinned reference the differential suite compares against.
pub(crate) fn reference_gemm(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    bkind: BKind,
    out: &mut [f32],
) {
    match bkind {
        BKind::RowMajor => {
            // i-k-j loop order: the inner loop walks contiguous rows of
            // `b` and `out`, which the compiler auto-vectorizes.
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (kk, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
        }
        BKind::Transposed => {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    *o = a_row.iter().zip(b_row).map(|(&x, &y)| x * y).sum();
                }
            }
        }
    }
}

/// Packs `B` into `⌈n/nb⌉` column panels of width `nb` (the last possibly
/// narrower). Panel `p` stores element `(kk, jj)` — i.e. `B[kk, p·nb+jj]`
/// for the row-major kind, `B[p·nb+jj, kk]` transposed — contiguously at
/// `p·k·nb + kk·w + jj`, so the micro-kernel's inner loop reads one dense
/// row regardless of the original layout. The single-threaded row-major
/// path never calls this (row-major `B` is consumed in place as one
/// full-width panel); the parallel path packs row-major `B` at `nb = n`,
/// where the pack degenerates to a plain copy whose only job is moving
/// ownership to the worker threads.
// lint: hot-path
fn pack_b(b: &[f32], k: usize, n: usize, bkind: BKind, nb: usize) -> Vec<f32> {
    let panels = n.div_ceil(nb);
    let mut packed = take(panels * k * nb, 0.0);
    for p in 0..panels {
        let j0 = p * nb;
        let w = nb.min(n - j0);
        let base = p * k * nb;
        match bkind {
            BKind::RowMajor => {
                for kk in 0..k {
                    let src = &b[kk * n + j0..kk * n + j0 + w];
                    packed[base + kk * w..base + kk * w + w].copy_from_slice(src);
                }
            }
            BKind::Transposed => {
                for (jj, j) in (j0..j0 + w).enumerate() {
                    let src = &b[j * k..(j + 1) * k];
                    for (kk, &v) in src.iter().enumerate() {
                        packed[base + kk * w + jj] = v;
                    }
                }
            }
        }
    }
    packed
}

/// The register-tiled micro-kernel over one column panel of `B`: two
/// output rows × four `k` steps per iteration of the inner loop, written
/// as a lock-step `zip` over the output segments and the four `B` rows so
/// LLVM proves the trip counts equal and vectorizes (the equivalent
/// index-form loop does *not* vectorize once the widths are runtime
/// values). Sharing each `B` row across two output rows halves the load
/// traffic per FLOP, and the eight accumulator values ride in registers
/// across the quad instead of round-tripping through memory per `k` step —
/// which is what held the row-major (`A·B`) kind at parity with the
/// reference loop.
///
/// The panel's rows are `w`-wide and contiguous (`panel[kk·w..]` is row
/// `kk`), which holds for both callers: a [`pack_b`] panel, and row-major
/// `B` consumed in place as one full-width panel. Quads are carved with
/// `chunks_exact(4·w)` so LLVM sees the four row slices fall out of one
/// bounds check instead of four re-slicings — worth ~15% on the smallest
/// shapes, where the per-quad prologue dominates. The fast path requires
/// every broadcast `a` value in the 2×4 tile to be nonzero; any zero (or
/// `skip_zero = false`, the transposed kind, where zeros must still be
/// accumulated) drops to per-`k`, per-row passes with the reference's
/// exact skip semantics.
///
/// Per output element the `k` products accumulate in ascending order into
/// a single slot — exactly the reference order, with the same `a == 0.0`
/// skips — so this path is bit-compatible with [`reference_gemm`]: no
/// reassociation, no fused multiply-add, no `+ 0.0` that could flip a
/// `-0.0` or manufacture a NaN payload. Pairing rows never reorders
/// anything: the two accumulator chains are element-wise independent.
// lint: hot-path
#[allow(clippy::too_many_arguments)]
fn gemm_panel(
    a: &[f32],
    m: usize,
    k: usize,
    panel: &[f32],
    w: usize,
    n: usize,
    j0: usize,
    skip_zero: bool,
    out: &mut [f32],
) {
    let kq = k / 4 * 4;
    let mut i = 0;
    // 4×4 macro-tile first: each `B` row loads once for four output rows
    // (a quarter of the 2-row tile's load traffic per FLOP), which is
    // what the small L1-resident shapes are bound on. Accumulation per
    // output element is the identical ascending single-slot chain — the
    // row count only changes how many independent chains share a `B`
    // load, never the order within one.
    while i + 4 <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let (lo, rest) = out.split_at_mut((i + 1) * n);
        let (r1, rest) = rest.split_at_mut(n);
        let (r2, r3) = rest.split_at_mut(n);
        let o0 = &mut lo[i * n + j0..i * n + j0 + w];
        let o1 = &mut r1[j0..j0 + w];
        let o2 = &mut r2[j0..j0 + w];
        let o3 = &mut r3[j0..j0 + w];
        for (((qa0, qa1), (qa2, qa3)), qb) in a0[..kq]
            .chunks_exact(4)
            .zip(a1[..kq].chunks_exact(4))
            .zip(a2[..kq].chunks_exact(4).zip(a3[..kq].chunks_exact(4)))
            .zip(panel[..kq * w].chunks_exact(4 * w))
        {
            let dense = !skip_zero
                || (qa0.iter().all(|&x| x != 0.0)
                    && qa1.iter().all(|&x| x != 0.0)
                    && qa2.iter().all(|&x| x != 0.0)
                    && qa3.iter().all(|&x| x != 0.0));
            if dense {
                let (b0, rest) = qb.split_at(w);
                let (b1, rest) = rest.split_at(w);
                let (b2, b3) = rest.split_at(w);
                for ((((oa, ob), (oc, od)), (&v0, &v1)), (&v2, &v3)) in o0
                    .iter_mut()
                    .zip(o1.iter_mut())
                    .zip(o2.iter_mut().zip(o3.iter_mut()))
                    .zip(b0.iter().zip(b1))
                    .zip(b2.iter().zip(b3))
                {
                    let mut s0 = *oa;
                    let mut s1 = *ob;
                    let mut s2 = *oc;
                    let mut s3 = *od;
                    s0 += qa0[0] * v0;
                    s1 += qa1[0] * v0;
                    s2 += qa2[0] * v0;
                    s3 += qa3[0] * v0;
                    s0 += qa0[1] * v1;
                    s1 += qa1[1] * v1;
                    s2 += qa2[1] * v1;
                    s3 += qa3[1] * v1;
                    s0 += qa0[2] * v2;
                    s1 += qa1[2] * v2;
                    s2 += qa2[2] * v2;
                    s3 += qa3[2] * v2;
                    s0 += qa0[3] * v3;
                    s1 += qa1[3] * v3;
                    s2 += qa2[3] * v3;
                    s3 += qa3[3] * v3;
                    *oa = s0;
                    *ob = s1;
                    *oc = s2;
                    *od = s3;
                }
            } else {
                for dk in 0..4 {
                    let prow = &qb[dk * w..(dk + 1) * w];
                    for (arow, orow) in [(qa0, &mut *o0), (qa1, &mut *o1), (qa2, &mut *o2), (qa3, &mut *o3)] {
                        let av = arow[dk];
                        if !(skip_zero && av == 0.0) {
                            for (o, &bv) in orow.iter_mut().zip(prow) {
                                *o += av * bv;
                            }
                        }
                    }
                }
            }
        }
        for kk in kq..k {
            let prow = &panel[kk * w..(kk + 1) * w];
            for (arow, orow) in [(a0, &mut *o0), (a1, &mut *o1), (a2, &mut *o2), (a3, &mut *o3)] {
                let av = arow[kk];
                if !(skip_zero && av == 0.0) {
                    for (o, &bv) in orow.iter_mut().zip(prow) {
                        *o += av * bv;
                    }
                }
            }
        }
        i += 4;
    }
    while i + 2 <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let (lo, hi) = out.split_at_mut((i + 1) * n);
        let o0 = &mut lo[i * n + j0..i * n + j0 + w];
        let o1 = &mut hi[j0..j0 + w];
        for ((qa0, qa1), qb) in a0[..kq]
            .chunks_exact(4)
            .zip(a1[..kq].chunks_exact(4))
            .zip(panel[..kq * w].chunks_exact(4 * w))
        {
            let (x0, x1, x2, x3) = (qa0[0], qa0[1], qa0[2], qa0[3]);
            let (y0, y1, y2, y3) = (qa1[0], qa1[1], qa1[2], qa1[3]);
            let dense = !skip_zero
                || (x0 != 0.0
                    && x1 != 0.0
                    && x2 != 0.0
                    && x3 != 0.0
                    && y0 != 0.0
                    && y1 != 0.0
                    && y2 != 0.0
                    && y3 != 0.0);
            if dense {
                let (b0, rest) = qb.split_at(w);
                let (b1, rest) = rest.split_at(w);
                let (b2, b3) = rest.split_at(w);
                for (((((oa, ob), &v0), &v1), &v2), &v3) in o0
                    .iter_mut()
                    .zip(o1.iter_mut())
                    .zip(b0)
                    .zip(b1)
                    .zip(b2)
                    .zip(b3)
                {
                    let mut s0 = *oa;
                    let mut s1 = *ob;
                    s0 += x0 * v0;
                    s1 += y0 * v0;
                    s0 += x1 * v1;
                    s1 += y1 * v1;
                    s0 += x2 * v2;
                    s1 += y2 * v2;
                    s0 += x3 * v3;
                    s1 += y3 * v3;
                    *oa = s0;
                    *ob = s1;
                }
            } else {
                for dk in 0..4 {
                    let prow = &qb[dk * w..(dk + 1) * w];
                    let av = qa0[dk];
                    if !(skip_zero && av == 0.0) {
                        for (o, &bv) in o0.iter_mut().zip(prow) {
                            *o += av * bv;
                        }
                    }
                    let av = qa1[dk];
                    if !(skip_zero && av == 0.0) {
                        for (o, &bv) in o1.iter_mut().zip(prow) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
        for kk in kq..k {
            let prow = &panel[kk * w..(kk + 1) * w];
            let av = a0[kk];
            if !(skip_zero && av == 0.0) {
                for (o, &bv) in o0.iter_mut().zip(prow) {
                    *o += av * bv;
                }
            }
            let av = a1[kk];
            if !(skip_zero && av == 0.0) {
                for (o, &bv) in o1.iter_mut().zip(prow) {
                    *o += av * bv;
                }
            }
        }
        i += 2;
    }
    if i < m {
        // Odd trailing row: the plain streaming loop.
        let a_row = &a[i * k..(i + 1) * k];
        let out_seg = &mut out[i * n + j0..i * n + j0 + w];
        for (kk, &av) in a_row.iter().enumerate() {
            if skip_zero && av == 0.0 {
                continue;
            }
            let prow = &panel[kk * w..(kk + 1) * w];
            for (o, &bv) in out_seg.iter_mut().zip(prow) {
                *o += av * bv;
            }
        }
    }
}

/// [`gemm_panel`] over every packed panel of `B` (see [`pack_b`] for the
/// layout). The row-major single-threaded path bypasses this and blocks
/// over `B` in place — see [`inplace_blocked_gemm`].
// lint: hot-path
fn blocked_gemm(
    a: &[f32],
    m: usize,
    k: usize,
    packed: &[f32],
    n: usize,
    nb: usize,
    skip_zero: bool,
    out: &mut [f32],
) {
    let panels = n.div_ceil(nb);
    for p in 0..panels {
        let j0 = p * nb;
        let w = nb.min(n - j0);
        let panel = &packed[p * k * nb..p * k * nb + k * w];
        gemm_panel(a, m, k, panel, w, n, j0, skip_zero, out);
    }
}

/// The row-major blocked path: `B` is consumed *in place* as one
/// full-width panel — no packing pass, no arena traffic. At transformer
/// sizes `B` fits in L2, and narrow column panels measured 15–20% slower
/// than the full-width sweep (the 2×4 tile's loop prologue stops
/// amortizing), so this path deliberately ignores `block_size`; the
/// configured width still shapes the transposed kind's packing.
// lint: hot-path
fn inplace_blocked_gemm(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    gemm_panel(a, m, k, b, n, n, 0, true, out);
}

// ---------------------------------------------------------------------------
// Worker pool (crossbeam channels; the calling thread helps drain).
// ---------------------------------------------------------------------------

struct GemmTask {
    a_chunk: Vec<f32>,
    rows: usize,
    k: usize,
    n: usize,
    nb: usize,
    skip_zero: bool,
    packed: Arc<Vec<f32>>,
    out_chunk: Vec<f32>,
    index: usize,
    reply: Sender<GemmDone>,
}

struct GemmDone {
    index: usize,
    a_chunk: Vec<f32>,
    out_chunk: Vec<f32>,
}

impl GemmTask {
    // lint: hot-path
    fn run(mut self) {
        if self.skip_zero {
            // Row-major: `packed` is a full-width copy of `B` (shipped
            // only for `'static` ownership) — block over it in place.
            inplace_blocked_gemm(
                &self.a_chunk,
                self.rows,
                self.k,
                &self.packed,
                self.n,
                &mut self.out_chunk,
            );
        } else {
            blocked_gemm(
                &self.a_chunk,
                self.rows,
                self.k,
                &self.packed,
                self.n,
                self.nb,
                self.skip_zero,
                &mut self.out_chunk,
            );
        }
        // Release the shared panels *before* replying, so once the caller
        // has collected every reply its own Arc is the last one and the
        // pack buffer returns to its arena.
        drop(std::mem::take(&mut self.packed));
        let done = GemmDone {
            index: self.index,
            a_chunk: std::mem::take(&mut self.a_chunk),
            out_chunk: std::mem::take(&mut self.out_chunk),
        };
        let _ = self.reply.send(done);
    }
}

fn job_channel() -> &'static (Sender<GemmTask>, Receiver<GemmTask>) {
    static JOBS: OnceLock<(Sender<GemmTask>, Receiver<GemmTask>)> = OnceLock::new();
    JOBS.get_or_init(channel::unbounded)
}

static SPAWNED_WORKERS: Mutex<usize> = Mutex::new(0);

/// Grows the shared worker set to at least `want` threads. Spawn failures
/// are tolerated: the caller's drain loop runs queued tasks inline, so the
/// pool degrades to single-threaded instead of erroring.
fn ensure_workers(want: usize) {
    let mut spawned = SPAWNED_WORKERS
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    while *spawned < want {
        let rx = job_channel().1.clone();
        let name = format!("mtmlf-kernel-{}", *spawned);
        let handle = std::thread::Builder::new().name(name).spawn(move || {
            while let Ok(task) = rx.recv() {
                task.run();
            }
        });
        if handle.is_err() {
            break;
        }
        *spawned += 1;
    }
}

/// Evenly splits `m` rows into `parts` contiguous `(row0, rows)` chunks.
fn split_rows(m: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.min(m).max(1);
    let base = m / parts;
    let extra = m % parts;
    let mut chunks = Vec::with_capacity(parts);
    let mut row0 = 0;
    for i in 0..parts {
        let rows = base + usize::from(i < extra);
        chunks.push((row0, rows));
        row0 += rows;
    }
    chunks
}

fn parallel_gemm(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    bkind: BKind,
    nb: usize,
    threads: usize,
    out: &mut [f32],
) {
    let skip_zero = bkind.skip_zero();
    // Row-major `B` needs no re-layout — "pack" at full width, which is a
    // pure copy whose only job is giving the `'static` workers ownership
    // of `B`. Workers then block over it in place at the configured `nb`
    // (see [`GemmTask::run`]). Transposed `B` packs into `nb`-wide panels
    // as before.
    let pack_width = match bkind {
        BKind::RowMajor => n,
        BKind::Transposed => nb,
    };
    let packed = Arc::new(pack_b(b, k, n, bkind, pack_width));
    let chunks = split_rows(m, threads);
    ensure_workers(chunks.len().saturating_sub(1));
    let (reply_tx, reply_rx) = channel::bounded::<GemmDone>(chunks.len());
    let jobs = job_channel();

    // Ship every chunk but the first; buffers come from (and return to)
    // this thread's arena, so the workers allocate nothing.
    for (index, &(row0, rows)) in chunks.iter().enumerate().skip(1) {
        let task = GemmTask {
            a_chunk: take_copy(&a[row0 * k..(row0 + rows) * k]),
            rows,
            k,
            n,
            nb,
            skip_zero,
            packed: Arc::clone(&packed),
            out_chunk: take(rows * n, 0.0),
            index,
            reply: reply_tx.clone(),
        };
        if jobs.0.send(task).is_err() {
            // Unreachable (the receiver is static), but degrade gracefully.
            break;
        }
    }
    drop(reply_tx);

    // Our own share, straight into `out` (row-major reads `B` in place —
    // no reason to go through the workers' copy).
    let (_, rows0) = chunks[0];
    match bkind {
        BKind::RowMajor => {
            inplace_blocked_gemm(&a[..rows0 * k], rows0, k, b, n, &mut out[..rows0 * n])
        }
        BKind::Transposed => blocked_gemm(
            &a[..rows0 * k],
            rows0,
            k,
            &packed,
            n,
            nb,
            skip_zero,
            &mut out[..rows0 * n],
        ),
    }

    let mut done = vec![false; chunks.len()];
    done[0] = true;
    let mut pending = chunks.len() - 1;
    let stitch = |d: GemmDone, done: &mut [bool], out: &mut [f32]| {
        let (row0, rows) = chunks[d.index];
        out[row0 * n..(row0 + rows) * n].copy_from_slice(&d.out_chunk);
        done[d.index] = true;
        recycle(d.a_chunk);
        recycle(d.out_chunk);
    };
    'collect: while pending > 0 {
        match reply_rx.try_recv() {
            Ok(d) => {
                stitch(d, &mut done, out);
                pending -= 1;
                continue;
            }
            Err(TryRecvError::Disconnected) => break 'collect,
            Err(TryRecvError::Empty) => {}
        }
        // Help drain the shared queue (this also guarantees progress when
        // no worker thread could be spawned at all).
        match jobs.1.try_recv() {
            Ok(task) => task.run(),
            Err(_) => match reply_rx.recv() {
                // Queue empty: every one of our tasks is done or running
                // elsewhere, so a blocking wait cannot deadlock.
                Ok(d) => {
                    stitch(d, &mut done, out);
                    pending -= 1;
                }
                Err(_) => break 'collect,
            },
        }
    }
    // Any chunk whose reply was lost (a worker died mid-task) is recomputed
    // here; correctness never depends on the pool's health.
    for (index, &(row0, rows)) in chunks.iter().enumerate() {
        if !done[index] {
            blocked_gemm(
                &a[row0 * k..(row0 + rows) * k],
                rows,
                k,
                &packed,
                n,
                nb,
                skip_zero,
                &mut out[row0 * n..(row0 + rows) * n],
            );
        }
    }
    if let Ok(buf) = Arc::try_unwrap(packed) {
        recycle(buf);
    }
}

// ---------------------------------------------------------------------------
// ULP distance (the differential suite's metric).
// ---------------------------------------------------------------------------

/// Units-in-the-last-place distance between two `f32`s: 0 iff bitwise
/// equal or both zero (any signs); `u32::MAX` if either is NaN; otherwise
/// the number of representable floats strictly between them (+1), summed
/// through zero when the signs differ.
pub fn ulp_distance(a: f32, b: f32) -> u32 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    let ab = a.abs().to_bits();
    let bb = b.abs().to_bits();
    if a.is_sign_positive() == b.is_sign_positive() {
        ab.abs_diff(bb)
    } else {
        ab.saturating_add(bb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_packs_and_clamps() {
        assert_eq!(
            unpack(pack(KernelConfig::reference())),
            KernelConfig::reference()
        );
        let wild = KernelConfig {
            threads: 1000,
            block_size: 1 << 20,
        };
        let c = wild.clamped();
        assert_eq!(c.threads, MAX_THREADS);
        assert_eq!(c.block_size, MAX_BLOCK);
        assert_eq!(
            KernelConfig {
                threads: 0,
                block_size: 2
            }
            .clamped(),
            KernelConfig {
                threads: 1,
                block_size: MIN_BLOCK
            }
        );
        assert!(KernelConfig::reference().validate().is_ok());
        assert!(KernelConfig::tuned().validate().is_ok());
        assert!(KernelConfig {
            threads: 0,
            block_size: 0
        }
        .validate()
        .is_err());
        assert!(KernelConfig {
            threads: 1,
            block_size: 2
        }
        .validate()
        .is_err());
    }

    #[test]
    fn scoped_overrides_nest_and_restore() {
        let base = current();
        let inner = KernelConfig::single_threaded(8);
        let observed = scoped(inner, || {
            let outer_view = current();
            let nested = scoped(KernelConfig::single_threaded(16), current);
            (outer_view, nested)
        });
        assert_eq!(observed.0, inner);
        assert_eq!(observed.1.block_size, 16);
        assert_eq!(current(), base);
    }

    #[test]
    fn arena_round_trips_buffers() {
        arena_clear();
        let b = take(64, 0.0);
        assert_eq!(b.len(), 64);
        recycle(b);
        assert_eq!(arena_buffers(), 1);
        let b2 = take(16, 1.5);
        assert_eq!(arena_buffers(), 0, "the pooled buffer was reused");
        assert!(b2.iter().all(|&v| v == 1.5));
        recycle(b2);
        arena_clear();
        assert_eq!(arena_buffers(), 0);
    }

    #[test]
    fn split_rows_covers_everything() {
        for m in [1usize, 2, 7, 64, 65] {
            for parts in [1usize, 2, 3, 8] {
                let chunks = split_rows(m, parts);
                let total: usize = chunks.iter().map(|&(_, r)| r).sum();
                assert_eq!(total, m);
                assert!(chunks.iter().all(|&(_, r)| r > 0));
                let mut next = 0;
                for &(row0, rows) in &chunks {
                    assert_eq!(row0, next);
                    next += rows;
                }
            }
        }
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u32::MAX);
        assert!(ulp_distance(-1.0, 1.0) > 1_000_000);
        assert_eq!(ulp_distance(2.0, -3.0), ulp_distance(-3.0, 2.0));
    }
}
